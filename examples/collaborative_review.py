"""Collaborative annotation review example.

Run with ``python examples/collaborative_review.py``.  Reproduces the paper's
motivation that "scientists ... use annotations to share their opinions in a
collaborative study".  Several scientists annotate overlapping substructures
of the same objects; the example shows how Graphitti surfaces the resulting
indirect relationships, finds consensus regions, and exports an annotation as
an editable XML object (the "view it as an XML-structured object" step).
"""

from repro import Graphitti
from repro.datatypes import DnaSequence, Image
from repro.ontology import build_protein_ontology


def main() -> None:
    graphitti = Graphitti("collaboration")
    graphitti.register_ontology(build_protein_ontology())
    graphitti.register(DnaSequence("gene_X", "ATG" + "ACGTACGT" * 40 + "TAA", domain="chr1"))
    graphitti.register(Image("micrograph", dimension=2, space="lab-space", size=(200, 200)))

    # Three scientists annotate the same gene region from different angles.
    (
        graphitti.new_annotation(
            "rev-alice",
            creator="alice",
            keywords=["protease", "active-site"],
            body="Catalytic triad of a serine protease.",
        )
        .mark_sequence("gene_X", 30, 90, ontology_terms=["protein:protease"])
        .commit()
    )
    (
        graphitti.new_annotation(
            "rev-bob",
            creator="bob",
            keywords=["mutation", "pathogenic"],
            body="Disease-associated mutation within the catalytic region.",
        )
        .mark_sequence("gene_X", 30, 90)
        .mark_region("micrograph", (50, 50), (120, 120))
        .commit()
    )
    (
        graphitti.new_annotation(
            "rev-carol",
            creator="carol",
            keywords=["binding"],
            body="Substrate binding pocket adjacent to the active site.",
        )
        .mark_sequence("gene_X", 85, 140)
        .commit()
    )

    print("=== who annotated the same substructure? ===")
    for annotation_id in ["rev-alice", "rev-bob", "rev-carol"]:
        related = graphitti.related_annotations(annotation_id)
        creators = [graphitti.annotation(other).content.dublin_core.creator for other in related]
        print(f"  {annotation_id} ({graphitti.annotation(annotation_id).content.dublin_core.creator})"
              f" shares a referent with {list(zip(related, creators))}")

    print("\n=== consensus region (overlap of all annotations on gene_X) ===")
    overlap = graphitti.search_by_overlap_interval("chr1", 85, 90)
    print("  annotations covering chr1[85,90]:", overlap)

    print("\n=== connection subgraph across the three reviews ===")
    subgraph = graphitti.connect_annotations("rev-alice", "rev-bob", "rev-carol")
    print("  connected:", subgraph.is_connected, "nodes:", subgraph.node_count)

    print("\n=== export rev-bob as an editable XML object ===")
    print(graphitti.annotation("rev-bob").to_xml())


if __name__ == "__main__":
    main()
