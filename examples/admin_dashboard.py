"""System-administration dashboard example (the paper's admin tab).

Run with ``python examples/admin_dashboard.py``.  Builds the influenza study
and prints the administrative reports the paper's third tab would show:
integrity status, index economy, orphan detection, per-object annotation
leaderboard, and per-creator activity — then snapshots and reloads the whole
instance to show persistence round-trips.
"""

import tempfile
from pathlib import Path

from repro.core.persistence import load_instance, save_instance
from repro.workloads import build_influenza_instance


def main() -> None:
    g = build_influenza_instance()
    admin = g.administrator()

    print("=== integrity ===")
    print("  ", admin.check_integrity().summary())

    print("\n=== index economy (paper: 'keep the number of indexes small') ===")
    for key, value in admin.index_economy().items():
        print(f"  {key}: {value}")

    print("\n=== orphan data objects (registered but never annotated) ===")
    print("  ", admin.orphan_objects() or "(none)")

    print("\n=== annotation leaderboard (most-annotated objects) ===")
    for object_id, count in admin.annotation_leaderboard(top=5):
        print(f"  {object_id}: {count} referent(s)")

    print("\n=== creator activity ===")
    for creator, count in sorted(admin.creator_activity().items()):
        print(f"  {creator}: {count} annotation(s)")

    print("\n=== snapshot / reload round-trip ===")
    with tempfile.TemporaryDirectory() as directory:
        path = save_instance(g, Path(directory) / "influenza.json")
        reloaded = load_instance(path)
        print(f"  saved to {path.name}, reloaded {reloaded.annotation_count} annotations")
        print("  reloaded integrity:", reloaded.check_integrity().summary())
        print("  reloaded query 'cleavage':", reloaded.search_by_keyword("cleavage"))


if __name__ == "__main__":
    main()
