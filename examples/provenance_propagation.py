"""Annotation provenance & propagation example (paper extension).

Run with ``python examples/provenance_propagation.py``.  Demonstrates the
propagation machinery described by the paper's references [3] (propagation of
annotations and deletions through views) and [8] (intensional associations):
annotate a full gene, derive a sub-fragment view, propagate the overlapping
annotations onto the fragment with remapped coordinates, then propagate a
deletion back down the lineage.
"""

from repro import Graphitti
from repro.datatypes import DnaSequence
from repro.ontology import build_protein_ontology
from repro.provenance import AnnotationPropagator, Derivation, DerivationKind


def main() -> None:
    g = Graphitti("provenance")
    g.register_ontology(build_protein_ontology())

    # A gene with two annotated regions.
    g.register(DnaSequence("BRCA1", "ACGT" * 500, domain="BRCA1:dom"))
    (
        g.new_annotation("promoter", keywords=["promoter"], body="core promoter region")
        .mark_sequence("BRCA1", 100, 260, ontology_terms=["protein:protease"])
        .commit()
    )
    (
        g.new_annotation("distal", keywords=["enhancer"], body="distal enhancer")
        .mark_sequence("BRCA1", 1200, 1400)
        .commit()
    )

    # Derive a sub-fragment view covering [80, 400] of the gene.
    g.register(DnaSequence("BRCA1_frag", "ACGT" * 80, domain="BRCA1_frag:dom"))
    propagator = AnnotationPropagator(g)
    propagator.register_derivation(
        Derivation("BRCA1", "BRCA1_frag", DerivationKind.SUBSEQUENCE, "BRCA1:dom", "BRCA1_frag:dom", window=(80, 400))
    )

    print("=== forward propagation BRCA1 -> BRCA1_frag ===")
    created = propagator.propagate("BRCA1", "BRCA1_frag")
    for annotation_id in created:
        ref = g.annotation(annotation_id).referents[0].ref
        print(f"  {annotation_id}: frag interval [{int(ref.interval.start)}, {int(ref.interval.end)}]"
              f" (from {ref.descriptor['propagated_from']})")
    print("  (the distal enhancer at [1200,1400] is outside the view and was not propagated)")

    print("\n=== lineage ===")
    for annotation_id in created:
        print(f"  {annotation_id} lineage: {propagator.ledger.lineage(annotation_id)}")

    print("\n=== deletion propagation: delete 'promoter' ===")
    plan = propagator.propagate_deletion("promoter", apply=False)
    print("  would delete:", plan)
    propagator.propagate_deletion("promoter", apply=True)
    remaining = sorted(a.annotation_id for a in g.annotations())
    print("  remaining annotations:", remaining)

    print("\n=== integrity after propagation + deletion ===")
    print("  ", g.check_integrity().summary())


if __name__ == "__main__":
    main()
