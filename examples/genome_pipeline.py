"""Genome annotation pipeline example (FASTA + features + GO + reasoning).

Run with ``python examples/genome_pipeline.py``.  Demonstrates the native-format
I/O and ontology-reasoning additions: load sequences from FASTA, bulk-import a
feature table as annotations, attach Gene-Ontology references, and use the
reasoner to rank the semantic similarity of the annotated functions.
"""

from repro import Graphitti
from repro.datatypes.io import load_features, parse_fasta
from repro.ontology import OntologyReasoner, build_gene_ontology_subset


FASTA = """\
>gene_A a demonstration gene
ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT
ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT
>gene_B another gene
TTTTGGGGCCCCAAAATTTTGGGGCCCCAAAATTTTGGGGCCCCAAAATTTTGGGGCCCC
"""

FEATURES = """\
# object  start  end   label
gene_A     10     40    peptidase
gene_A     60     90    kinase
gene_B     5      35    binding
"""


def main() -> None:
    graphitti = Graphitti("genome-pipeline")
    graphitti.register_ontology(build_gene_ontology_subset())

    # 1. Load sequences from FASTA, placing both on one shared chromosome.
    print("=== load sequences from FASTA ===")
    for sequence in parse_fasta(FASTA, domain="demo:chr1"):
        graphitti.register(sequence)
        print(f"  registered {sequence.describe()}")

    # 2. Bulk-import the feature table as annotations.
    print("\n=== import feature table ===")
    created = load_features(graphitti, FEATURES, creator="annotator")
    print(f"  created {len(created)} feature annotations")

    # 3. Attach GO references to the function annotations.
    go = {"peptidase": "GO:0008233", "kinase": "GO:0016301", "binding": "GO:0005488"}
    for annotation_id in created:
        annotation = graphitti.annotation(annotation_id)
        for keyword in annotation.content.keywords():
            if keyword in go:
                # a second, ontology-referencing annotation on the same region
                ref = annotation.referents[0].ref
                (
                    graphitti.new_annotation(f"{annotation_id}-go", keywords=[keyword])
                    .mark_sequence(ref.object_id, ref.descriptor["start"], ref.descriptor["end"],
                                   ontology_terms=[go[keyword]])
                    .commit()
                )

    print("\n=== keyword query: 'peptidase' ===")
    print("  ", graphitti.search_by_keyword("peptidase"))

    print("\n=== GO query: catalytic-activity instances via ontology ===")
    print("  ", graphitti.search_by_ontology("GO:0003824"))

    # 4. Rank semantic similarity of the annotated molecular functions.
    print("\n=== Wu-Palmer similarity between annotated functions ===")
    reasoner = OntologyReasoner(graphitti.ontology("gene-ontology"))
    pairs = [
        ("GO:0008233", "GO:0016301"),  # peptidase vs kinase (both catalytic)
        ("GO:0008233", "GO:0005488"),  # peptidase vs binding (different branch)
    ]
    for left, right in pairs:
        score = reasoner.wu_palmer_similarity(left, right)
        print(f"  sim({left}, {right}) = {score:.3f}")

    print("\n=== study report ===")
    from repro.workloads.reporting import study_report

    print(study_report(graphitti).split("## Most-annotated")[0])


if __name__ == "__main__":
    main()
