"""Neuroscience study example (reproduces the Fig. 3 query-tab scenario).

Run with ``python examples/neuroscience_study.py``.  Builds the neuroscience
instance (alpha-synuclein gene/protein, two mouse-brain images on a shared
atlas, a synuclein phylogeny, a microarray record) and runs the Fig. 3 query:
find the annotation graph of a sequence + an image + a phylogenetic tree
related to alpha-synuclein, then browse the correlated data (another image and
the array result).
"""

from repro.query import QueryBuilder, parse_query
from repro.workloads import build_neuroscience_instance


def main() -> None:
    graphitti = build_neuroscience_instance()

    print("=== Neuroscience study instance ===")
    for key, value in graphitti.statistics().items():
        print(f"  {key}: {value}")

    # Fig. 3: "an annotation graph consisting of a sequence, an image and a
    # phylogenetic tree related to the protein a-synuclein".
    print("\n=== Fig. 3 query: annotation graph related to alpha-synuclein ===")
    query = QueryBuilder.graph().refers("alpha-synuclein").build()
    result = graphitti.query(query)
    print("  result pages (connection subgraphs):", len(result.subgraphs))
    for index, subgraph in enumerate(result.subgraphs, start=1):
        contents = [node for node in subgraph.nodes if str(node).startswith("neuro-")]
        print(f"  page {index}: annotations {sorted(contents)}, {subgraph.node_count} nodes")

    # The witness structure: which heterogeneous substructures are annotated.
    print("\n=== witness structure of neuro-a1 ===")
    witness = graphitti.witness_structure("neuro-a1")
    for referent in witness["referents"]:
        print(f"  {referent['type']:24s} on {referent['object']:18s} {referent['descriptor'].get('clade', '')}")

    # Correlated data: other annotations on the same referents (Fig. 3 right panel).
    print("\n=== correlated data for neuro-a1 ===")
    for referent_id, others in graphitti.correlated_data("neuro-a1").items():
        if others:
            print(f"  {referent_id} also annotated by {others}")

    # The intro query Q1: annotations with a term + brain images with >= 2
    # regions annotated with a deep-cerebellar term.
    print("\n=== intro query Q1 (region count constraint) ===")
    gql = """
    SELECT contents WHERE {
      REFERENT REFERS "Deep Cerebellar nuclei"
      REGION OVERLAPS mouse-atlas [0,0] .. [512,512] MINCOUNT 2
    }
    """
    # NOTE: the coordinate space name contains a hyphen and colon; GQL idents
    # allow both, but the ':25um' suffix must be included to match the space.
    gql = gql.replace("mouse-atlas", "mouse-atlas:25um")
    q1 = parse_query(gql)
    q1_result = graphitti.query(q1)
    print("  annotations with >=2 DCN regions:", q1_result.annotation_ids)

    # Path between the primary annotation and its replicate through the DCN term.
    print("\n=== path(neuro-a1, neuro-a2) ===")
    print("  ", graphitti.path_between_annotations("neuro-a1", "neuro-a2"))


if __name__ == "__main__":
    main()
