"""Quickstart: annotate a sequence and an image, then query (reproduces Fig. 2).

Run with ``python examples/quickstart.py``.  This walks the paper's annotation
tab workflow programmatically: register heterogeneous data, mark substructures
(a sequence interval and an image region), attach ontology references, commit
the XML annotation content, then run keyword / ontology / spatial queries and
inspect the a-graph.
"""

from repro import Graphitti
from repro.datatypes import DnaSequence, Image
from repro.ontology import build_brain_region_ontology, build_protein_ontology
from repro.query import QueryBuilder


def main() -> None:
    graphitti = Graphitti("quickstart")

    # 1. Register the ontologies the annotations will point at.
    graphitti.register_ontology(build_protein_ontology())
    graphitti.register_ontology(build_brain_region_ontology())

    # 2. Register heterogeneous data objects (the "menu of registered data").
    graphitti.register(DnaSequence("BRCA1", "ATG" + "ACGT" * 60 + "TAA", domain="chr17"))
    graphitti.register(Image("slide_42", dimension=2, space="atlas:25um", size=(256, 256)))

    # 3. Annotate: mark a sequence interval + an image region, attach ontology
    #    references, write the content, and commit (the annotation tab).
    annotation = (
        graphitti.new_annotation(
            title="Protease cleavage near BRCA1 exon",
            creator="alice",
            keywords=["protease", "cleavage"],
            body="A predicted protease cleavage site overlapping the exon boundary.",
        )
        .mark_sequence("BRCA1", 10, 40, ontology_terms=["protein:protease"])
        .mark_region("slide_42", (30, 30), (90, 90), ontology_terms=["Deep Cerebellar nuclei"])
        .refer_ontology("TP53")
        .commit()
    )

    print("Committed annotation:", annotation.annotation_id)
    print("Referents:", annotation.referent_count)
    print("\n--- committed annotation content (XML) ---")
    print(annotation.to_xml())

    # 4. Query the store three different ways.
    print("--- keyword query: 'protease' ---")
    print(graphitti.search_by_keyword("protease"))

    print("\n--- ontology query: instances of 'Protease' (with descendants) ---")
    print(graphitti.search_by_ontology("protein:protease"))

    print("\n--- spatial query: overlaps chr17[20,30] ---")
    print(graphitti.search_by_overlap_interval("chr17", 20, 30))

    # 5. A GQL query combining all three predicates, returning contents.
    query = (
        QueryBuilder.contents()
        .contains("protease")
        .refers("protein:protease")
        .overlaps_interval("chr17", 20, 30)
        .build()
    )
    result = graphitti.query(query)
    print("\n--- GQL query result (annotation ids) ---")
    print(result.annotation_ids)
    print("plan trace:")
    print(result.explain_steps())

    print("\n--- instance statistics ---")
    for key, value in graphitti.statistics().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
