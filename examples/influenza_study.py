"""Influenza study example (reproduces the Fig. 1 a-graph scenario).

Run with ``python examples/influenza_study.py``.  Builds the interdisciplinary
Avian Influenza instance (DNA/RNA/protein sequences, an alignment, a
phylogenetic tree, an interaction graph, relational records) and demonstrates
how the a-graph ties the heterogeneous substructures together: indirect
relatedness through shared referents, paths across data types, and connection
subgraphs.
"""

from repro.agraph.agraph import NodeKind
from repro.workloads import build_influenza_instance


def main() -> None:
    graphitti = build_influenza_instance()

    print("=== Influenza study instance ===")
    for key, value in graphitti.statistics().items():
        print(f"  {key}: {value}")

    print("\n=== the a-graph (Fig. 1) ===")
    print("annotation contents:", sorted(str(node) for node in graphitti.agraph.contents()))
    print("referent nodes:", graphitti.agraph.graph.node_count, "total nodes")
    components = graphitti.agraph.connected_components()
    print(f"connected components: {len(components)} "
          f"(largest has {max(len(component) for component in components)} nodes)")

    print("\n=== indirect relatedness (shared referents) ===")
    for annotation_id in ["flu-a1", "flu-a2", "flu-a3", "flu-a4"]:
        print(f"  {annotation_id} is related to {graphitti.related_annotations(annotation_id)}")

    print("\n=== path() primitive ===")
    path = graphitti.path_between_annotations("flu-a1", "flu-a3")
    print("  path(flu-a1, flu-a3):", path)

    print("\n=== connect() primitive ===")
    subgraph = graphitti.connect_annotations("flu-a1", "flu-a3", "flu-a4")
    print("  connect(flu-a1, flu-a3, flu-a4):")
    print("    connected:", subgraph.is_connected)
    print("    nodes:", subgraph.node_count, "edges:", subgraph.edge_count)
    print("    intervening nodes:", sorted(str(node) for node in subgraph.intervening_nodes))

    print("\n=== witness structure of flu-a1 ===")
    witness = graphitti.witness_structure("flu-a1")
    for referent in witness["referents"]:
        print(f"  {referent['type']:24s} on {referent['object']:18s} -> {referent['ontology_terms']}")

    print("\n=== OntoQuest operations on the influenza ontology ===")
    ops = graphitti.ontology_ops("influenza")
    print("  CI('Surface glycoprotein') =", sorted(ops.ci("flu:surface_protein")))
    print("  CI('Viral protein')        =", sorted(ops.ci("flu:protein")))


if __name__ == "__main__":
    main()
