"""PERF-2: R-tree window queries vs. linear scan (2D and 3D).

Reproduces the paper's claim that R-trees make 2D/3D region queries fast and
that one R-tree per shared coordinate space keeps the structure count small.
"""

from __future__ import annotations

import random

import pytest

from benchmarks._harness import format_row, speedup, time_call
from repro.baselines.linear_scan import LinearRegionIndex
from repro.spatial.rect import Rect
from repro.spatial.rtree import RTree

SIZES = (100, 1000, 10000)


def _make_rects(count: int, dimension: int = 2, seed: int = 2) -> list[Rect]:
    rng = random.Random(seed)
    rects = []
    for _ in range(count):
        lo = tuple(rng.uniform(0, 10_000) for _ in range(dimension))
        hi = tuple(value + rng.uniform(1, 50) for value in lo)
        rects.append(Rect(lo, hi))
    return rects


def _query(dimension: int) -> Rect:
    center = tuple(5000 for _ in range(dimension))
    lo = tuple(value - 100 for value in center)
    hi = tuple(value + 100 for value in center)
    return Rect(lo, hi)


@pytest.mark.parametrize("size", SIZES)
def test_rtree_query_2d(benchmark, size):
    tree = RTree.from_rects(_make_rects(size, 2), max_entries=16)
    query = _query(2)
    benchmark(lambda: tree.search_overlap(query))


@pytest.mark.parametrize("size", SIZES)
def test_linear_scan_query_2d(benchmark, size):
    index = LinearRegionIndex()
    index.insert_many(_make_rects(size, 2))
    query = _query(2)
    benchmark(lambda: index.search_overlap(query))


@pytest.mark.parametrize("size", (100, 1000))
def test_rtree_query_3d(benchmark, size):
    tree = RTree.from_rects(_make_rects(size, 3), max_entries=16)
    query = _query(3)
    benchmark(lambda: tree.search_overlap(query))


def report() -> str:
    lines = ["PERF-2  R-tree window query vs linear scan (2D)"]
    lines.append(format_row(["n", "rtree (us)", "scan (us)", "speedup"], [10, 12, 12, 10]))
    for size in SIZES:
        rects = _make_rects(size, 2)
        tree = RTree.from_rects(rects, max_entries=16)
        index = LinearRegionIndex()
        index.insert_many(rects)
        query = _query(2)
        tree_time = time_call(lambda: tree.search_overlap(query), repeat=20)
        scan_time = time_call(lambda: index.search_overlap(query), repeat=5)
        lines.append(
            format_row(
                [size, f"{tree_time * 1e6:.2f}", f"{scan_time * 1e6:.2f}", f"{speedup(scan_time, tree_time):.1f}x"],
                [10, 12, 12, 10],
            )
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(report())
