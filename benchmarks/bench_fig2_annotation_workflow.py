"""FIG-2: the annotation-tab workflow (mark -> ontology -> commit -> XML).

Reproduces Fig. 2 as an executable artifact: the full programmatic annotate
workflow over every registered data type, including interval markers, block
markers, ontology insertion, and XML round-trip of the committed annotation.
"""

from __future__ import annotations

from benchmarks._harness import format_row, time_call
from repro import Graphitti
from repro.datatypes import (
    DnaSequence,
    Image,
    InteractionGraph,
    MultipleSequenceAlignment,
    RelationalRecord,
    parse_newick,
)
from repro.ontology.builtin import build_protein_ontology
from repro.xmlstore.parser import parse_xml


def _build_instance() -> Graphitti:
    g = Graphitti("fig2")
    g.register_ontology(build_protein_ontology())
    g.register(DnaSequence("dna", "ACGT" * 200, domain="chr1"))
    g.register(MultipleSequenceAlignment("msa", {"r1": "ACGT" * 20, "r2": "ACGT" * 20}))
    g.register(InteractionGraph("graph"))
    g.data_object("graph").add_edge("p1", "p2")
    g.register(parse_newick("((a,b),(c,d));", object_id="tree"))
    g.register(RelationalRecord("rec", ("host", "year"), {"k1": {"host": "x", "year": 1}}))
    g.register(Image("img", dimension=2, space="atlas"))
    return g


def _full_annotation(g: Graphitti, annotation_id: str):
    return (
        g.new_annotation(annotation_id, title="multi-type", keywords=["protease"], body="a comment")
        .mark_sequence("dna", 10, 40, ontology_terms=["protein:protease"])
        .mark_alignment_columns("msa", 4, 12)
        .mark_subgraph("graph", ["p1", "p2"])
        .mark_clade_by_leaves("tree", ["a", "b"])
        .mark_record_block("rec", ["k1"])
        .mark_region("img", (10, 10), (40, 40))
        .refer_ontology("TP53")
        .commit()
    )


def test_full_annotation_commit(benchmark):
    g = _build_instance()
    counter = {"n": 0}

    def run():
        counter["n"] += 1
        return _full_annotation(g, f"ann{counter['n']}")

    benchmark(run)


def test_annotation_xml_roundtrip(benchmark):
    g = _build_instance()
    annotation = _full_annotation(g, "ann0")
    xml = annotation.to_xml()
    benchmark(lambda: parse_xml(xml))


def report() -> str:
    g = _build_instance()
    annotation = _full_annotation(g, "ann0")
    xml = annotation.to_xml()
    reparsed = parse_xml(xml)
    lines = ["FIG-2  annotation-tab workflow (6 heterogeneous referents)"]
    lines.append(format_row(["metric", "value"], [28, 24]))
    rows = [
        ("referents committed", annotation.referent_count),
        ("distinct data types", len({r.ref.data_type for r in annotation.referents})),
        ("ontology terms", len(annotation.ontology_terms())),
        ("XML elements", reparsed.element_count()),
        ("XML reparses", reparsed.root.tag == "annotation"),
    ]
    for name, value in rows:
        lines.append(format_row([name, value], [28, 24]))
    commit_time = time_call(lambda: _full_annotation(_build_instance(), "x"), repeat=5)
    lines.append(format_row(["commit time (ms)", f"{commit_time * 1e3:.3f}"], [28, 24]))
    return "\n".join(lines)


if __name__ == "__main__":
    print(report())
