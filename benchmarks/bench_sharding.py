"""PERF-9: scatter-gather sharding throughput, with an enforced floor.

The mixed concurrent workload models the serving traffic shape the paper's
deployment implies — four worker threads interleaving repeated structural
queries (~87%) with single-annotation commits (~13%) over a shared corpus.
On a single :class:`~repro.service.GraphittiService`, every commit bumps the
one mutation epoch, so every hot query re-executes from scratch after every
write.  On a :class:`~repro.shard.ShardedGraphittiService`, a commit routes
to one shard and invalidates only that shard's cache: the same hot query
re-executes 1/N of its work and serves the rest from the other shards'
still-valid entries.

Measured throughput (ops/second, best of three rounds per system):

* baseline — one unsharded ``GraphittiService``;
* candidate — ``ShardedGraphittiService`` with :data:`SHARD_COUNT` shards.

Floor: **>= 2x** at 4 shards.  A bit-identical oracle check runs first: the
same deterministic mixed workload applied to a sharded and an unsharded
instance must produce identical query results, ordering included.

``python -m benchmarks.bench_sharding`` prints the table, writes
``BENCH_sharding.json`` via the harness, and exits non-zero below the floor
(or on an oracle mismatch).  Set ``BENCH_SMOKE=1`` for the CI-sized run
(the floor still applies).
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from benchmarks._harness import format_row, sample_stats, speedup, write_results
from repro.core.manager import Graphitti
from repro.datatypes.sequence import DnaSequence
from repro.service import GraphittiService
from repro.shard import ShardedGraphittiService

#: Minimum acceptable mixed-workload throughput multiple at SHARD_COUNT shards.
SHARDING_SPEEDUP_FLOOR = 2.0

#: Shards in the candidate configuration.
SHARD_COUNT = 4

_SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: (corpus annotations, ops per worker thread, measurement rounds).
SCALE = (2000, 80, 3) if _SMOKE else (2400, 120, 3)

#: Worker threads driving the mixed workload.
THREADS = 4

#: One commit per this many operations per thread (~13% writes).
WRITE_EVERY = 8

OBJECTS = 16

#: The repeated structural queries the readers cycle through — selective
#: enough that re-execution (not result copying) dominates a cache miss.
QUERIES = (
    'SELECT contents WHERE { CONTENT CONTAINS "alpha" INTERVAL OVERLAPS mix:chr1 [0, 8000] }',
    'SELECT contents WHERE { CONTENT CONTAINS "beta" INTERVAL OVERLAPS mix:chr1 [0, 9000] }',
    "SELECT contents WHERE { INTERVAL OVERLAPS mix:chr1 [500, 4000] MINCOUNT 1 }",
    'SELECT contents WHERE { ANY { CONTENT CONTAINS "gamma" CONTENT CONTAINS "delta" } }',
    'SELECT contents WHERE { CONTENT CONTAINS "epsilon" INTERVAL OVERLAPS mix:chr1 [1000, 12000] }',
    "SELECT referents WHERE { INTERVAL OVERLAPS mix:chr1 [2000, 6000] }",
)

_KEYWORDS = ("alpha", "beta", "gamma", "delta", "epsilon")


def seed_corpus(service, corpus: int) -> list[str]:
    """Register the shared object pool and bulk-load the query corpus."""
    object_ids = []
    for index in range(OBJECTS):
        obj = DnaSequence(
            f"mix{index}", "ACGT" * 250, domain="mix:chr1", offset=index * 1000
        )
        service.register(obj)
        object_ids.append(obj.object_id)
    rng = random.Random(11)
    batch = []
    for index in range(corpus):
        batch.append(
            service.new_annotation(
                f"seed-{index:05d}",
                title=f"seed annotation {index}",
                keywords=[rng.choice(_KEYWORDS), "common"],
                body=f"sharding benchmark corpus {index}",
            ).mark_sequence(object_ids[index % OBJECTS], (index * 13) % 900, (index * 13) % 900 + 40)
        )
    service.bulk_commit(batch)
    return object_ids


def run_mixed_workload(service, object_ids: list[str], ops: int, tag: str) -> float:
    """Drive THREADS concurrent workers; returns elapsed wall-clock seconds."""

    def worker(worker_id: int) -> None:
        rng = random.Random(1000 + worker_id)
        serial = 0
        for op in range(ops):
            if op % WRITE_EVERY == WRITE_EVERY - 1:
                (
                    service.new_annotation(
                        f"{tag}-w{worker_id}-{serial}",
                        title="mixed workload write",
                        keywords=[rng.choice(_KEYWORDS)],
                        body="written mid-workload",
                    )
                    .mark_sequence(
                        object_ids[rng.randrange(OBJECTS)],
                        rng.randrange(900),
                        rng.randrange(900, 950),
                    )
                    .commit()
                )
                serial += 1
            else:
                service.query(QUERIES[rng.randrange(len(QUERIES))])

    threads = [
        threading.Thread(target=worker, args=(worker_id,), name=f"bench-shard-{worker_id}")
        for worker_id in range(THREADS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start


def check_oracle_equivalence() -> None:
    """Sharded and unsharded must answer bit-identically on the same corpus.

    Applies the same deterministic mixed sequence (commits, deletes, and the
    full query set) to both systems and compares every result's annotation
    ids — ordering included — plus referent pages.
    """
    sharded = ShardedGraphittiService(shards=SHARD_COUNT, name="oracle-sharded")
    single = GraphittiService(manager=Graphitti("oracle-single"))
    corpus = 300
    for service in (sharded, single):
        seed_corpus(service, corpus)
    rng = random.Random(5)
    victims = sorted(rng.sample(range(corpus), 12))
    for service in (sharded, single):
        for victim in victims:
            service.delete_annotation(f"seed-{victim:05d}")
    probes = QUERIES + (
        'SELECT contents WHERE { NOT { CONTENT CONTAINS "alpha" } }',
        'SELECT contents WHERE { CONTENT CONTAINS "common" } LIMIT 17',
    )
    for text in probes:
        left = sharded.query(text)
        right = single.query(text)
        if left.annotation_ids != right.annotation_ids:
            raise AssertionError(f"sharded result diverges from oracle for {text!r}")
        left_refs = [referent.referent_id for referent in left.referents]
        right_refs = [referent.referent_id for referent in right.referents]
        if left_refs != right_refs:
            raise AssertionError(f"sharded referent page diverges for {text!r}")
    sharded.close()
    single.close()


def measure() -> list[dict[str, float]]:
    """Best-of-rounds mixed-workload throughput for both systems."""
    corpus, ops, rounds = SCALE
    single = GraphittiService(manager=Graphitti("bench-shard-single"))
    sharded = ShardedGraphittiService(shards=SHARD_COUNT, name="bench-sharded")
    single_objects = seed_corpus(single, corpus)
    sharded_objects = seed_corpus(sharded, corpus)
    for text in QUERIES:  # warm both caches once
        single.query(text)
        sharded.query(text)
    total_ops = THREADS * ops
    samples = {"single": [], "sharded": []}
    # Alternate systems per round so machine drift hits both equally.
    for round_index in range(rounds):
        samples["single"].append(run_mixed_workload(single, single_objects, ops, f"s{round_index}"))
        samples["sharded"].append(run_mixed_workload(sharded, sharded_objects, ops, f"h{round_index}"))
    best = {name: total_ops / min(rounds_s) for name, rounds_s in samples.items()}
    single_stats = single.statistics()["service"]["query_cache"]
    sharded_stats = sharded.statistics()["service"]["query_cache"]
    single.close()
    sharded.close()
    single_row = {
        "workload": "mixed_concurrent",
        "shards": 1,
        "ops_per_second": best["single"],
        "cache_hit_rate": single_stats["hit_rate"],
        "threads": THREADS,
        "corpus": corpus,
    }
    single_row.update(sample_stats(samples["single"]))
    sharded_row = {
        "workload": "mixed_concurrent",
        "shards": SHARD_COUNT,
        "ops_per_second": best["sharded"],
        "cache_hit_rate": sharded_stats["hit_rate"],
        "threads": THREADS,
        "corpus": corpus,
        "speedup": speedup(1.0 / best["single"], 1.0 / best["sharded"]),
    }
    sharded_row.update(sample_stats(samples["sharded"]))
    return [single_row, sharded_row]


def report() -> int:
    check_oracle_equivalence()
    print("oracle check: sharded == unsharded (bit-identical, ordering included)")
    rows = measure()
    widths = (18, 8, 14, 14, 10)
    print(format_row(("workload", "shards", "ops/second", "cache hit", "speedup"), widths))
    for row in rows:
        print(
            format_row(
                (
                    row["workload"],
                    row["shards"],
                    f"{row['ops_per_second']:.0f}",
                    f"{row['cache_hit_rate']:.1%}",
                    f"{row.get('speedup', 1.0):.2f}x",
                ),
                widths,
            )
        )
    write_results(
        "sharding",
        rows,
        smoke=_SMOKE,
        floor=SHARDING_SPEEDUP_FLOOR,
        shard_count=SHARD_COUNT,
        write_every=WRITE_EVERY,
    )
    achieved = rows[-1].get("speedup", 0.0)
    if achieved < SHARDING_SPEEDUP_FLOOR:
        print(
            f"FAIL: {SHARD_COUNT}-shard mixed-workload speedup {achieved:.2f}x "
            f"is below the {SHARDING_SPEEDUP_FLOOR:.1f}x floor"
        )
        return 1
    print(
        f"sharding floor OK: {achieved:.2f}x >= {SHARDING_SPEEDUP_FLOOR:.1f}x "
        f"at {SHARD_COUNT} shards"
    )
    return 0


def test_sharded_matches_unsharded_oracle():
    check_oracle_equivalence()


@pytest.mark.benchmark(group="sharding")
def test_sharding_throughput_floor(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert rows[-1]["speedup"] >= SHARDING_SPEEDUP_FLOOR


if __name__ == "__main__":
    raise SystemExit(report())
