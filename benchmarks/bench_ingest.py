"""PERF-7: annotation ingest throughput, Graphitti vs. relational baseline.

Reproduces the cost of the full commit path (content XML + referent indexing +
a-graph edges) and compares it against a Bhagwat-style single-table relational
annotation store that only inserts rows.
"""

from __future__ import annotations

import random

import pytest

from benchmarks._harness import format_row, time_call
from repro import Graphitti
from repro.baselines.relational_annotation import RelationalAnnotationStore
from repro.datatypes import DnaSequence

COUNTS = (100, 500, 2000)


def _ingest_graphitti(count: int, seed: int = 7) -> Graphitti:
    rng = random.Random(seed)
    g = Graphitti("ingest")
    g.register(DnaSequence("seq", "ACGT" * 5000, domain="chr1"))
    for index in range(count):
        start = rng.randint(0, 19_000)
        (
            g.new_annotation(f"a{index}", keywords=["protease"])
            .mark_sequence("seq", start, start + rng.randint(5, 40))
            .commit()
        )
    return g


def _ingest_relational(count: int, seed: int = 7) -> RelationalAnnotationStore:
    rng = random.Random(seed)
    store = RelationalAnnotationStore(indexed=True)
    for index in range(count):
        start = rng.randint(0, 19_000)
        store.add_referent_row(
            f"a{index}", "protease", "seq", "dna", "chr1", start, start + rng.randint(5, 40), None
        )
    return store


@pytest.mark.parametrize("count", COUNTS)
def test_graphitti_ingest(benchmark, count):
    benchmark(lambda: _ingest_graphitti(count))


@pytest.mark.parametrize("count", COUNTS)
def test_relational_ingest(benchmark, count):
    benchmark(lambda: _ingest_relational(count))


def report() -> str:
    lines = ["PERF-7  annotation ingest: Graphitti (indexed) vs relational baseline"]
    lines.append(format_row(["annos", "graphitti (ms)", "relational (ms)", "ratio"], [8, 16, 16, 8]))
    for count in COUNTS:
        g_time = time_call(lambda: _ingest_graphitti(count), repeat=3)
        r_time = time_call(lambda: _ingest_relational(count), repeat=3)
        ratio = g_time / r_time if r_time else float("inf")
        lines.append(
            format_row(
                [count, f"{g_time * 1e3:.2f}", f"{r_time * 1e3:.2f}", f"{ratio:.1f}x"],
                [8, 16, 16, 8],
            )
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(report())
