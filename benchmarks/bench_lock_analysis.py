"""PERF-11: the lock-order monitor must be free when it is not installed.

``repro.analysis.runtime.monitoring()`` patches the four
:class:`~repro.service.locks.ReadWriteLock` methods *class-wide* for the
duration of the context and restores the originals on exit.  The design
contract is zero cost by construction in default mode: when no monitor is
active, the lock methods are the pristine class functions — not wrappers
with a disabled flag — so the serving path pays nothing for the analysis
subsystem existing.  This benchmark enforces that contract two ways:

* an **identity check** — after a ``monitoring()`` round has been entered
  and exited, the four methods must be the very same function objects the
  class shipped with (``is``, not equality);
* a **throughput gate** — a lock-hot read/write workload timed on the
  pristine class vs. the same workload after a monitoring cycle (any
  residue would show up here) must differ by less than
  :data:`OVERHEAD_GATE`.

The instrumented cost (workload *inside* ``monitoring()``) is reported as
an informational row — the opt-in mode is allowed to be slow, so it is not
gated.

Measurement alternates baseline/candidate rounds (machine drift hits both
sides equally) and compares best-of-rounds; a microsecond-scale path needs
best-of, not means, or scheduler noise alone can breach the gate.  Up to
:data:`MAX_BATCHES` extra sample batches are taken before declaring
failure.

``python -m benchmarks.bench_lock_analysis`` prints the table, writes
``BENCH_lock_analysis.json``, and exits non-zero over the gate.  Set
``BENCH_SMOKE=1`` for the CI-sized run (the gate still applies).
"""

from __future__ import annotations

import os

from benchmarks._harness import format_row, sample_stats, time_samples, write_results
from repro.analysis.runtime import monitoring
from repro.service.locks import ReadWriteLock

#: Maximum acceptable slowdown of the default (uninstrumented) lock path
#: after a monitoring cycle, vs. the pristine class.
OVERHEAD_GATE = 0.10

_SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: Lock acquisitions per timed sample (read-heavy, 1 write per 8 reads).
OPS_PER_PASS = 2_000 if _SMOKE else 12_000

#: Alternating baseline/candidate rounds per batch, and retry batches.
ROUNDS_PER_BATCH = 7
MAX_BATCHES = 4

#: The methods monitoring() swaps; each must be pristine when it is off.
PATCHED_METHODS = ("acquire_read", "release_read", "acquire_write", "release_write")

_PRISTINE = {name: getattr(ReadWriteLock, name) for name in PATCHED_METHODS}


def assert_methods_pristine(when: str) -> None:
    for name in PATCHED_METHODS:
        current = getattr(ReadWriteLock, name)
        assert current is _PRISTINE[name], (
            f"ReadWriteLock.{name} is not the pristine class function {when}: "
            f"{current!r} — default mode must not carry monitor residue"
        )


def lock_pass(lock: ReadWriteLock) -> None:
    """A read-heavy lock workload: the shape of the serving fast path."""
    for index in range(OPS_PER_PASS):
        if index % 8 == 0:
            with lock.write_locked():
                pass
        else:
            with lock.read_locked():
                pass


def measure() -> dict[str, float]:
    lock = ReadWriteLock()
    assert_methods_pristine("before any monitoring round")
    lock_pass(lock)  # warm allocator / bytecode caches once

    baseline_samples: list[float] = []
    candidate_samples: list[float] = []
    instrumented_samples: list[float] = []
    overhead = float("inf")
    for _ in range(MAX_BATCHES):
        # Alternate sides within the batch so drift hits both equally.  The
        # candidate side runs a full install/uninstall cycle *before* its
        # timed pass: any residue the cycle leaves behind is what we gate.
        for _ in range(ROUNDS_PER_BATCH):
            baseline_samples.extend(time_samples(lambda: lock_pass(lock), repeat=1))
            with monitoring() as monitor:
                instrumented_samples.extend(
                    time_samples(lambda: lock_pass(lock), repeat=1)
                )
            assert monitor.edges is not None  # the round actually recorded
            assert_methods_pristine("after a monitoring round")
            candidate_samples.extend(time_samples(lambda: lock_pass(lock), repeat=1))
        overhead = min(candidate_samples) / min(baseline_samples) - 1.0
        if overhead < OVERHEAD_GATE:
            break

    row = {
        "workload": "rwlock_default_mode",
        "baseline_seconds": min(baseline_samples),
        "candidate_seconds": min(candidate_samples),
        "instrumented_seconds": min(instrumented_samples),
        "overhead": overhead,
        "overhead_gate": OVERHEAD_GATE,
        "ops_per_pass": OPS_PER_PASS,
    }
    row.update(sample_stats(baseline_samples, prefix="baseline"))
    row.update(sample_stats(candidate_samples, prefix="candidate"))
    row.update(sample_stats(instrumented_samples, prefix="instrumented"))
    return row


def test_default_mode_lock_overhead_under_gate():
    row = measure()
    assert row["overhead"] < OVERHEAD_GATE


def report() -> tuple[str, bool]:
    row = measure()
    ok = row["overhead"] < OVERHEAD_GATE
    widths = [22, 14, 14, 14, 10, 8]
    lines = [
        "PERF-11  lock-order monitor residue on the default lock path "
        f"({OPS_PER_PASS} lock ops/sample{', smoke' if _SMOKE else ''})",
        format_row(
            ["workload", "pristine (ms)", "cycled (ms)", "monitored (ms)", "overhead", "gate"],
            widths,
        ),
        format_row(
            [
                row["workload"],
                f"{row['baseline_seconds'] * 1e3:.3f}",
                f"{row['candidate_seconds'] * 1e3:.3f}",
                f"{row['instrumented_seconds'] * 1e3:.3f}",
                f"{row['overhead']:+.1%}",
                f"<{OVERHEAD_GATE:.0%}",
            ],
            widths,
        ),
    ]
    path = write_results(
        "lock_analysis",
        [row],
        ops_per_pass=OPS_PER_PASS,
        smoke=_SMOKE,
        overhead_gate=OVERHEAD_GATE,
    )
    for key in ("baseline_p99_seconds", "candidate_p99_seconds"):
        assert key in row, f"percentile key {key} missing from the results row"
    lines.append(f"results written to {path}")
    if not ok:
        lines.append(
            f"FAIL: a monitoring cycle leaves {row['overhead']:+.1%} residue on "
            f"the default lock path (gate <{OVERHEAD_GATE:.0%})"
        )
    return "\n".join(lines), ok


if __name__ == "__main__":
    text, ok = report()
    print(text)
    raise SystemExit(0 if ok else 1)
