"""PERF-8: the serving layer's two fast paths, with enforced floors.

Two workloads measure what :mod:`repro.service` adds over the bare engine:

* **cached repeated queries** — the same GQL query set executed repeatedly
  through a cache-fronted service vs. one with caching disabled (both pay
  the same locking; the delta is the epoch-validated result cache plus the
  prepared-plan memo).  Floor: **>= 5x**.
* **bulk vs. sequential durable commits** — N annotations committed through
  ``bulk_commit`` (one lock acquisition, one group-committed WAL batch,
  deferred keyword indexing) vs. one ``commit`` per annotation (per-record
  fsync), on a fresh durable root each round.  Floor: **>= 2x**.

``python -m benchmarks.bench_service`` prints the table, writes
``BENCH_service.json`` via the harness, and exits non-zero below a floor.
Set ``BENCH_SMOKE=1`` for the CI-sized run (floors still apply).
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
import time

import pytest

from benchmarks._harness import format_row, sample_stats, speedup, time_samples, write_results
from repro.core.manager import Graphitti
from repro.service import GraphittiService, ServiceConfig
from repro.workloads.service_scenario import READER_QUERIES, seed_service_objects

#: Minimum acceptable speedups.
CACHE_SPEEDUP_FLOOR = 5.0
BULK_SPEEDUP_FLOOR = 2.0

_SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: (annotations in the query corpus, query repetitions, bulk-commit batch).
SCALE = (150, 20, 80) if _SMOKE else (800, 50, 300)

_KEYWORDS = ("workload", "binding", "cleavage", "regulatory", "conserved", "mutation")


def build_corpus() -> Graphitti:
    """A populated instance the repeated-query workload runs against."""
    annotation_count, _, _ = SCALE
    rng = random.Random(20240702)
    manager = Graphitti("bench-service")
    object_ids = seed_service_objects(manager)
    for index in range(annotation_count):
        object_id = object_ids[index % len(object_ids)]
        start = rng.randrange(0, 900)
        (
            manager.new_annotation(
                f"bench-{index}",
                title=f"bench annotation {index}",
                creator=f"bench-{index % 5}",
                keywords=["workload", rng.choice(_KEYWORDS)],
                body=f"benchmark annotation over {object_id}",
            )
            .mark_sequence(object_id, start, start + rng.randrange(10, 120))
            .commit()
        )
    return manager


def _run_queries(service: GraphittiService) -> int:
    total = 0
    for text in READER_QUERIES:
        total += service.query(text).count
    return total


def measure_cache() -> dict[str, float]:
    """Repeated-query latency, cache-fronted vs. cache-disabled."""
    _, repetitions, _ = SCALE
    manager = build_corpus()
    uncached = GraphittiService(
        manager=manager, config=ServiceConfig(cache_capacity=0, plan_cache_capacity=0)
    )
    cached = GraphittiService(manager=manager, config=ServiceConfig())
    baseline_hits = _run_queries(uncached)
    warm_hits = _run_queries(cached)  # warm the cache once
    assert baseline_hits == warm_hits, "cached and uncached services disagree"

    def uncached_pass() -> None:
        for _ in range(repetitions):
            _run_queries(uncached)

    def cached_pass() -> None:
        for _ in range(repetitions):
            _run_queries(cached)

    uncached_samples = time_samples(uncached_pass, repeat=3)
    cached_samples = time_samples(cached_pass, repeat=3)
    uncached_seconds = min(uncached_samples)
    cached_seconds = min(cached_samples)
    row = {
        "workload": "cached_repeated_queries",
        "baseline_seconds": uncached_seconds,
        "candidate_seconds": cached_seconds,
        "speedup": speedup(uncached_seconds, cached_seconds),
        "queries_per_pass": repetitions * len(READER_QUERIES),
        "hit_rate": cached.statistics()["service"]["query_cache"]["hit_rate"],
    }
    row.update(sample_stats(uncached_samples, prefix="baseline"))
    row.update(sample_stats(cached_samples, prefix="candidate"))
    return row


def _build_batch(manager: Graphitti, object_ids: list[str], count: int) -> list:
    rng = random.Random(7)
    batch = []
    for index in range(count):
        object_id = object_ids[index % len(object_ids)]
        start = rng.randrange(0, 900)
        builder = manager.new_annotation(
            f"ingest-{index}",
            title=f"ingest annotation {index}",
            creator="ingester",
            keywords=["workload", rng.choice(_KEYWORDS)],
            body=f"bulk ingest benchmark annotation over {object_id}",
        ).mark_sequence(object_id, start, start + rng.randrange(10, 120))
        batch.append(builder.build())
    return batch


def _time_ingest(bulk: bool, rounds: int = 3) -> list[float]:
    """Wall-clock seconds per round to durably commit the batch, fresh state per round."""
    _, _, batch_size = SCALE
    samples: list[float] = []
    for _ in range(rounds):
        root = tempfile.mkdtemp(prefix="bench-service-")
        try:
            manager = Graphitti("bench-ingest")
            object_ids = seed_service_objects(manager)
            batch = _build_batch(manager, object_ids, batch_size)
            service = GraphittiService(
                manager=manager,
                root=root,
                config=ServiceConfig(durability="always", checkpoint_on_close=False),
            )
            start = time.perf_counter()
            if bulk:
                service.bulk_commit(batch)
            else:
                for annotation in batch:
                    service.commit(annotation)
            samples.append(time.perf_counter() - start)
            service.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return samples


def measure_bulk() -> dict[str, float]:
    """Durable ingest: one group-committed batch vs. per-annotation commits."""
    _, _, batch_size = SCALE
    sequential_samples = _time_ingest(bulk=False)
    bulk_samples = _time_ingest(bulk=True)
    sequential_seconds = min(sequential_samples)
    bulk_seconds = min(bulk_samples)
    row = {
        "workload": "bulk_commit",
        "baseline_seconds": sequential_seconds,
        "candidate_seconds": bulk_seconds,
        "speedup": speedup(sequential_seconds, bulk_seconds),
        "batch_size": batch_size,
    }
    row.update(sample_stats(sequential_samples, prefix="baseline"))
    row.update(sample_stats(bulk_samples, prefix="candidate"))
    return row


def _bulk_equivalence_check() -> None:
    """Sanity: bulk and sequential ingest produce identical served state."""
    roots = [tempfile.mkdtemp(prefix="bench-service-eq-") for _ in range(2)]
    try:
        states = []
        for bulk, root in zip((False, True), roots):
            manager = Graphitti("bench-ingest")
            object_ids = seed_service_objects(manager)
            batch = _build_batch(manager, object_ids, 40)
            service = GraphittiService(manager=manager, root=root)
            if bulk:
                service.bulk_commit(batch)
            else:
                for annotation in batch:
                    service.commit(annotation)
            probe = service.query('SELECT contents WHERE { CONTENT CONTAINS "workload" }')
            stats = service.statistics()
            states.append((sorted(probe.annotation_ids), stats["annotations"], stats["referents"]))
            service.close()
        assert states[0] == states[1], "bulk commit changed the served state"
    finally:
        for root in roots:
            shutil.rmtree(root, ignore_errors=True)


# -- pytest-benchmark entry points --------------------------------------------


@pytest.fixture(scope="module")
def corpus_services():
    manager = build_corpus()
    uncached = GraphittiService(
        manager=manager, config=ServiceConfig(cache_capacity=0, plan_cache_capacity=0)
    )
    cached = GraphittiService(manager=manager, config=ServiceConfig())
    _run_queries(cached)
    return uncached, cached


def test_uncached_queries(benchmark, corpus_services):
    uncached, _ = corpus_services
    benchmark(lambda: _run_queries(uncached))


def test_cached_queries(benchmark, corpus_services):
    _, cached = corpus_services
    benchmark(lambda: _run_queries(cached))


# -- report -------------------------------------------------------------------


def report() -> tuple[str, bool]:
    _bulk_equivalence_check()
    annotation_count, repetitions, batch_size = SCALE
    cache_row = measure_cache()
    bulk_row = measure_bulk()
    floors = {
        "cached_repeated_queries": CACHE_SPEEDUP_FLOOR,
        "bulk_commit": BULK_SPEEDUP_FLOOR,
    }
    lines = [
        "PERF-8  serving layer: result cache + group-committed bulk ingest "
        f"({annotation_count} annotations, {batch_size}-annotation batches"
        f"{', smoke' if _SMOKE else ''})"
    ]
    widths = [26, 16, 16, 10, 8]
    lines.append(
        format_row(["workload", "baseline (ms)", "service (ms)", "speedup", "floor"], widths)
    )
    ok = True
    for row in (cache_row, bulk_row):
        floor = floors[row["workload"]]
        ok = ok and row["speedup"] >= floor
        row["speedup_floor"] = floor
        lines.append(
            format_row(
                [
                    row["workload"],
                    f"{row['baseline_seconds'] * 1e3:.3f}",
                    f"{row['candidate_seconds'] * 1e3:.3f}",
                    f"{row['speedup']:.1f}x",
                    f"{floor:.0f}x",
                ],
                widths,
            )
        )
    path = write_results(
        "service",
        [cache_row, bulk_row],
        annotations=annotation_count,
        query_repetitions=repetitions,
        bulk_batch_size=batch_size,
        smoke=_SMOKE,
        cache_speedup_floor=CACHE_SPEEDUP_FLOOR,
        bulk_speedup_floor=BULK_SPEEDUP_FLOOR,
    )
    lines.append(f"results written to {path}")
    if not ok:
        lines.append("FAIL: at least one workload is below its speedup floor")
    return "\n".join(lines), ok


if __name__ == "__main__":
    text, ok = report()
    print(text)
    raise SystemExit(0 if ok else 1)
