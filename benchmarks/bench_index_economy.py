"""PERF-1/PERF-2 ablation: index economy and index-structure alternatives.

Two ablations the paper's design implies:

1. **Index economy** -- "a single interval tree per chromosome instead of per
   annotated DNA sequence".  We build the same workload with all sequences
   sharing one coordinate domain (one tree) vs. each sequence on its own domain
   (many trees), and compare overlap-query latency and structure count.

2. **Structure alternatives** -- interval tree vs. segment tree (1D), R-tree
   (insert) vs. R-tree (STR bulk load) vs. KD-tree (2D).
"""

from __future__ import annotations

import random

from benchmarks._harness import format_row, time_call
from repro import Graphitti
from repro.spatial.interval import Interval
from repro.spatial.interval_tree import IntervalTree
from repro.spatial.kdtree import KdTree
from repro.spatial.rect import Rect
from repro.spatial.rtree import RTree
from repro.spatial.segment_tree import SegmentTree
from repro.workloads.generators import WorkloadConfig, generate_annotation_workload


def _economy_instance(shared: bool, annotation_count: int = 500) -> Graphitti:
    g = Graphitti("economy")
    config = WorkloadConfig(
        seed=11,
        sequence_count=30,
        annotation_count=annotation_count,
        image_count=0,
        shared_domain=shared,
    )
    generate_annotation_workload(g, config)
    return g


def test_shared_domain_query(benchmark):
    g = _economy_instance(shared=True)
    domain = "genome:chrX"
    benchmark(lambda: g.search_by_overlap_interval(domain, 1000, 1100))


def test_per_sequence_query(benchmark):
    g = _economy_instance(shared=False)
    benchmark(lambda: g.search_by_overlap_interval("seq0:dom", 100, 200))


def _make_intervals(n: int, seed: int = 1):
    rng = random.Random(seed)
    return [Interval(x := rng.randint(0, 1_000_000), x + rng.randint(1, 500)) for _ in range(n)]


def _make_rects(n: int, seed: int = 2):
    rng = random.Random(seed)
    return [Rect((x := rng.uniform(0, 10000), y := rng.uniform(0, 10000)), (x + 20, y + 20)) for _ in range(n)]


def report() -> str:
    lines = ["PERF-1/2 ablation: index economy and structure alternatives", ""]

    # 1. index economy
    shared = _economy_instance(shared=True)
    per_seq = _economy_instance(shared=False)
    lines.append("index economy (30 sequences, 500 annotations):")
    lines.append(format_row(["layout", "interval trees", "indexed intervals"], [16, 16, 18]))
    lines.append(format_row(["shared domain", shared.statistics()["interval_trees"], shared.statistics()["indexed_intervals"]], [16, 16, 18]))
    lines.append(format_row(["per sequence", per_seq.statistics()["interval_trees"], per_seq.statistics()["indexed_intervals"]], [16, 16, 18]))
    lines.append("")

    # 2. 1D structures
    intervals = _make_intervals(10000)
    it = IntervalTree.from_intervals(intervals)
    stree = SegmentTree.from_intervals(intervals)
    query = Interval(500_000, 500_200)
    lines.append("1D query (10000 intervals): interval tree vs segment tree")
    lines.append(format_row(["structure", "build (ms)", "stab (us)"], [16, 12, 12]))
    it_build = time_call(lambda: IntervalTree.from_intervals(intervals), repeat=2)
    st_build = time_call(lambda: SegmentTree.from_intervals(intervals), repeat=2)
    it_q = time_call(lambda: it.stab(500_000), repeat=10)
    st_q = time_call(lambda: stree.stab(500_000), repeat=5)
    lines.append(format_row(["interval tree", f"{it_build*1e3:.1f}", f"{it_q*1e6:.2f}"], [16, 12, 12]))
    lines.append(format_row(["segment tree", f"{st_build*1e3:.1f}", f"{st_q*1e6:.2f}"], [16, 12, 12]))
    lines.append("")

    # 3. 2D structures
    rects = _make_rects(10000)
    rt = RTree.from_rects(rects, max_entries=16)
    rt_bulk = RTree.bulk_load(rects, max_entries=16)
    kd = KdTree.from_rects(rects)
    q = Rect((5000, 5000), (5200, 5200))
    lines.append("2D query (10000 rects): R-tree insert vs R-tree STR vs KD-tree")
    lines.append(format_row(["structure", "build (ms)", "query (us)"], [16, 12, 12]))
    rt_build = time_call(lambda: RTree.from_rects(rects, max_entries=16), repeat=1)
    bulk_build = time_call(lambda: RTree.bulk_load(rects, max_entries=16), repeat=2)
    kd_build = time_call(lambda: KdTree.from_rects(rects), repeat=2)
    lines.append(format_row(["R-tree insert", f"{rt_build*1e3:.1f}", f"{time_call(lambda: rt.search_overlap(q), repeat=10)*1e6:.2f}"], [16, 12, 12]))
    lines.append(format_row(["R-tree STR", f"{bulk_build*1e3:.1f}", f"{time_call(lambda: rt_bulk.search_overlap(q), repeat=10)*1e6:.2f}"], [16, 12, 12]))
    lines.append(format_row(["KD-tree", f"{kd_build*1e3:.1f}", f"{time_call(lambda: kd.search_overlap(q), repeat=10)*1e6:.2f}"], [16, 12, 12]))
    return "\n".join(lines)


if __name__ == "__main__":
    print(report())
