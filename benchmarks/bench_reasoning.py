"""PERF-5 extension: ontology reasoning latency vs. ontology size.

Times the reasoning-layer operations (lowest-common-ancestor, Wu-Palmer
similarity, relation path) as the ontology grows, confirming they stay cheap
on laptop-scale ontologies.
"""

from __future__ import annotations

import random

import pytest

from benchmarks._harness import format_row, time_call
from repro.ontology.reasoning import OntologyReasoner
from repro.workloads.generators import generate_ontology_dag

DEPTHS = (3, 4, 5)


def _reasoner(depth: int) -> tuple[OntologyReasoner, str, str]:
    ontology = generate_ontology_dag("O", depth=depth, branching=3, instances_per_leaf=1, rng=random.Random(5))
    concepts = [term.term_id for term in ontology.concepts()]
    return OntologyReasoner(ontology), concepts[0], concepts[-1]


@pytest.mark.parametrize("depth", DEPTHS)
def test_lca(benchmark, depth):
    reasoner, a, b = _reasoner(depth)
    benchmark(lambda: reasoner.lowest_common_ancestors(a, b))


@pytest.mark.parametrize("depth", DEPTHS)
def test_similarity(benchmark, depth):
    reasoner, a, b = _reasoner(depth)
    benchmark(lambda: reasoner.wu_palmer_similarity(a, b))


@pytest.mark.parametrize("depth", DEPTHS)
def test_relation_path(benchmark, depth):
    reasoner, a, b = _reasoner(depth)
    benchmark(lambda: reasoner.relation_path(a, b))


def report() -> str:
    lines = ["PERF-5 ext  ontology reasoning latency vs size"]
    lines.append(format_row(["depth", "terms", "lca (us)", "wu-palmer (us)", "path (us)"], [8, 8, 12, 16, 12]))
    for depth in DEPTHS:
        reasoner, a, b = _reasoner(depth)
        terms = reasoner.ontology.term_count
        lca_time = time_call(lambda: reasoner.lowest_common_ancestors(a, b), repeat=10)
        sim_time = time_call(lambda: reasoner.wu_palmer_similarity(a, b), repeat=10)
        path_time = time_call(lambda: reasoner.relation_path(a, b), repeat=10)
        lines.append(
            format_row(
                [depth, terms, f"{lca_time*1e6:.2f}", f"{sim_time*1e6:.2f}", f"{path_time*1e6:.2f}"],
                [8, 8, 12, 16, 12],
            )
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(report())
