"""PERF-3 / FIG-1: a-graph path & connection primitives vs. naive search.

Reproduces the a-graph's role as a "labeled join index": path() and connect()
over the indexed multigraph vs. a naive unindexed edge-list BFS and networkx.
"""

from __future__ import annotations

import random

import pytest

from benchmarks._harness import format_row, sample_stats, speedup, time_call, time_samples, write_results
from repro.agraph.agraph import AGraph
from repro.baselines.naive_graph import NaiveGraph, networkx_shortest_path

SIZES = (200, 2000, 10000)


def _build_agraph(content_count: int, seed: int = 3) -> tuple[AGraph, list, list]:
    """Build a bipartite content/referent a-graph with shared referents."""
    rng = random.Random(seed)
    g = AGraph()
    referent_count = max(2, content_count // 2)
    referents = [f"r{i}" for i in range(referent_count)]
    for referent in referents:
        g.add_referent(referent)
    contents = []
    for index in range(content_count):
        content = f"c{index}"
        g.add_content(content)
        contents.append(content)
        for _ in range(rng.randint(1, 3)):
            g.link_annotation(content, rng.choice(referents))
    return g, contents, referents


def _edges_of(agraph: AGraph) -> list:
    return [(edge.source, edge.target) for edge in agraph.graph.edges()]


@pytest.mark.parametrize("size", SIZES)
def test_agraph_path(benchmark, size):
    g, contents, _ = _build_agraph(size)
    source, target = contents[0], contents[-1]
    benchmark(lambda: g.path(source, target))


@pytest.mark.parametrize("size", (200, 2000))
def test_naive_path(benchmark, size):
    g, contents, _ = _build_agraph(size)
    edges = _edges_of(g)
    source, target = contents[0], contents[-1]

    def run():
        naive = NaiveGraph()
        for s, t in edges:
            naive.add_edge(s, t)
        return naive.path(source, target)

    benchmark(run)


@pytest.mark.parametrize("size", SIZES)
def test_agraph_connect(benchmark, size):
    g, contents, _ = _build_agraph(size)
    terminals = contents[:5]
    benchmark(lambda: g.connect(*terminals))


@pytest.mark.parametrize("size", SIZES)
def test_agraph_related(benchmark, size):
    g, contents, _ = _build_agraph(size)
    target = contents[0]
    benchmark(lambda: g.related_annotations(target))


def report() -> str:
    lines = ["PERF-3  a-graph path() vs naive edge-list BFS vs networkx"]
    lines.append(format_row(["nodes", "agraph (us)", "naive (us)", "networkx (us)", "speedup"], [10, 13, 13, 14, 10]))
    rows = []
    for size in SIZES:
        g, contents, _ = _build_agraph(size)
        edges = _edges_of(g)
        source, target = contents[0], contents[-1]
        agraph_samples = time_samples(lambda: g.path(source, target), repeat=10)
        agraph_time = min(agraph_samples)

        def naive_run():
            naive = NaiveGraph()
            for s, t in edges:
                naive.add_edge(s, t)
            return naive.path(source, target)

        naive_time = time_call(naive_run, repeat=3)
        nx_time = time_call(lambda: networkx_shortest_path(edges, source, target), repeat=3)
        row = {
            "nodes": g.node_count,
            "agraph_seconds": agraph_time,
            "naive_seconds": naive_time,
            "networkx_seconds": nx_time,
            "speedup": speedup(naive_time, agraph_time),
        }
        row.update(sample_stats(agraph_samples, prefix="agraph"))
        rows.append(row)
        lines.append(
            format_row(
                [
                    g.node_count,
                    f"{agraph_time * 1e6:.2f}",
                    f"{naive_time * 1e6:.1f}",
                    f"{nx_time * 1e6:.1f}",
                    f"{speedup(naive_time, agraph_time):.0f}x",
                ],
                [10, 13, 13, 14, 10],
            )
        )
    write_results("agraph_path", rows)
    return "\n".join(lines)


if __name__ == "__main__":
    print(report())
