"""PERF-10: process-per-shard serving vs the threaded facade, with floors.

The workload is built to be GIL-bound: four client threads issue CPU-heavy,
uncached structural queries (content scans + interval joins over the whole
corpus, result caching disabled) against four shards.  In the threaded
facade every shard executes inside ONE interpreter, so the GIL serialises
the scatter — four concurrent queries contend for one core.  In the network
facade each shard is its own OS process: the same scatter fans out across
four interpreters and runs genuinely in parallel, which must outweigh the
RPC tax (framing + TCP + JSON codec) by construction.

Measured, best of rounds:

* throughput (queries/second across the four client threads), and
* per-query p99 latency (the tail a browsing scientist actually feels).

Floors, when at least two cores are available: network throughput
**>= 1.25x** threaded, and network p99 **no worse than** the threaded p99
(ratio >= 1.0) — the tail must not regress even though every query pays
the wire.  On a single-core machine process parallelism is physically
impossible (four workers time-slice one CPU), so the floors degrade to a
bounded-RPC-tax contract instead: the network tier must stay within a
constant factor of threaded on both throughput and p99.  The JSON records
which contract was enforced (``parallel_floors``/``cores``).

An oracle gate runs first: the network facade must answer the whole probe
set bit-identically to the threaded facade over the same corpus.

``python -m benchmarks.bench_network`` prints the table, writes
``BENCH_network.json``, and exits non-zero below a floor (or on an oracle
mismatch).  ``BENCH_SMOKE=1`` runs the CI-sized version (floors still
apply).
"""

from __future__ import annotations

import os
import random
import tempfile
import threading
import time
from pathlib import Path

import pytest

from benchmarks._harness import format_row, percentile, speedup, write_results
from repro.datatypes.sequence import DnaSequence
from repro.net import NetworkShardedGraphittiService
from repro.service import ServiceConfig
from repro.shard import ShardedGraphittiService

def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


CORES = _cores()

#: With >= 2 cores, process-per-shard must WIN: the scatter fans out across
#: interpreters while the threaded facade serialises on the GIL.
PARALLEL_FLOORS = CORES >= 2

#: Network throughput must beat threaded by at least this multiple.
NETWORK_THROUGHPUT_FLOOR = 1.25

#: Network p99 must be no worse than threaded p99 (threaded_p99 / net_p99).
NETWORK_P99_FLOOR = 1.0

#: Single-core fallback: parallelism cannot exist, so the floor is a bound
#: on the RPC tax — the network tier must keep at least this fraction of
#: threaded throughput, and its p99 at most 1/floor times threaded.
SINGLE_CORE_THROUGHPUT_FLOOR = 0.35
SINGLE_CORE_P99_FLOOR = 0.30

SHARD_COUNT = 4

#: Client threads issuing queries concurrently (one per shard: the point is
#: that the threaded facade serialises them on the GIL, processes do not).
THREADS = 4

_SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: (corpus annotations, queries per client thread, measurement rounds).
SCALE = (4000, 10, 2) if _SMOKE else (6400, 16, 3)

OBJECTS = 16

#: Rare-tag keyword space: each ``tag-NNN`` matches corpus/401 annotations.
#: 401 is coprime with OBJECTS, so one tag's matches spread across all
#: objects and therefore all shards — the scatter genuinely fans out
#: (annotations co-locate with the object they mark).
TAG_MODULUS = 401

#: CPU-heavy but result-light probes.  Every probe joins against the wide
#: interval index (candidate verification is O(corpus)-ish, and the result
#: cache is off so every execution pays it again), yet matches only a thin
#: rare-tag slice — or caps the page with LIMIT — so the cost under
#: measurement is the *join*, which the GIL serialises in-process and
#: worker processes run genuinely in parallel.  Broad probes that return
#: most of the corpus would instead measure the JSON wire tax, which is not
#: the claim under test.
QUERIES = (
    'SELECT contents WHERE { CONTENT CONTAINS "tag-007" INTERVAL OVERLAPS net:chr1 [0, 30000] }',
    'SELECT contents WHERE { CONTENT CONTAINS "tag-123" INTERVAL OVERLAPS net:chr1 [0, 30000] }',
    'SELECT contents WHERE { ANY { CONTENT CONTAINS "tag-042" CONTENT CONTAINS "tag-178" } '
    "INTERVAL OVERLAPS net:chr1 [500, 25000] }",
    'SELECT contents WHERE { CONTENT CONTAINS "tag-299" INTERVAL OVERLAPS net:chr1 [0, 30000] }',
    "SELECT referents WHERE { INTERVAL OVERLAPS net:chr1 [1000, 9000] } LIMIT 8",
    'SELECT contents WHERE { NOT { CONTENT CONTAINS "delta" } } LIMIT 8',
)

_KEYWORDS = ("alpha", "beta", "gamma", "delta", "epsilon")

#: Caches off: the benchmark measures execution, not cache hits.
def _config() -> ServiceConfig:
    return ServiceConfig(cache_capacity=0, durability="never")


def seed_corpus(service, corpus: int) -> None:
    object_ids = []
    for index in range(OBJECTS):
        obj = DnaSequence(
            f"net{index}", "ACGT" * 250, domain="net:chr1", offset=index * 1000
        )
        service.register(obj)
        object_ids.append(obj.object_id)
    rng = random.Random(13)
    batch = []
    for index in range(corpus):
        batch.append(
            service.new_annotation(
                f"seed-{index:05d}",
                title=f"seed annotation {index}",
                keywords=[
                    rng.choice(_KEYWORDS),
                    f"tag-{index % TAG_MODULUS:03d}",
                    "common",
                ],
                body=f"network benchmark corpus {index}",
            ).mark_sequence(
                object_ids[index % OBJECTS], (index * 13) % 900, (index * 13) % 900 + 40
            )
        )
    service.bulk_commit(batch)


def run_query_storm(service, queries_per_thread: int) -> tuple[float, list[float]]:
    """THREADS concurrent clients; returns (elapsed, per-query latencies)."""
    latencies: list[list[float]] = [[] for _ in range(THREADS)]

    def client(thread_index: int) -> None:
        rng = random.Random(500 + thread_index)
        for _ in range(queries_per_thread):
            text = QUERIES[rng.randrange(len(QUERIES))]
            begin = time.perf_counter()
            service.query(text)
            latencies[thread_index].append(time.perf_counter() - begin)

    threads = [
        threading.Thread(target=client, args=(index,), name=f"bench-net-{index}")
        for index in range(THREADS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return elapsed, [sample for bucket in latencies for sample in bucket]


def check_oracle_equivalence(threaded, network) -> None:
    """The network facade must answer bit-identically to the threaded one."""
    for text in QUERIES:
        left = network.query(text)
        right = threaded.query(text)
        if left.annotation_ids != right.annotation_ids:
            raise AssertionError(f"network result diverges from threaded for {text!r}")
        left_refs = [referent.referent_id for referent in left.referents]
        right_refs = [referent.referent_id for referent in right.referents]
        if left_refs != right_refs:
            raise AssertionError(f"network referent page diverges for {text!r}")


def measure() -> list[dict[str, float]]:
    corpus, queries_per_thread, rounds = SCALE
    total = THREADS * queries_per_thread
    threaded = ShardedGraphittiService(
        shards=SHARD_COUNT, name="bench-net-threaded", config=_config()
    )
    seed_corpus(threaded, corpus)
    root = Path(tempfile.mkdtemp(prefix="bench-network-")) / "root"
    network = NetworkShardedGraphittiService.open(
        root, shards=SHARD_COUNT, config=_config(), start_monitor=False
    )
    seed_corpus(network, corpus)
    try:
        check_oracle_equivalence(threaded, network)
        run_query_storm(threaded, 2)  # warm plan caches on both tiers
        run_query_storm(network, 2)
        samples = {"threaded": [], "network": []}
        tails = {"threaded": [], "network": []}
        for _ in range(rounds):
            elapsed, latencies = run_query_storm(threaded, queries_per_thread)
            samples["threaded"].append(elapsed)
            tails["threaded"].append(percentile(latencies, 99))
            elapsed, latencies = run_query_storm(network, queries_per_thread)
            samples["network"].append(elapsed)
            tails["network"].append(percentile(latencies, 99))
    finally:
        network.close()
        threaded.close()
    rows = []
    for name in ("threaded", "network"):
        best = min(samples[name])
        rows.append(
            {
                "system": name,
                "shards": SHARD_COUNT,
                "threads": THREADS,
                "corpus": corpus,
                "queries": total,
                "ops_per_second": total / best,
                "best_seconds": best,
                "mean_seconds": sum(samples[name]) / len(samples[name]),
                "p99_seconds": min(tails[name]),
            }
        )
    rows[1]["speedup"] = speedup(rows[0]["best_seconds"], rows[1]["best_seconds"])
    rows[1]["p99_ratio"] = speedup(rows[0]["p99_seconds"], rows[1]["p99_seconds"])
    return rows


def floors() -> tuple[float, float]:
    """(throughput floor, p99 floor) for this machine's core count."""
    if PARALLEL_FLOORS:
        return NETWORK_THROUGHPUT_FLOOR, NETWORK_P99_FLOOR
    return SINGLE_CORE_THROUGHPUT_FLOOR, SINGLE_CORE_P99_FLOOR


def report() -> int:
    throughput_floor, p99_floor = floors()
    rows = measure()
    print("oracle check: network == threaded (bit-identical, ordering included)")
    mode = (
        f"{CORES} core(s): processes-must-win floors"
        if PARALLEL_FLOORS
        else f"{CORES} core(s): single-core RPC-tax floors"
    )
    print(mode)
    widths = (10, 8, 14, 14, 12, 10)
    print(format_row(("system", "shards", "queries/sec", "p99 (ms)", "speedup", "p99 gain"), widths))
    for row in rows:
        print(
            format_row(
                (
                    row["system"],
                    row["shards"],
                    f"{row['ops_per_second']:.1f}",
                    f"{row['p99_seconds'] * 1000:.1f}",
                    f"{row.get('speedup', 1.0):.2f}x",
                    f"{row.get('p99_ratio', 1.0):.2f}x",
                ),
                widths,
            )
        )
    write_results(
        "network",
        rows,
        smoke=_SMOKE,
        cores=CORES,
        parallel_floors=PARALLEL_FLOORS,
        throughput_floor=throughput_floor,
        p99_floor=p99_floor,
        shard_count=SHARD_COUNT,
        client_threads=THREADS,
    )
    failures = []
    if rows[1]["speedup"] < throughput_floor:
        failures.append(
            f"process-per-shard throughput ratio {rows[1]['speedup']:.2f}x is below "
            f"the {throughput_floor:.2f}x floor"
        )
    if rows[1]["p99_ratio"] < p99_floor:
        failures.append(
            f"network p99 ratio {rows[1]['p99_ratio']:.2f}x is below the "
            f"{p99_floor:.2f}x floor"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print(
            f"network floors OK: {rows[1]['speedup']:.2f}x throughput "
            f"(>= {throughput_floor:.2f}x), p99 ratio {rows[1]['p99_ratio']:.2f}x "
            f"(>= {p99_floor:.2f}x)"
        )
    return 1 if failures else 0


def test_network_matches_threaded_oracle():
    threaded = ShardedGraphittiService(
        shards=SHARD_COUNT, name="oracle-net-threaded", config=_config()
    )
    root = Path(tempfile.mkdtemp(prefix="bench-network-oracle-")) / "root"
    network = NetworkShardedGraphittiService.open(
        root, shards=SHARD_COUNT, config=_config(), start_monitor=False
    )
    try:
        seed_corpus(threaded, 400)
        seed_corpus(network, 400)
        check_oracle_equivalence(threaded, network)
    finally:
        network.close()
        threaded.close()


@pytest.mark.benchmark(group="network")
def test_network_throughput_floor(benchmark):
    throughput_floor, p99_floor = floors()
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert rows[1]["speedup"] >= throughput_floor
    assert rows[1]["p99_ratio"] >= p99_floor


if __name__ == "__main__":
    raise SystemExit(report())
