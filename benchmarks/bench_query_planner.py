"""PERF-6 / Q-2: query planner ordering on vs. off.

Reproduces the benefit of the paper's "find a feasible order among the
subqueries" step: a selective keyword/ontology subquery scheduled first
shrinks the candidate set the less-selective subqueries scan.
"""

from __future__ import annotations

import pytest

from benchmarks._harness import format_row, speedup, time_call
from repro import Graphitti
from repro.query.builder import QueryBuilder
from repro.workloads.generators import WorkloadConfig, generate_annotation_workload

SIZES = (200, 1000, 3000)


def _make_graphitti(annotation_count: int) -> Graphitti:
    g = Graphitti("planner-bench")
    config = WorkloadConfig(
        seed=6,
        sequence_count=20,
        annotation_count=annotation_count,
        image_count=5,
        regions_per_image=30,
    )
    generate_annotation_workload(g, config)
    return g


def _query():
    # A selective keyword + a broad type constraint: ordering matters.
    return (
        QueryBuilder.contents()
        .of_type("dna_sequence")
        .contains("epitope")
        .build()
    )


@pytest.mark.parametrize("size", SIZES)
def test_query_ordered(benchmark, size):
    g = _make_graphitti(size)
    query = _query()
    benchmark(lambda: g.query(query, enable_ordering=True))


@pytest.mark.parametrize("size", SIZES)
def test_query_unordered(benchmark, size):
    g = _make_graphitti(size)
    query = _query()
    benchmark(lambda: g.query(query, enable_ordering=False))


def report() -> str:
    lines = ["PERF-6  query planner ordering on vs off"]
    lines.append(format_row(["annos", "ordered (us)", "naive (us)", "speedup"], [8, 14, 13, 10]))
    for size in SIZES:
        g = _make_graphitti(size)
        query = _query()
        ordered = time_call(lambda: g.query(query, enable_ordering=True), repeat=5)
        naive = time_call(lambda: g.query(query, enable_ordering=False), repeat=5)
        lines.append(
            format_row(
                [size, f"{ordered * 1e6:.1f}", f"{naive * 1e6:.1f}", f"{speedup(naive, ordered):.2f}x"],
                [8, 14, 13, 10],
            )
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(report())
