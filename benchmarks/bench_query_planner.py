"""PERF-6 / Q-2: query planning — static constants vs. stats-driven adaptive.

Two workloads:

* **ordering on vs. off** (the original PERF-6 reproduction): the benefit of
  the paper's "find a feasible order among the subqueries" step at all.
* **skewed cardinalities** (the PR-3 tentpole): one low-selectivity keyword
  (matching ~90% of a >=10k-annotation corpus) conjoined with one
  high-selectivity spatial window (matching a handful).  The static
  constant-table planner schedules the keyword first and materializes its
  ~10k-row match set; the statistics-driven planner measures both
  cardinalities, runs the window first, and **semi-join probes** the
  surviving candidates against the keyword index.  Floor: **>= 3x**.
* **small-end default** (ROADMAP item 5): below
  :data:`~repro.query.planner.SMALL_CORPUS_THRESHOLD` annotations the
  estimate pass used to cost 0.83–0.94x against static ordering, so the
  implicit default now falls back to the static table there.  Floor: the
  implicit default must stay within **>= 0.95x** of explicit static
  ordering on every sub-threshold corpus size.

``python -m benchmarks.bench_query_planner`` prints the tables, writes
``BENCH_query_planner.json`` via the harness, and exits non-zero below
either floor (the CI benchmark job runs exactly that).
"""

from __future__ import annotations

import random

import pytest

from benchmarks._harness import (
    format_row,
    sample_stats,
    speedup,
    time_call,
    time_samples,
    write_results,
)
from repro import Graphitti
from repro.datatypes import DnaSequence
from repro.query.builder import QueryBuilder
from repro.workloads.generators import WorkloadConfig, generate_annotation_workload

SIZES = (200, 1000, 3000)

#: Minimum acceptable speedup of the adaptive pipeline over the static
#: constant-table planner on the skewed workload.
ADAPTIVE_SPEEDUP_FLOOR = 3.0

#: The implicit planning default may not cost more than this against
#: explicit static ordering on corpora below the small-corpus threshold
#: (the fallback makes the two the same code path; the margin absorbs
#: timer noise).
SMALL_END_FLOOR = 0.95

#: Skewed-workload scale (>= 10k annotations per the acceptance criteria).
SKEW_ANNOTATIONS = 12_000
#: Fraction of the corpus carrying the low-selectivity keyword.
SKEW_KEYWORD_FRACTION = 0.9
#: The selective window: only annotations marking [0, _WINDOW_END] match.
_WINDOW_END = 400
_DOMAIN = "genome:chrB"


def _make_graphitti(annotation_count: int) -> Graphitti:
    g = Graphitti("planner-bench")
    config = WorkloadConfig(
        seed=6,
        sequence_count=20,
        annotation_count=annotation_count,
        image_count=5,
        regions_per_image=30,
    )
    generate_annotation_workload(g, config)
    return g


def _query():
    # A selective keyword + a broad type constraint: ordering matters.
    return (
        QueryBuilder.contents()
        .of_type("dna_sequence")
        .contains("epitope")
        .build()
    )


def build_skewed_corpus(annotation_count: int = SKEW_ANNOTATIONS) -> Graphitti:
    """A corpus where the keyword is broad and the spatial window is narrow.

    ~90% of annotations contain the keyword ``ubiquitous`` but mark intervals
    far from the query window; only ~0.2% mark inside ``[0, 400]``.  The
    per-class constant table cannot see that skew — the live statistics can.
    """
    rng = random.Random(20260726)
    manager = Graphitti("planner-skew")
    length = 500_000
    manager.register(DnaSequence("chrB", "ACGT" * (length // 4), domain=_DOMAIN))
    window_members = max(annotation_count // 500, 8)
    batch = []
    for index in range(annotation_count):
        in_window = index < window_members
        has_keyword = rng.random() < SKEW_KEYWORD_FRACTION or in_window
        if in_window:
            start = rng.randrange(0, _WINDOW_END - 50)
        else:
            start = rng.randrange(_WINDOW_END + 100, length - 200)
        keywords = ["ubiquitous"] if has_keyword else ["rare"]
        builder = manager.new_annotation(
            f"skew-{index:06d}",
            title=f"skew annotation {index}",
            keywords=keywords,
            body=f"annotation {index} is {'ubiquitous' if has_keyword else 'rare'} text",
        ).mark_sequence("chrB", start, start + rng.randrange(20, 120))
        batch.append(builder.build())
    manager.commit_many(batch)
    manager.contents.flush_index()
    return manager


def skewed_query():
    return (
        QueryBuilder.contents()
        .contains("ubiquitous")
        .overlaps_interval(_DOMAIN, 0, _WINDOW_END)
        .build()
    )


def measure_skewed() -> dict[str, float]:
    """Skewed conjunction: static constant-table planner vs. adaptive."""
    manager = build_skewed_corpus()
    query = skewed_query()
    adaptive_result = manager.query(query, mode="cost")
    static_result = manager.query(query, mode="static")
    assert adaptive_result.annotation_ids == static_result.annotation_ids, (
        "adaptive and static planners disagree"
    )
    probe_steps = [d for d in adaptive_result.step_details if d["mode"] == "probe"]
    static_samples = time_samples(lambda: manager.query(query, mode="static"), repeat=5)
    adaptive_samples = time_samples(lambda: manager.query(query, mode="cost"), repeat=5)
    static_seconds = min(static_samples)
    adaptive_seconds = min(adaptive_samples)
    row = {
        "workload": "skewed_cardinalities",
        "annotations": SKEW_ANNOTATIONS,
        "matches": len(adaptive_result.annotation_ids),
        "baseline_seconds": static_seconds,
        "candidate_seconds": adaptive_seconds,
        "speedup": speedup(static_seconds, adaptive_seconds),
        "probe_steps": len(probe_steps),
        "speedup_floor": ADAPTIVE_SPEEDUP_FLOOR,
    }
    row.update(sample_stats(static_samples, prefix="baseline"))
    row.update(sample_stats(adaptive_samples, prefix="candidate"))
    return row


def measure_small_end() -> list[dict[str, float]]:
    """Implicit default vs. explicit static/cost on sub-threshold corpora.

    With the fallback active the implicit default *is* the static path, so
    its speedup against explicit static should sit at ~1.0x; the explicit
    cost column is kept to document what the fallback is avoiding.
    """
    from repro.query.planner import SMALL_CORPUS_THRESHOLD, QueryPlanner

    rows = []
    for size in SIZES:
        if size >= SMALL_CORPUS_THRESHOLD:
            continue
        g = _make_graphitti(size)
        query = _query()
        assert QueryPlanner(manager=g).effective_mode() == "static", (
            f"fallback inactive at {size} annotations"
        )
        # Sub-millisecond calls: best-of-many with several calls per round,
        # or scheduler noise alone can breach the 5% floor margin.
        static_samples = time_samples(lambda: g.query(query, mode="static"), repeat=15, number=3)
        default_samples = time_samples(lambda: g.query(query), repeat=15, number=3)
        cost_seconds = time_call(lambda: g.query(query, mode="cost"), repeat=15, number=3)
        static_seconds = min(static_samples)
        default_seconds = min(default_samples)
        row = {
            "workload": "small_end_default",
            "annotations": size,
            "baseline_seconds": static_seconds,
            "candidate_seconds": default_seconds,
            "explicit_cost_seconds": cost_seconds,
            "speedup": speedup(static_seconds, default_seconds),
            "speedup_floor": SMALL_END_FLOOR,
        }
        row.update(sample_stats(static_samples, prefix="baseline"))
        row.update(sample_stats(default_samples, prefix="candidate"))
        rows.append(row)
    return rows


# -- pytest-benchmark entry points --------------------------------------------


@pytest.mark.parametrize("size", SIZES)
def test_query_ordered(benchmark, size):
    g = _make_graphitti(size)
    query = _query()
    benchmark(lambda: g.query(query, enable_ordering=True))


@pytest.mark.parametrize("size", SIZES)
def test_query_unordered(benchmark, size):
    g = _make_graphitti(size)
    query = _query()
    benchmark(lambda: g.query(query, enable_ordering=False))


@pytest.fixture(scope="module")
def skewed_corpus():
    return build_skewed_corpus()


def test_skewed_static(benchmark, skewed_corpus):
    query = skewed_query()
    benchmark(lambda: skewed_corpus.query(query, mode="static"))


def test_skewed_adaptive(benchmark, skewed_corpus):
    query = skewed_query()
    benchmark(lambda: skewed_corpus.query(query, mode="cost"))


# -- report -------------------------------------------------------------------


def report() -> tuple[str, bool]:
    lines = ["PERF-6  query planner: ordering modes and stats-driven adaptivity"]
    lines.append(format_row(["annos", "ordered (us)", "naive (us)", "speedup"], [8, 14, 13, 10]))
    ordering_rows = []
    for size in SIZES:
        g = _make_graphitti(size)
        query = _query()
        ordered_samples = time_samples(lambda: g.query(query, enable_ordering=True), repeat=5)
        naive_samples = time_samples(lambda: g.query(query, enable_ordering=False), repeat=5)
        ordered = min(ordered_samples)
        naive = min(naive_samples)
        ordering_row = {
            "workload": "ordering_on_vs_off",
            "annotations": size,
            "baseline_seconds": naive,
            "candidate_seconds": ordered,
            "speedup": speedup(naive, ordered),
        }
        ordering_row.update(sample_stats(naive_samples, prefix="baseline"))
        ordering_row.update(sample_stats(ordered_samples, prefix="candidate"))
        ordering_rows.append(ordering_row)
        lines.append(
            format_row(
                [size, f"{ordered * 1e6:.1f}", f"{naive * 1e6:.1f}", f"{speedup(naive, ordered):.2f}x"],
                [8, 14, 13, 10],
            )
        )

    small_rows = measure_small_end()
    lines.append("")
    lines.append("small-end default (implicit vs. explicit static, fallback active)")
    widths = [8, 14, 14, 14, 10, 8]
    lines.append(
        format_row(["annos", "static (us)", "default (us)", "cost (us)", "speedup", "floor"], widths)
    )
    for row in small_rows:
        lines.append(
            format_row(
                [
                    row["annotations"],
                    f"{row['baseline_seconds'] * 1e6:.1f}",
                    f"{row['candidate_seconds'] * 1e6:.1f}",
                    f"{row['explicit_cost_seconds'] * 1e6:.1f}",
                    f"{row['speedup']:.2f}x",
                    f"{SMALL_END_FLOOR:.2f}x",
                ],
                widths,
            )
        )
    small_ok = all(row["speedup"] >= SMALL_END_FLOOR for row in small_rows)

    skew_row = measure_skewed()
    lines.append("")
    lines.append(
        f"skewed cardinalities ({skew_row['annotations']} annotations, "
        f"{skew_row['matches']} matches, {skew_row['probe_steps']} probe step(s))"
    )
    widths = [24, 16, 16, 10, 8]
    lines.append(format_row(["workload", "static (ms)", "adaptive (ms)", "speedup", "floor"], widths))
    lines.append(
        format_row(
            [
                skew_row["workload"],
                f"{skew_row['baseline_seconds'] * 1e3:.3f}",
                f"{skew_row['candidate_seconds'] * 1e3:.3f}",
                f"{skew_row['speedup']:.1f}x",
                f"{ADAPTIVE_SPEEDUP_FLOOR:.0f}x",
            ],
            widths,
        )
    )
    ok = skew_row["speedup"] >= ADAPTIVE_SPEEDUP_FLOOR
    path = write_results(
        "query_planner",
        ordering_rows + small_rows + [skew_row],
        skew_annotations=SKEW_ANNOTATIONS,
        skew_keyword_fraction=SKEW_KEYWORD_FRACTION,
        adaptive_speedup_floor=ADAPTIVE_SPEEDUP_FLOOR,
        small_end_floor=SMALL_END_FLOOR,
    )
    lines.append(f"results written to {path}")
    if not ok:
        lines.append("FAIL: adaptive pipeline is below its speedup floor")
    if not small_ok:
        lines.append("FAIL: implicit small-corpus default is below its static floor")
    return "\n".join(lines), ok and small_ok


if __name__ == "__main__":
    text, ok = report()
    print(text)
    raise SystemExit(0 if ok else 1)
