"""Q-2: the protease consecutive-intervals query (Section III).

"Find annotated sequences of all proteins belonging to an ontological class,
where 4 consecutive non-overlapping intervals in the sequence have annotations
having the keyword 'protease' in each of them."  This benchmark builds
sequences with varying numbers of protease-annotated intervals and measures
the cost of the keyword+ontology query plus the consecutive/disjoint graph
constraint check.
"""

from __future__ import annotations

import random

from benchmarks._harness import format_row, time_call
from repro import Graphitti
from repro.datatypes import DnaSequence
from repro.ontology.builtin import build_protein_ontology
from repro.query.builder import QueryBuilder
from repro.spatial.interval import Interval
from repro.spatial.operators import are_consecutive, are_disjoint

SIZES = (50, 200, 1000)


def _build(sequence_count: int, seed: int = 9) -> Graphitti:
    rng = random.Random(seed)
    g = Graphitti("q2")
    g.register_ontology(build_protein_ontology())
    for seq_index in range(sequence_count):
        domain = f"chr{seq_index}"
        g.register(DnaSequence(f"seq{seq_index}", "ACGT" * 100, domain=domain))
        # place 4 consecutive disjoint protease-annotated intervals
        cursor = 0
        for interval_index in range(4):
            start = cursor
            end = start + rng.randint(10, 20)
            cursor = end + rng.randint(5, 15)
            (
                g.new_annotation(
                    f"seq{seq_index}-int{interval_index}",
                    keywords=["protease"],
                    body="protease cleavage site",
                )
                .mark_sequence(f"seq{seq_index}", start, end, ontology_terms=["protein:protease"])
                .commit()
            )
    return g


def _run_query(g: Graphitti):
    result = g.query(QueryBuilder.referents().contains("protease").refers("protein:protease").build())
    # group referent intervals by sequence and check the graph constraint
    by_sequence: dict[str, list[Interval]] = {}
    for referent in result.referents:
        if referent.ref.interval is not None:
            by_sequence.setdefault(referent.ref.object_id, []).append(referent.ref.interval)
    qualifying = []
    for object_id, intervals in by_sequence.items():
        ordered = sorted(intervals, key=lambda iv: (iv.start, iv.end))
        if len(ordered) >= 4 and are_consecutive(ordered[:4]) and are_disjoint(ordered[:4]):
            qualifying.append(object_id)
    return qualifying


def test_q2_query(benchmark):
    g = _build(200)
    benchmark(lambda: _run_query(g))


def report() -> str:
    lines = ["Q-2  protease 4-consecutive-interval query"]
    lines.append(format_row(["sequences", "qualifying", "query (ms)"], [10, 12, 12]))
    for size in SIZES:
        g = _build(size)
        qualifying = _run_query(g)
        q_time = time_call(lambda: _run_query(g), repeat=5)
        lines.append(format_row([size, len(qualifying), f"{q_time * 1e3:.2f}"], [10, 12, 12]))
    return "\n".join(lines)


if __name__ == "__main__":
    print(report())
