"""PERF-1: interval-tree overlap queries vs. linear scan.

Reproduces the paper's claim that interval trees make 1D substructure overlap
queries fast, and that one interval tree per chromosome (shared domain) keeps
the structure count small.  The benchmark sweeps the number of indexed
intervals and compares interval-tree overlap latency against a linear scan.
"""

from __future__ import annotations

import random

import pytest

from benchmarks._harness import format_row, speedup, time_call
from repro.baselines.linear_scan import LinearIntervalIndex
from repro.spatial.interval import Interval
from repro.spatial.interval_tree import IntervalTree

SIZES = (100, 1000, 10000)


def _make_intervals(count: int, seed: int = 1) -> list[Interval]:
    rng = random.Random(seed)
    intervals = []
    for _ in range(count):
        start = rng.randint(0, 1_000_000)
        intervals.append(Interval(start, start + rng.randint(1, 500)))
    return intervals


def _build_tree(intervals):
    return IntervalTree.from_intervals(intervals)


def _build_linear(intervals):
    index = LinearIntervalIndex()
    index.insert_many(intervals)
    return index


@pytest.mark.parametrize("size", SIZES)
def test_interval_tree_query(benchmark, size):
    tree = _build_tree(_make_intervals(size))
    query = Interval(500_000, 500_200)
    benchmark(lambda: tree.search_overlap(query))


@pytest.mark.parametrize("size", SIZES)
def test_linear_scan_query(benchmark, size):
    index = _build_linear(_make_intervals(size))
    query = Interval(500_000, 500_200)
    benchmark(lambda: index.search_overlap(query))


@pytest.mark.parametrize("size", SIZES)
def test_interval_tree_build(benchmark, size):
    intervals = _make_intervals(size)
    benchmark(lambda: _build_tree(intervals))


def report() -> str:
    lines = ["PERF-1  interval-tree overlap vs linear scan"]
    lines.append(format_row(["n", "tree (us)", "scan (us)", "speedup"], [10, 12, 12, 10]))
    for size in SIZES:
        intervals = _make_intervals(size)
        tree = _build_tree(intervals)
        linear = _build_linear(intervals)
        query = Interval(500_000, 500_200)
        tree_time = time_call(lambda: tree.search_overlap(query), repeat=20)
        scan_time = time_call(lambda: linear.search_overlap(query), repeat=5)
        lines.append(
            format_row(
                [size, f"{tree_time * 1e6:.2f}", f"{scan_time * 1e6:.2f}", f"{speedup(scan_time, tree_time):.1f}x"],
                [10, 12, 12, 10],
            )
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(report())
