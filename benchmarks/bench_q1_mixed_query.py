"""Q-1: the intro mixed query (keyword + ontology + spatial + path).

"Find annotations that contain the term 'protein.TP53' and have paths to all
mouse brain images having at least 2 regions annotated with ontology term
'Deep Cerebellar nuclei'."  This benchmark builds a populated neuroscience-
style instance at several sizes and times the end-to-end mixed query, plus a
Graphitti-vs-relational-baseline comparison of the same predicate.
"""

from __future__ import annotations

import random

from benchmarks._harness import format_row, speedup, time_call
from repro import Graphitti
from repro.baselines.relational_annotation import RelationalAnnotationStore
from repro.datatypes import DnaSequence, Image
from repro.ontology.builtin import build_brain_region_ontology
from repro.query.parser import parse_query

SIZES = (200, 1000, 3000)

_Q1 = (
    'SELECT graph WHERE { '
    'CONTENT CONTAINS "TP53" '
    'REFERENT REFERS "Deep Cerebellar nuclei" '
    'REGION OVERLAPS mouse-atlas:25um [0,0] .. [512,512] MINCOUNT 2 }'
)


def _build(annotation_count: int, seed: int = 8) -> Graphitti:
    rng = random.Random(seed)
    g = Graphitti("q1")
    g.register_ontology(build_brain_region_ontology())
    g.register(DnaSequence("snca", "ACGT" * 2000, domain="chr4"))
    images = []
    for index in range(max(2, annotation_count // 50)):
        image = Image(f"brain{index}", dimension=2, space="mouse-atlas:25um", size=(512, 512))
        g.register(image)
        images.append(image.object_id)
    for index in range(annotation_count):
        has_tp53 = rng.random() < 0.3
        keywords = ["TP53", "expression"] if has_tp53 else ["expression"]
        builder = g.new_annotation(f"a{index}", keywords=keywords, body="synuclein expression")
        start = rng.randint(0, 7000)
        builder.mark_sequence("snca", start, start + rng.randint(10, 40))
        # attach two DCN regions to ~20% of annotations
        if rng.random() < 0.2:
            image_id = rng.choice(images)
            for _ in range(2):
                x = rng.uniform(0, 400)
                y = rng.uniform(0, 400)
                builder.mark_region(image_id, (x, y), (x + 30, y + 30), ontology_terms=["Deep Cerebellar nuclei"])
        builder.commit()
    return g


def test_q1_query(benchmark):
    g = _build(1000)
    query = parse_query(_Q1)
    benchmark(lambda: g.query(query))


def report() -> str:
    lines = ["Q-1  intro mixed query (keyword + ontology + >=2 regions)"]
    lines.append(format_row(["annos", "result", "graphitti (us)"], [8, 10, 16]))
    for size in SIZES:
        g = _build(size)
        query = parse_query(_Q1)
        result = g.query(query)
        q_time = time_call(lambda: g.query(query), repeat=5)
        lines.append(format_row([size, result.count, f"{q_time * 1e6:.1f}"], [8, 10, 16]))
    return "\n".join(lines)


if __name__ == "__main__":
    print(report())
