"""Benchmark fixtures and helpers.

The benchmarks depend only on pytest-benchmark; a fallback no-op ``benchmark``
fixture is provided so the modules can also be imported and their ``report()``
helpers called directly (``python -m benchmarks.bench_interval_tree``) without
pytest-benchmark installed.
"""

import pytest


@pytest.fixture
def seeded():
    """A deterministic RNG seed shared across benchmarks."""
    return 20240617
