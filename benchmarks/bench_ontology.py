"""PERF-5: OntoQuest operation latency vs. ontology size, cached vs. uncached.

Reproduces the cost of the CI/CRI/CmRI/mCmRI/SubTree operations as the
ontology grows, and the benefit of memoising CI results.
"""

from __future__ import annotations

import random

import pytest

from benchmarks._harness import format_row, speedup, time_call
from repro.workloads.generators import generate_ontology_dag
from repro.ontology.operations import OntologyOperations

DEPTHS = (3, 4, 5)


def _make_ops(depth: int, cache: bool) -> tuple[OntologyOperations, str]:
    ontology = generate_ontology_dag("O", depth=depth, branching=3, instances_per_leaf=2, rng=random.Random(5))
    return OntologyOperations(ontology, cache=cache), "O:0"


@pytest.mark.parametrize("depth", DEPTHS)
def test_ci_cached(benchmark, depth):
    ops, root = _make_ops(depth, cache=True)
    ops.ci(root)  # warm the cache
    benchmark(lambda: ops.ci(root))


@pytest.mark.parametrize("depth", DEPTHS)
def test_ci_uncached(benchmark, depth):
    ops, root = _make_ops(depth, cache=False)
    benchmark(lambda: ops.ci(root))


@pytest.mark.parametrize("depth", DEPTHS)
def test_subtree(benchmark, depth):
    ops, root = _make_ops(depth, cache=False)
    benchmark(lambda: ops.subtree(root, "is_a"))


def report() -> str:
    lines = ["PERF-5  CI() latency vs ontology size, cached vs uncached"]
    lines.append(format_row(["depth", "terms", "uncached (us)", "cached (us)", "speedup"], [8, 8, 14, 13, 10]))
    for depth in DEPTHS:
        cached, root = _make_ops(depth, cache=True)
        uncached, _ = _make_ops(depth, cache=False)
        terms = cached.ontology.term_count
        cached.ci(root)
        cached_time = time_call(lambda: cached.ci(root), repeat=20)
        uncached_time = time_call(lambda: uncached.ci(root), repeat=10)
        lines.append(
            format_row(
                [
                    depth,
                    terms,
                    f"{uncached_time * 1e6:.2f}",
                    f"{cached_time * 1e6:.2f}",
                    f"{speedup(uncached_time, cached_time):.0f}x",
                ],
                [8, 8, 14, 13, 10],
            )
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(report())
