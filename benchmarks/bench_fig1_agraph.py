"""FIG-1: the influenza a-graph scenario (structure + primitives).

Reproduces Fig. 1 as an executable artifact: build the influenza instance and
measure/verify the a-graph structure (content/referent bipartite layout,
indirect relatedness, connectivity) and the path/connect primitives over it.
"""

from __future__ import annotations

from benchmarks._harness import format_row, time_call
from repro.workloads.scenarios import build_influenza_instance


def test_build_influenza(benchmark):
    benchmark(build_influenza_instance)


def test_fig1_related(benchmark):
    g = build_influenza_instance()
    benchmark(lambda: g.related_annotations("flu-a1"))


def test_fig1_connect(benchmark):
    g = build_influenza_instance()
    benchmark(lambda: g.connect_annotations("flu-a1", "flu-a3", "flu-a4"))


def report() -> str:
    g = build_influenza_instance()
    stats = g.statistics()
    components = g.agraph.connected_components()
    lines = ["FIG-1  influenza a-graph scenario"]
    lines.append(format_row(["metric", "value"], [28, 20]))
    rows = [
        ("data objects", stats["data_objects"]),
        ("object types", len(stats["objects_by_type"])),
        ("annotations (contents)", stats["annotations"]),
        ("referent nodes", stats["referents"]),
        ("a-graph nodes", stats["agraph_nodes"]),
        ("a-graph edges", stats["agraph_edges"]),
        ("connected components", len(components)),
        ("flu-a1 related to", g.related_annotations("flu-a1")),
        ("path flu-a1..flu-a3 len", len(g.path_between_annotations("flu-a1", "flu-a3") or [])),
    ]
    for name, value in rows:
        lines.append(format_row([name, value], [28, 20]))
    build_time = time_call(build_influenza_instance, repeat=3)
    lines.append(format_row(["build time (ms)", f"{build_time * 1e3:.2f}"], [28, 20]))
    return "\n".join(lines)


if __name__ == "__main__":
    print(report())
