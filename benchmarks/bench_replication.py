"""Replication read scaling: follower reads vs. a single node, with a floor.

The 95/5 read/write mix (see
:mod:`repro.workloads.replication_scenario`) models the serving shape
replication exists for: many readers cycling a hot structural query set, a
trickle of writers.  On a single durable
:class:`~repro.service.GraphittiService` every commit bumps the mutation
epoch and the whole hot set re-executes.  Behind a
:class:`~repro.replica.ReplicatedGraphittiService` the commits land on the
primary while eventual-consistency reads round-robin :data:`REPLICAS`
followers — whose result caches are invalidated only when a WAL shipment
is applied, i.e. per ship interval rather than per write.

Measured throughput (ops/second, best of three rounds per system):

* baseline — one durable ``GraphittiService``;
* candidate — ``ReplicatedGraphittiService`` with :data:`REPLICAS` followers.

Floor: **>= 1.7x** at 3 replicas.  Two correctness gates run first: a
deterministic write set must read back identically from a drained replica
deployment (``consistency="fresh"``) and from an unreplicated oracle; and
after the measured workload every acknowledged commit must be present on
every follower (zero acked-write loss in the healthy run).

``python -m benchmarks.bench_replication`` prints the table, writes
``BENCH_replication.json`` via the harness, and exits non-zero below the
floor (or on a gate failure).  Set ``BENCH_SMOKE=1`` for the CI-sized run
(the floor still applies).
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path

import pytest

from benchmarks._harness import format_row, sample_stats, speedup, write_results
from repro.replica import ReplicatedGraphittiService, ReplicationConfig
from repro.service import GraphittiService, ServiceConfig
from repro.workloads.replication_scenario import (
    REPLICATION_QUERIES,
    run_replication_workload,
    seed_replication_corpus,
)

#: Minimum acceptable 95/5-mix throughput multiple at REPLICAS followers.
REPLICATION_SPEEDUP_FLOOR = 1.7

#: Followers in the candidate configuration.
REPLICAS = 3

_SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: (corpus annotations, ops per worker thread, measurement rounds).
SCALE = (600, 120, 3) if _SMOKE else (1500, 240, 3)

#: Worker threads driving the mixed workload.
THREADS = 4

#: One commit per this many ops per thread — the 95/5 split.
WRITE_EVERY = 20


def _service_config() -> ServiceConfig:
    # The WAL still persists every record (replication reads it from disk);
    # "never" skips only the per-record fsync so the read path dominates.
    return ServiceConfig(durability="never")


def check_oracle_equivalence(root: Path) -> None:
    """Drained fresh reads off replicas must match an unreplicated oracle."""
    replicated = ReplicatedGraphittiService.open(
        root / "oracle-rep",
        replicas=REPLICAS,
        config=_service_config(),
        replication=ReplicationConfig(auto_ship=False),
    )
    single = GraphittiService.open(root / "oracle-single", config=_service_config())
    for service in (replicated, single):
        objects = seed_replication_corpus(service, 200)
        run_replication_workload(
            service, objects, threads=1, ops_per_thread=80, seed=31, tag="oracle"
        )
    replicated.ship()
    for text in REPLICATION_QUERIES:
        left = replicated.query(text, consistency="fresh")
        right = single.query(text)
        if left.annotation_ids != right.annotation_ids:
            raise AssertionError(f"replica read diverges from oracle for {text!r}")
    stats = replicated.replication_stats()
    if stats["reads"]["degraded"]:
        raise AssertionError("fresh reads degraded to primary in a drained deployment")
    replicated.close()
    single.close()


def check_no_acked_loss(replicated, summary) -> None:
    """Every acknowledged commit must be applied on every follower."""
    replicated.checkpoint()  # drains the shipper first
    frontier = replicated.last_acked_seq
    for follower in replicated.followers:
        if follower.applied_seq < frontier:
            raise AssertionError(
                f"{follower.name} stopped at seq {follower.applied_seq} < {frontier}"
            )
        for annotation_id in summary["committed_ids"]:
            follower.service.annotation(annotation_id)  # raises if missing


def measure(root: Path) -> list[dict[str, float]]:
    """Best-of-rounds 95/5 throughput for single vs. replicated."""
    corpus, ops, rounds = SCALE
    single = GraphittiService.open(root / "single", config=_service_config())
    replicated = ReplicatedGraphittiService.open(
        root / "replicated", replicas=REPLICAS, config=_service_config()
    )
    single_objects = seed_replication_corpus(single, corpus)
    replicated_objects = seed_replication_corpus(replicated, corpus)
    for text in REPLICATION_QUERIES:  # warm caches (and let the shipper settle)
        single.query(text)
        replicated.query(text, consistency="fresh")
    total_ops = THREADS * ops
    samples = {"single": [], "replicated": []}
    last_summary = None
    # Alternate systems per round so machine drift hits both equally.
    for round_index in range(rounds):
        single_summary = run_replication_workload(
            single, single_objects, THREADS, ops, WRITE_EVERY, tag=f"s{round_index}"
        )
        replicated_summary = run_replication_workload(
            replicated, replicated_objects, THREADS, ops, WRITE_EVERY, tag=f"r{round_index}"
        )
        for summary in (single_summary, replicated_summary):
            if summary["errors"]:
                raise AssertionError(f"workload errors: {summary['errors']}")
        samples["single"].append(single_summary["elapsed"])
        samples["replicated"].append(replicated_summary["elapsed"])
        last_summary = replicated_summary
    best = {name: total_ops / min(rounds_s) for name, rounds_s in samples.items()}
    check_no_acked_loss(replicated, last_summary)
    reads = replicated.replication_stats()["reads"]
    single.close()
    replicated.close()
    single_row = {
        "workload": "mixed_95_5",
        "replicas": 0,
        "ops_per_second": best["single"],
        "threads": THREADS,
        "corpus": corpus,
    }
    single_row.update(sample_stats(samples["single"]))
    replicated_row = {
        "workload": "mixed_95_5",
        "replicas": REPLICAS,
        "ops_per_second": best["replicated"],
        "threads": THREADS,
        "corpus": corpus,
        "replica_reads": reads["replica"],
        "degraded_reads": reads["degraded"],
        "speedup": speedup(1.0 / best["single"], 1.0 / best["replicated"]),
    }
    replicated_row.update(sample_stats(samples["replicated"]))
    return [single_row, replicated_row]


def report() -> int:
    root = Path(tempfile.mkdtemp(prefix="bench-replication-"))
    try:
        check_oracle_equivalence(root)
        print("oracle check: drained fresh replica reads == unreplicated (zero acked loss)")
        rows = measure(root)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    widths = (14, 10, 14, 14, 10)
    print(format_row(("workload", "replicas", "ops/second", "replica reads", "speedup"), widths))
    for row in rows:
        print(
            format_row(
                (
                    row["workload"],
                    row["replicas"],
                    f"{row['ops_per_second']:.0f}",
                    row.get("replica_reads", "-"),
                    f"{row.get('speedup', 1.0):.2f}x",
                ),
                widths,
            )
        )
    write_results(
        "replication",
        rows,
        smoke=_SMOKE,
        floor=REPLICATION_SPEEDUP_FLOOR,
        replicas=REPLICAS,
        write_every=WRITE_EVERY,
    )
    achieved = rows[-1].get("speedup", 0.0)
    if achieved < REPLICATION_SPEEDUP_FLOOR:
        print(
            f"FAIL: {REPLICAS}-replica 95/5 speedup {achieved:.2f}x "
            f"is below the {REPLICATION_SPEEDUP_FLOOR:.1f}x floor"
        )
        return 1
    print(
        f"replication floor OK: {achieved:.2f}x >= {REPLICATION_SPEEDUP_FLOOR:.1f}x "
        f"at {REPLICAS} replicas"
    )
    return 0


def test_replica_reads_match_oracle(tmp_path):
    check_oracle_equivalence(tmp_path)


@pytest.mark.benchmark(group="replication")
def test_replication_throughput_floor(benchmark, tmp_path):
    rows = benchmark.pedantic(measure, args=(tmp_path,), rounds=1, iterations=1)
    assert rows[-1]["speedup"] >= REPLICATION_SPEEDUP_FLOOR


if __name__ == "__main__":
    raise SystemExit(report())
