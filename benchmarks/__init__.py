"""Benchmark harnesses for Graphitti.

One module per experiment in DESIGN.md (figure reproductions FIG-1/2/3 and
queries Q-1/Q-2, plus the performance-characterization ablations PERF-1..7).
Each runs under ``pytest benchmarks/ --benchmark-only`` and also exposes a
``report()`` function that prints the paper-style rows/series for
EXPERIMENTS.md.
"""
