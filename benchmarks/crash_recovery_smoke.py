"""Crash-recovery smoke check: kill a serving process mid-ingest, recover.

The parent spawns a child Python process that opens a durable service
(single :class:`~repro.service.GraphittiService`, or a
:class:`~repro.shard.ShardedGraphittiService` when ``CRASH_SMOKE_SHARDS`` is
greater than 1), checkpoints a seeded baseline, and then commits annotations
forever — until the parent SIGKILLs it mid-ingest (a real crash: no atexit
hooks, no flushes, possibly a torn WAL tail — on any shard).  The parent
then recovers the instance and verifies:

* recovery succeeds (a torn tail is tolerated, never corruption),
* every recovered annotation is fully wired (``check_integrity()`` passes),
* the recovered annotation count matches the WALs' acknowledged history
  (summed across every shard),
* the recovered instance answers queries.

Run as ``PYTHONPATH=src python -m benchmarks.crash_recovery_smoke``; exits
non-zero on any failure.  CI runs it twice: unsharded and with
``CRASH_SMOKE_SHARDS=4``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: How long to let the child ingest before killing it (seconds).
INGEST_WINDOW = float(os.environ.get("CRASH_SMOKE_WINDOW", "1.0"))

#: Shard count; 1 runs the original single-service smoke.
SHARDS = int(os.environ.get("CRASH_SMOKE_SHARDS", "1"))

_CHILD_CODE = """
import sys
from repro.datatypes.sequence import DnaSequence

root, shards = sys.argv[1], int(sys.argv[2])
from repro.service import GraphittiService, ServiceConfig
config = ServiceConfig(durability="always")
if shards > 1:
    from repro.shard import ShardedGraphittiService
    service = ShardedGraphittiService.open(root, shards=shards, config=config)
else:
    service = GraphittiService.open(root, config=config)
objects = [f"crash_seq_{index}" for index in range(8)]
for index, object_id in enumerate(objects):
    service.register(
        DnaSequence(object_id, "ACGT" * 300, domain="crash:chr1", offset=index * 1200)
    )
service.checkpoint()
print("READY", flush=True)
serial = 0
while True:
    (
        service.new_annotation(
            f"crash-{serial}",
            title=f"crash smoke {serial}",
            creator="crash-smoke",
            keywords=["crash", "smoke"],
            body="annotation committed while waiting to be killed",
        )
        .mark_sequence(objects[serial % len(objects)], serial % 1000, serial % 1000 + 20)
        .commit()
    )
    serial += 1
"""


def _acknowledged_commits(shard_root: Path) -> int:
    """Commit records acknowledged at *shard_root* and not yet snapshotted,
    plus annotations already inside the snapshot."""
    from repro.service import read_records

    snapshot_annotations = 0
    snapshot_seq = 0
    snapshot_path = shard_root / "snapshot.json"
    if snapshot_path.exists():
        payload = json.loads(snapshot_path.read_text())
        snapshot_annotations = len(payload.get("annotations", []))
        snapshot_seq = int(payload.get("wal_seq", 0))
    records, _ = read_records(shard_root / "wal.jsonl")
    replayable = sum(
        1 for record in records if record["op"] == "commit" and record["seq"] > snapshot_seq
    )
    return snapshot_annotations + replayable


def main() -> int:
    root = Path(tempfile.mkdtemp(prefix="crash-smoke-"))
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD_CODE, str(root), str(SHARDS)],
        stdout=subprocess.PIPE,
        text=True,
        env=dict(os.environ),
    )
    try:
        line = child.stdout.readline().strip()
        if line != "READY":
            print(f"FAIL: child never became ready (got {line!r})")
            return 1
        time.sleep(INGEST_WINDOW)  # let it commit mid-flight
        child.send_signal(signal.SIGKILL)
        child.wait()
    finally:
        if child.poll() is None:  # pragma: no cover - safety net
            child.kill()
            child.wait()

    if SHARDS > 1:
        from repro.shard import ShardedGraphittiService

        shard_roots = sorted(root.glob("shard-*"))
        acknowledged_commits = sum(_acknowledged_commits(path) for path in shard_roots)
        torn_tails = 0
        service = ShardedGraphittiService.recover(root)
        info = service.recovery_info or {}
        torn_tails = info.get("torn_tails", 0)
        replayed = info.get("replayed", 0)
    else:
        from repro.service import GraphittiService, read_records

        _, torn = read_records(root / "wal.jsonl")
        torn_tails = int(torn)
        acknowledged_commits = _acknowledged_commits(root)
        service = GraphittiService.recover(root)
        replayed = service.recovery_info["replayed"]

    stats = service.statistics()
    report = service.check_integrity()
    probe = service.query('SELECT contents WHERE { CONTENT CONTAINS "smoke" }')
    service.close()

    print(
        f"killed mid-ingest after {INGEST_WINDOW:.1f}s ({SHARDS} shard(s)): "
        f"{acknowledged_commits} acknowledged commits, torn tails: {torn_tails}"
    )
    print(
        f"recovered: replayed {replayed} records over snapshot(s); "
        f"{stats['annotations']} annotations, integrity ok: {report.ok}, "
        f"probe query hits: {probe.count}"
    )
    failures = []
    if acknowledged_commits < 1:
        failures.append("child was killed before committing anything; raise CRASH_SMOKE_WINDOW")
    if stats["annotations"] != acknowledged_commits:
        failures.append(
            f"recovered {stats['annotations']} annotations but the WAL(s) acknowledged "
            f"{acknowledged_commits}"
        )
    if not report.ok:
        failures.append(f"integrity check failed: {report.errors}")
    if probe.count != stats["annotations"]:
        failures.append("probe query does not see every recovered annotation")
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("crash-recovery smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
