"""Crash-recovery smoke check: kill a serving process mid-ingest, recover.

The parent spawns a child Python process that opens a durable service
(single :class:`~repro.service.GraphittiService`, or a
:class:`~repro.shard.ShardedGraphittiService` when ``CRASH_SMOKE_SHARDS`` is
greater than 1), checkpoints a seeded baseline, and then commits annotations
forever — until the parent SIGKILLs it mid-ingest (a real crash: no atexit
hooks, no flushes, possibly a torn WAL tail — on any shard).  The parent
then recovers the instance and verifies:

* recovery succeeds (a torn tail is tolerated, never corruption),
* every recovered annotation is fully wired (``check_integrity()`` passes),
* the recovered annotation count matches the WALs' acknowledged history
  (summed across every shard),
* the recovered instance answers queries.

Run as ``PYTHONPATH=src python -m benchmarks.crash_recovery_smoke``; exits
non-zero on any failure.  CI runs it several ways: unsharded, with
``CRASH_SMOKE_SHARDS=4``, with ``CRASH_SMOKE_COMPACT=1`` — where the child
churns and periodically runs ``compact()`` so the kill can land between a
checkpoint's segment seal, snapshot write, rename, and prune — and with
``CRASH_SMOKE_CHURN=1`` — where the child
runs the full mutation lifecycle (commit / in-place update / delete) instead
of pure ingest, so the kill can tear an ``update_annotation`` or
``delete_annotation`` record and recovery must replay a mixed history — and
with ``CRASH_SMOKE_FAILOVER=1``, where the child serves a replicated
deployment (one primary, two followers) and the parent, instead of
recovering the primary, declares it dead, promotes the most-caught-up
follower under a bumped term, and verifies the new primary holds exactly
the acknowledged ledger: fenced failover must lose zero acknowledged
writes even though the followers lag the WAL at kill time.  In churn mode
the expected live-annotation set is computed symbolically from the
snapshot plus the acknowledged WAL suffix (commit adds an id, delete
removes it, update keeps it), and the recovered count must match exactly.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: How long to let the child ingest before killing it (seconds).
INGEST_WINDOW = float(os.environ.get("CRASH_SMOKE_WINDOW", "1.0"))

#: Shard count; 1 runs the original single-service smoke.
SHARDS = int(os.environ.get("CRASH_SMOKE_SHARDS", "1"))

#: Churn mode: the child mixes commits, in-place updates and deletes.
CHURN = bool(int(os.environ.get("CRASH_SMOKE_CHURN", "0")))

#: Failover mode: the child serves a replicated deployment; the parent
#: promotes a follower instead of recovering the killed primary.
FAILOVER = bool(int(os.environ.get("CRASH_SMOKE_FAILOVER", "0")))

#: Network mode: ingest through process-per-shard TCP workers, SIGKILL a
#: live worker mid-ingest, and verify heartbeat-driven restart plus a
#: ledger-intact recovery of the same root through the threaded facade.
NETSHARD = bool(int(os.environ.get("CRASH_SMOKE_NETSHARD", "0")))

#: Compact mode: the child churns AND periodically calls ``compact()``, so
#: the SIGKILL can land mid-compaction — between the WAL segment seal, the
#: snapshot temp write, the rename, and the segment prune — and recovery
#: must reassemble the acknowledged ledger from whatever mix of snapshot,
#: sealed segments, and active WAL survived.
COMPACT = bool(int(os.environ.get("CRASH_SMOKE_COMPACT", "0")))

#: Shards in network mode (workers are whole OS processes; keep it small).
NETSHARD_SHARDS = int(os.environ.get("CRASH_SMOKE_NETSHARD_SHARDS", "3"))

#: Followers behind the primary in failover mode.
FAILOVER_REPLICAS = 2

_CHILD_CODE = """
import sys
from repro.datatypes.sequence import DnaSequence

root, shards = sys.argv[1], int(sys.argv[2])
failover = bool(int(sys.argv[4]))
from repro.service import GraphittiService, ServiceConfig
config = ServiceConfig(durability="always")
if failover:
    from repro.replica import ReplicatedGraphittiService
    service = ReplicatedGraphittiService.open(root, replicas=int(sys.argv[5]), config=config)
elif shards > 1:
    from repro.shard import ShardedGraphittiService
    service = ShardedGraphittiService.open(root, shards=shards, config=config)
else:
    service = GraphittiService.open(root, config=config)
objects = [f"crash_seq_{index}" for index in range(8)]
for index, object_id in enumerate(objects):
    service.register(
        DnaSequence(object_id, "ACGT" * 300, domain="crash:chr1", offset=index * 1200)
    )
service.checkpoint()
print("READY", flush=True)
churn = bool(int(sys.argv[3]))
compact = bool(int(sys.argv[6]))
import random
rng = random.Random(11)
serial = 0
live = []
while True:
    if compact and serial and serial % 40 == 0:
        service.compact()
    op = serial % 5 if (churn or compact) and live else 0
    if op in (0, 1, 2):  # commit
        (
            service.new_annotation(
                f"crash-{serial}",
                title=f"crash smoke {serial}",
                creator="crash-smoke",
                keywords=["crash", "smoke"],
                body="annotation committed while waiting to be killed",
            )
            .mark_sequence(objects[serial % len(objects)], serial % 1000, serial % 1000 + 20)
            .commit()
        )
        live.append(f"crash-{serial}")
    elif op == 3:  # in-place update of a live annotation
        victim = live[rng.randrange(len(live))]
        service.update_annotation(
            victim,
            {
                "title": f"revised {serial}",
                "keywords": ["crash", "smoke", f"rev{serial}"],
                "body": f"updated while waiting to be killed ({serial})",
            },
        )
    else:  # delete a live annotation
        victim = live.pop(rng.randrange(len(live)))
        service.delete_annotation(victim)
    serial += 1
"""


def _acknowledged_live(shard_root: Path) -> int:
    """Annotations live per the acknowledged history at *shard_root*.

    Symbolic replay of the id set: the snapshot's annotations, then — for
    every WAL record logged after it — a commit adds its id, a delete
    removes it, and an update keeps it (updates replay in full during real
    recovery, but cannot change liveness).

    Reads sealed segments plus the active file: a crash between a
    checkpoint's segment seal and its snapshot landing leaves acknowledged
    records only in sealed segments, which counting the active file alone
    would silently drop.
    """
    from repro.service import read_segmented_records

    live: set[str] = set()
    snapshot_seq = 0
    snapshot_path = shard_root / "snapshot.json"
    if snapshot_path.exists():
        payload = json.loads(snapshot_path.read_text())
        live = {item["annotation_id"] for item in payload.get("annotations", [])}
        snapshot_seq = int(payload.get("wal_seq", 0))
    records, _ = read_segmented_records(shard_root / "wal.jsonl")
    for record in records:
        if record["seq"] <= snapshot_seq:
            continue
        if record["op"] == "commit":
            live.add(record["payload"]["annotation_id"])
        elif record["op"] == "delete_annotation":
            live.discard(record["payload"]["annotation_id"])
    return len(live)


def _netshard_main() -> int:
    """SIGKILL a live TCP shard worker mid-ingest; restart must lose nothing.

    Unlike the child-process modes, the workers here already *are* separate
    OS processes: the parent ingests through the network facade, SIGKILLs
    one worker mid-stream, and keeps writing while the heartbeat monitor
    detects the death and respawns the worker (recovery replays its WAL).
    Every acknowledged write must survive — first as seen over the network,
    then again when the same root is recovered through the *threaded*
    facade and checked against the WALs' symbolic acknowledged history.
    """
    from repro.datatypes.sequence import DnaSequence
    from repro.errors import ShardTimeoutError, ShardUnavailableError
    from repro.net import NetworkShardedGraphittiService, RetryPolicy
    from repro.shard import ShardedGraphittiService

    root = Path(tempfile.mkdtemp(prefix="crash-smoke-net-"))
    service = NetworkShardedGraphittiService.open(
        root,
        shards=NETSHARD_SHARDS,
        heartbeat_interval_s=0.2,
        miss_threshold=2,
        retry=RetryPolicy(attempts=3, base_backoff_s=0.01, max_backoff_s=0.05),
        op_timeout_s=15.0,
    )
    failures: list[str] = []
    acked: list[str] = []
    try:
        objects = [f"crash_seq_{index}" for index in range(8)]
        for index, object_id in enumerate(objects):
            service.register(
                DnaSequence(object_id, "ACGT" * 300, domain="crash:chr1", offset=index * 1200)
            )
        victim = 0
        kill_at = time.monotonic() + INGEST_WINDOW / 2
        deadline = time.monotonic() + max(30.0, INGEST_WINDOW * 20)
        killed = False
        serial = 0
        restarts = lambda: service.obs.registry.counter("net.worker_restarts").value
        while time.monotonic() < deadline:
            if not killed and time.monotonic() >= kill_at:
                service.kill_shard(victim)
                killed = True
            try:
                annotation = (
                    service.new_annotation(
                        f"crash-{serial}",
                        title=f"crash smoke {serial}",
                        creator="crash-smoke",
                        keywords=["crash", "smoke"],
                        body="committed while a worker dies mid-stream",
                    )
                    .mark_sequence(objects[serial % len(objects)], serial % 1000, serial % 1000 + 20)
                    .commit()
                )
            except (ShardUnavailableError, ShardTimeoutError):
                time.sleep(0.1)  # the dead shard's window; the monitor restarts it
                continue
            acked.append(annotation.annotation_id)
            serial += 1
            if killed and restarts() >= 1 and serial >= 40:
                break
        worker_restarts = restarts()
        declared_dead = service.obs.registry.counter("net.workers_declared_dead").value
        missing = [
            annotation_id
            for annotation_id in acked
            if not _holds(service, annotation_id)
        ]
        integrity = service.check_integrity()
        probe = service.query('SELECT contents WHERE { CONTENT CONTAINS "smoke" }')
        net_count = service.annotation_count
        print(
            f"SIGKILLed worker {victim} mid-ingest: {len(acked)} acked writes, "
            f"{declared_dead} dead declaration(s), {worker_restarts} restart(s)"
        )
        print(
            f"network view after restart: {net_count} annotations, "
            f"integrity ok: {integrity.ok}, probe hits: {probe.count}"
        )
        if not killed:
            failures.append("ingest finished before the kill fired; raise CRASH_SMOKE_WINDOW")
        if worker_restarts < 1:
            failures.append("the heartbeat monitor never restarted the killed worker")
        if missing:
            failures.append(f"{len(missing)} acknowledged write(s) lost: {missing[:5]}")
        if not integrity.ok:
            failures.append(f"integrity check failed over the network: {integrity.errors}")
        if net_count < len(acked):
            failures.append(
                f"network view holds {net_count} annotations but {len(acked)} were acked"
            )
    finally:
        service.close()

    # The same root must recover through the threaded facade: the WALs are
    # the contract, regardless of which serving tier wrote them.
    shard_roots = sorted(root.glob("shard-*"))
    acknowledged_live = sum(_acknowledged_live(path) for path in shard_roots)
    recovered = ShardedGraphittiService.recover(root)
    stats = recovered.statistics()
    report = recovered.check_integrity()
    recovered_ids = {
        annotation_id
        for shard in recovered.shards
        for annotation_id in (
            annotation.annotation_id for annotation in shard.manager.annotations()
        )
    }
    recovered.close()
    print(
        f"threaded recovery of the same root: {stats['annotations']} annotations "
        f"(WALs acknowledge {acknowledged_live} live), integrity ok: {report.ok}"
    )
    if stats["annotations"] != acknowledged_live:
        failures.append(
            f"recovered {stats['annotations']} annotations but the WALs acknowledged "
            f"{acknowledged_live} live"
        )
    lost = [annotation_id for annotation_id in acked if annotation_id not in recovered_ids]
    if lost:
        failures.append(f"{len(lost)} acked write(s) missing after recovery: {lost[:5]}")
    if not report.ok:
        failures.append(f"threaded integrity check failed: {report.errors}")
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("network crash-recovery smoke OK")
    return 1 if failures else 0


def _holds(service, annotation_id: str) -> bool:
    from repro.errors import GraphittiError

    try:
        service.annotation(annotation_id)
    except GraphittiError:
        return False
    return True


def main() -> int:
    if NETSHARD:
        return _netshard_main()
    root = Path(tempfile.mkdtemp(prefix="crash-smoke-"))
    child = subprocess.Popen(
        [
            sys.executable,
            "-c",
            _CHILD_CODE,
            str(root),
            str(SHARDS),
            str(int(CHURN)),
            str(int(FAILOVER)),
            str(FAILOVER_REPLICAS),
            str(int(COMPACT)),
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=dict(os.environ),
    )
    try:
        line = child.stdout.readline().strip()
        if line != "READY":
            print(f"FAIL: child never became ready (got {line!r})")
            return 1
        time.sleep(INGEST_WINDOW)  # let it commit mid-flight
        child.send_signal(signal.SIGKILL)
        child.wait()
    finally:
        if child.poll() is None:  # pragma: no cover - safety net
            child.kill()
            child.wait()

    promotion = None
    if FAILOVER:
        from repro.replica import ReplicatedGraphittiService, ReplicationConfig
        from repro.service import read_segmented_records

        manifest = json.loads((root / "replication.json").read_text())
        old_term = int(manifest["term"])
        primary_root = root / manifest["primary"]
        _, torn = read_segmented_records(primary_root / "wal.jsonl")
        torn_tails = int(torn)
        acknowledged_live = _acknowledged_live(primary_root)
        service = ReplicatedGraphittiService.recover(
            root,
            replication=ReplicationConfig(auto_ship=False, auto_failover=False),
            assume_primary_dead=True,
        )
        promotion = service.failover()
        replayed = promotion["promoted_at_seq"]
    elif SHARDS > 1:
        from repro.shard import ShardedGraphittiService

        shard_roots = sorted(root.glob("shard-*"))
        acknowledged_live = sum(_acknowledged_live(path) for path in shard_roots)
        torn_tails = 0
        service = ShardedGraphittiService.recover(root)
        info = service.recovery_info or {}
        torn_tails = info.get("torn_tails", 0)
        replayed = info.get("replayed", 0)
    else:
        from repro.service import GraphittiService, read_segmented_records

        _, torn = read_segmented_records(root / "wal.jsonl")
        torn_tails = int(torn)
        acknowledged_live = _acknowledged_live(root)
        service = GraphittiService.recover(root)
        replayed = service.recovery_info["replayed"]

    stats = service.statistics()
    report = service.check_integrity()
    probe = service.query('SELECT contents WHERE { CONTENT CONTAINS "smoke" }')
    service.close()

    mode = "compact churn" if COMPACT else ("churn" if CHURN else "ingest")
    print(
        f"killed mid-{mode} after {INGEST_WINDOW:.1f}s "
        f"({SHARDS} shard(s)): {acknowledged_live} acknowledged live annotations, "
        f"torn tails: {torn_tails}"
    )
    if promotion is not None:
        print(
            f"promoted {promotion['primary']} (term {promotion['term']}) "
            f"at seq {promotion['promoted_at_seq']}; old primary left fenced"
        )
    print(
        f"recovered: replayed {replayed} records over snapshot(s); "
        f"{stats['annotations']} annotations, integrity ok: {report.ok}, "
        f"probe query hits: {probe.count}"
    )
    failures = []
    if promotion is not None and promotion["term"] != old_term + 1:
        failures.append(
            f"promotion term {promotion['term']} did not bump the manifest term {old_term}"
        )
    if acknowledged_live < 1:
        failures.append("child was killed before committing anything; raise CRASH_SMOKE_WINDOW")
    if stats["annotations"] != acknowledged_live:
        failures.append(
            f"recovered {stats['annotations']} annotations but the WAL(s) acknowledged "
            f"{acknowledged_live} live"
        )
    if not report.ok:
        failures.append(f"integrity check failed: {report.errors}")
    if probe.count != stats["annotations"]:
        failures.append("probe query does not see every recovered annotation")
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("crash-recovery smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
