"""Crash-recovery smoke check: kill a serving process mid-ingest, recover.

The parent spawns a child Python process that opens a durable
:class:`~repro.service.GraphittiService`, checkpoints a seeded baseline, and
then commits annotations forever — until the parent SIGKILLs it mid-ingest
(a real crash: no atexit hooks, no flushes, possibly a torn WAL tail).  The
parent then recovers the instance and verifies:

* recovery succeeds (a torn tail is tolerated, never corruption),
* every recovered annotation is fully wired (``check_integrity()`` passes),
* the recovered annotation count matches the WAL's acknowledged history,
* the recovered instance answers queries.

Run as ``PYTHONPATH=src python -m benchmarks.crash_recovery_smoke``; exits
non-zero on any failure.  Used as a CI step.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: How long to let the child ingest before killing it (seconds).
INGEST_WINDOW = float(os.environ.get("CRASH_SMOKE_WINDOW", "1.0"))

_CHILD_CODE = """
import sys
from repro.datatypes.sequence import DnaSequence
from repro.service import GraphittiService, ServiceConfig

root = sys.argv[1]
service = GraphittiService.open(root, config=ServiceConfig(durability="always"))
service.register(DnaSequence("crash_seq", "ACGT" * 300, domain="crash:chr1"))
service.checkpoint()
print("READY", flush=True)
serial = 0
while True:
    (
        service.new_annotation(
            f"crash-{serial}",
            title=f"crash smoke {serial}",
            creator="crash-smoke",
            keywords=["crash", "smoke"],
            body="annotation committed while waiting to be killed",
        )
        .mark_sequence("crash_seq", serial % 1000, serial % 1000 + 20)
        .commit()
    )
    serial += 1
"""


def main() -> int:
    root = Path(tempfile.mkdtemp(prefix="crash-smoke-"))
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD_CODE, str(root)],
        stdout=subprocess.PIPE,
        text=True,
        env=dict(os.environ),
    )
    try:
        line = child.stdout.readline().strip()
        if line != "READY":
            print(f"FAIL: child never became ready (got {line!r})")
            return 1
        time.sleep(INGEST_WINDOW)  # let it commit mid-flight
        child.send_signal(signal.SIGKILL)
        child.wait()
    finally:
        if child.poll() is None:  # pragma: no cover - safety net
            child.kill()
            child.wait()

    from repro.service import GraphittiService, read_records

    records, torn_tail = read_records(root / "wal.jsonl")
    acknowledged_commits = sum(1 for record in records if record["op"] == "commit")
    service = GraphittiService.recover(root)
    info = service.recovery_info
    stats = service.statistics()
    report = service.check_integrity()
    probe = service.query('SELECT contents WHERE { CONTENT CONTAINS "smoke" }')
    service.close()

    print(
        f"killed mid-ingest after {INGEST_WINDOW:.1f}s: "
        f"{acknowledged_commits} acknowledged commits, torn tail: {torn_tail}"
    )
    print(
        f"recovered: replayed {info['replayed']} records over snapshot; "
        f"{stats['annotations']} annotations, integrity ok: {report.ok}, "
        f"probe query hits: {probe.count}"
    )
    failures = []
    if acknowledged_commits < 1:
        failures.append("child was killed before committing anything; raise CRASH_SMOKE_WINDOW")
    if stats["annotations"] != acknowledged_commits:
        failures.append(
            f"recovered {stats['annotations']} annotations but the WAL acknowledged "
            f"{acknowledged_commits}"
        )
    if not report.ok:
        failures.append(f"integrity check failed: {report.errors}")
    if probe.count != stats["annotations"]:
        failures.append("probe query does not see every recovered annotation")
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("crash-recovery smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
