"""PERF-9: in-place update vs delete+recommit on a churned 10k corpus.

Until this PR every annotation "edit" was a delete+recommit: two lock
acquisitions, two WAL records, the full index teardown (content document,
inverted-index postings, a-graph nodes, spatial extent, id-space slot,
catalogue entries) followed by the full rebuild.  ``update_annotation``
applies the *diff* instead — term-diff re-posting, one remove+insert in the
owning spatial tree, set-difference catalogue adjustment, stable id slot.

Two measured workloads, each applying the **same logical edit stream**
(title/keyword/body rewrite + extent move) to a 10k-annotation corpus:

* **manager-level** — bare :class:`Graphitti`: ``update_annotation`` vs
  delete + recommit of a pre-built replacement (the replacement objects are
  prepared *outside* the timed region, so the baseline pays only the two
  index churns, not object construction).
* **service-level** — through :class:`GraphittiService` (no durability root):
  adds what the serving layer pays per mutation — lock traffic, epoch/cache
  bookkeeping and the component-index rebuild a delete forces.

Floor: **>= 2x** on both at full scale — the acceptance criterion's
10k-annotation corpus, which is what CI runs.  ``python -m
benchmarks.bench_mutation`` prints the table, writes ``BENCH_mutation.json``,
and exits non-zero below a floor.  ``BENCH_SMOKE=1`` shrinks the corpus for
quick local runs; at 1/5 scale the manager-level ratio is dominated by fixed
per-op costs, so only that row's floor relaxes to 1.4x (the service row keeps
its 2x floor everywhere).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from benchmarks._harness import format_row, sample_stats, speedup, write_results
from repro.core.manager import Graphitti
from repro.core.persistence import decode_annotation, encode_annotation
from repro.datatypes.sequence import DnaSequence
from repro.service import GraphittiService, ServiceConfig

#: Minimum acceptable update-over-recommit speedup.
MUTATION_SPEEDUP_FLOOR = 2.0

_SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: The smoke corpus is too small for the manager-level ratio to express the
#: asymptotic win (fixed per-op costs dominate at 1/5 scale); its floor
#: relaxes there.  Full scale — what CI runs — keeps 2x everywhere.
_MANAGER_FLOOR = 1.4 if _SMOKE else MUTATION_SPEEDUP_FLOOR

#: (corpus annotations, objects, timed edit operations)
SCALE = (2_000, 16, 120) if _SMOKE else (10_000, 40, 300)

_KEYWORDS = ("refined", "retracted", "curated", "remapped", "revised", "flagged")
_DOMAIN = "bench:chr1"
_OBJECT_LENGTH = 2_000


def build_corpus(name: str) -> tuple[Graphitti, list[str]]:
    """A populated manager plus the ids of the annotations it holds."""
    annotations, objects, _ = SCALE
    rng = random.Random(20260726)
    manager = Graphitti(name)
    object_ids = []
    for index in range(objects):
        object_id = f"bench_mut_seq_{index}"
        manager.register(
            DnaSequence(
                object_id,
                "ACGT" * (_OBJECT_LENGTH // 4),
                domain=_DOMAIN,
                offset=index * _OBJECT_LENGTH,
            )
        )
        object_ids.append(object_id)
    batch = []
    seen_extents: set[tuple[str, int, int]] = set()
    for serial in range(annotations):
        object_id = object_ids[serial % len(object_ids)]
        # Distinct extents per annotation: a *shared* referent moves for every
        # annotation marking it (the substructure itself is refined), while a
        # recommit forks a private copy — a real semantic difference the
        # equivalence probe below must not trip over.
        while True:
            start = rng.randrange(0, _OBJECT_LENGTH - 200)
            end = start + rng.randrange(20, 150)
            if (object_id, start, end) not in seen_extents:
                seen_extents.add((object_id, start, end))
                break
        batch.append(
            manager.new_annotation(
                f"mut-{serial}",
                title=f"churn annotation {serial}",
                creator=f"curator-{serial % 4}",
                keywords=["churn", _KEYWORDS[serial % len(_KEYWORDS)]],
                body=f"initial body of annotation {serial} on {object_id}",
            )
            .mark_sequence(object_id, start, end)
            .build()
        )
    manager.commit_many(batch)
    manager.contents.flush_index()
    annotation_ids = [annotation.annotation_id for annotation in batch]
    return manager, annotation_ids


def _edit_stream(annotation_ids: list[str], operations: int) -> list[tuple[str, dict]]:
    """The shared logical edit stream: (victim id, edit spec).

    Realistic churn mix (per 10 edits): 5 content-only refinements (title /
    keyword / body), 3 extent-only moves, 2 full revisions touching both —
    the shapes the motivation names (curators refine extents, fix terms).
    """
    rng = random.Random(77)
    victims = rng.sample(annotation_ids, operations)
    stream = []
    for op_index, victim in enumerate(victims):
        # Half-integer starts cannot collide with the integer corpus extents,
        # and the linear walk keeps the moved extents distinct from each
        # other — so neither path ever merges referents mid-stream.
        start = 0.5 + (op_index * 5.5) % (_OBJECT_LENGTH - 300)
        bucket = op_index % 10
        spec: dict = {}
        if bucket < 5 or bucket >= 8:  # content edit
            spec.update(
                {
                    "title": f"edited {op_index}",
                    "keywords": [
                        "churn",
                        _KEYWORDS[op_index % len(_KEYWORDS)],
                        f"stamp{op_index}",
                    ],
                    "body": f"revised body {op_index} after curator review",
                }
            )
        if bucket >= 5:  # extent move
            spec["_move"] = (start, start + 60)
        stream.append((victim, spec))
    return stream


def _update_changes(manager: Graphitti, victim: str, spec: dict) -> dict:
    """The ``update_annotation`` changes dict for one edit."""
    changes = {key: value for key, value in spec.items() if not key.startswith("_")}
    if "_move" in spec:
        annotation = manager.annotation(victim)
        referent_id = annotation.referents[0].referent_id
        start, end = spec["_move"]
        changes["move_referents"] = {referent_id: {"start": start, "end": end}}
    return changes


def _recommit_replacement(manager: Graphitti, victim: str, spec: dict):
    """A pre-built replacement annotation embodying the same edit."""
    replacement = decode_annotation(encode_annotation(manager.annotation(victim)))
    dublin_core = replacement.content.dublin_core
    if "title" in spec:
        dublin_core.title = spec["title"]
        dublin_core.subject = list(spec["keywords"])
        replacement.content.body = spec["body"]
    if "_move" in spec:
        referent = replacement.referents[0]
        start, end = spec["_move"]
        from repro.spatial.interval import Interval

        referent.ref.interval = Interval(start, end, domain=referent.ref.interval.domain)
        referent.ref.descriptor["start"] = start
        referent.ref.descriptor["end"] = end
    return replacement


def measure(level: str) -> dict[str, float]:
    """Timed edit stream through *level* ('manager' or 'service')."""
    _, _, operations = SCALE
    update_manager, annotation_ids = build_corpus(f"bench-mut-update-{level}")
    recommit_manager, _ = build_corpus(f"bench-mut-recommit-{level}")
    stream = _edit_stream(annotation_ids, operations)

    if level == "service":
        update_surface = GraphittiService(
            manager=update_manager, config=ServiceConfig(cache_capacity=0)
        )
        recommit_surface = GraphittiService(
            manager=recommit_manager, config=ServiceConfig(cache_capacity=0)
        )
    else:
        update_surface = update_manager
        recommit_surface = recommit_manager

    # Prepare both paths' inputs OUTSIDE the timed regions: the baseline pays
    # only its two index churns, never replacement-object construction.
    update_ops = [
        (victim, _update_changes(update_manager, victim, spec)) for victim, spec in stream
    ]
    recommit_ops = [
        (victim, _recommit_replacement(recommit_manager, victim, spec))
        for victim, spec in stream
    ]

    # Per-edit samples: the edit stream mutates state so it runs once, and
    # the per-operation latencies are what percentile reporting summarises.
    recommit_samples = []
    for victim, replacement in recommit_ops:
        start_time = time.perf_counter()
        recommit_surface.delete_annotation(victim)
        recommit_surface.commit(replacement)
        recommit_samples.append(time.perf_counter() - start_time)
    recommit_seconds = sum(recommit_samples)

    update_samples = []
    for victim, changes in update_ops:
        start_time = time.perf_counter()
        update_surface.update_annotation(victim, changes)
        update_samples.append(time.perf_counter() - start_time)
    update_seconds = sum(update_samples)

    # Both paths must land the same query-visible state.
    probes = (
        'SELECT contents WHERE { CONTENT CONTAINS "stamp7" }',
        'SELECT contents WHERE { CONTENT CONTAINS "revised" }',
        f"SELECT contents WHERE {{ INTERVAL OVERLAPS {_DOMAIN} [0, 500] }}",
    )
    for text in probes:
        updated = update_manager.query(text).annotation_ids
        recommitted = recommit_manager.query(text).annotation_ids
        assert updated == recommitted, f"update and recommit disagree on {text!r}"
    assert update_manager.stats_catalogue.counts() == recommit_manager.stats_catalogue.counts()

    row = {
        "workload": f"{level}_edit_stream",
        "baseline_seconds": recommit_seconds,
        "candidate_seconds": update_seconds,
        "speedup": speedup(recommit_seconds, update_seconds),
        "operations": operations,
    }
    row.update(sample_stats(recommit_samples, prefix="baseline"))
    row.update(sample_stats(update_samples, prefix="candidate"))
    return row


# -- pytest-benchmark entry points --------------------------------------------


@pytest.fixture(scope="module")
def edit_fixture():
    manager, annotation_ids = build_corpus("bench-mut-pytest")
    stream = _edit_stream(annotation_ids, 50)
    return manager, stream


def test_update_annotation(benchmark, edit_fixture):
    manager, stream = edit_fixture
    iterator = iter(stream * 1000)

    def one_edit():
        victim, spec = next(iterator)
        manager.update_annotation(victim, _update_changes(manager, victim, spec))

    benchmark(one_edit)


# -- report -------------------------------------------------------------------


def report() -> tuple[str, bool]:
    annotations, objects, operations = SCALE
    rows = [measure("manager"), measure("service")]
    lines = [
        "PERF-9  mutation lifecycle: update_annotation vs delete+recommit "
        f"({annotations} annotations, {objects} objects, {operations} edits"
        f"{', smoke' if _SMOKE else ''})"
    ]
    widths = [24, 18, 14, 10, 8]
    lines.append(
        format_row(["workload", "recommit (ms)", "update (ms)", "speedup", "floor"], widths)
    )
    ok = True
    for row in rows:
        floor = _MANAGER_FLOOR if row["workload"].startswith("manager") else MUTATION_SPEEDUP_FLOOR
        ok = ok and row["speedup"] >= floor
        row["speedup_floor"] = floor
        lines.append(
            format_row(
                [
                    row["workload"],
                    f"{row['baseline_seconds'] * 1e3:.3f}",
                    f"{row['candidate_seconds'] * 1e3:.3f}",
                    f"{row['speedup']:.1f}x",
                    f"{floor:.1f}x",
                ],
                widths,
            )
        )
    path = write_results(
        "mutation",
        rows,
        annotations=annotations,
        objects=objects,
        operations=operations,
        smoke=_SMOKE,
        speedup_floor=MUTATION_SPEEDUP_FLOOR,
    )
    lines.append(f"results written to {path}")
    if not ok:
        lines.append("FAIL: update_annotation is below its speedup floor")
    return "\n".join(lines), ok


if __name__ == "__main__":
    text, ok = report()
    print(text)
    raise SystemExit(0 if ok else 1)
