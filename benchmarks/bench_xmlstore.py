"""PERF-4: XML annotation-content keyword search, indexed vs. full scan.

Reproduces the benefit of the inverted keyword index over the annotation
content collection relative to scanning every XML document.
"""

from __future__ import annotations

import random

import pytest

from benchmarks._harness import format_row, speedup, time_call
from repro.xmlstore.collection import DocumentCollection

SIZES = (100, 1000, 5000)
_TERMS = ["protease", "kinase", "binding", "mutation", "conserved", "cleavage", "epitope", "domain"]


def _make_collection(count: int, indexed: bool, seed: int = 4) -> DocumentCollection:
    rng = random.Random(seed)
    collection = DocumentCollection("bench", indexed=indexed)
    for index in range(count):
        terms = rng.sample(_TERMS, 3)
        xml = (
            f"<annotation><dc:subject>{terms[0]}</dc:subject>"
            f"<body>comment about {terms[1]} and {terms[2]} number {index}</body></annotation>"
        )
        collection.add_xml(xml, doc_id=f"doc{index}")
    return collection


@pytest.mark.parametrize("size", SIZES)
def test_keyword_indexed(benchmark, size):
    collection = _make_collection(size, indexed=True)
    benchmark(lambda: collection.search_keyword("protease"))


@pytest.mark.parametrize("size", SIZES)
def test_keyword_scan(benchmark, size):
    collection = _make_collection(size, indexed=False)
    benchmark(lambda: collection.scan_keyword("protease"))


@pytest.mark.parametrize("size", (100, 1000))
def test_xpath_select(benchmark, size):
    collection = _make_collection(size, indexed=True)
    benchmark(lambda: collection.select("//dc:subject"))


def report() -> str:
    lines = ["PERF-4  keyword search: inverted index vs full scan"]
    lines.append(format_row(["docs", "indexed (us)", "scan (us)", "speedup"], [10, 14, 12, 10]))
    for size in SIZES:
        indexed = _make_collection(size, indexed=True)
        scanned = _make_collection(size, indexed=False)
        idx_time = time_call(lambda: indexed.search_keyword("protease"), repeat=10)
        scan_time = time_call(lambda: scanned.scan_keyword("protease"), repeat=3)
        lines.append(
            format_row(
                [size, f"{idx_time * 1e6:.2f}", f"{scan_time * 1e6:.1f}", f"{speedup(scan_time, idx_time):.1f}x"],
                [10, 14, 12, 10],
            )
        )
    return "\n".join(lines)


if __name__ == "__main__":
    print(report())
