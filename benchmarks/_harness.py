"""Shared measurement helpers for the benchmark report() functions.

``pytest-benchmark`` drives the ``test_*`` functions; the ``report()``
functions use :func:`time_call` so EXPERIMENTS.md can be regenerated with a
plain ``python -m benchmarks.bench_x`` invocation that does not depend on the
pytest-benchmark plugin.
"""

from __future__ import annotations

import time
from typing import Callable


def time_call(fn: Callable, repeat: int = 5, number: int = 1) -> float:
    """Return the best per-call wall-clock time (seconds) over *repeat* rounds."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = (time.perf_counter() - start) / number
        best = min(best, elapsed)
    return best


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """Speed-up factor of candidate over baseline (guards divide-by-zero)."""
    if candidate_seconds <= 0:
        return float("inf")
    return baseline_seconds / candidate_seconds


def format_row(values, widths) -> str:
    """Format a table row with fixed column widths."""
    cells = []
    for value, width in zip(values, widths):
        cells.append(str(value).ljust(width))
    return "  ".join(cells)
