"""Shared measurement helpers for the benchmark report() functions.

``pytest-benchmark`` drives the ``test_*`` functions; the ``report()``
functions use :func:`time_call` so EXPERIMENTS.md can be regenerated with a
plain ``python -m benchmarks.bench_x`` invocation that does not depend on the
pytest-benchmark plugin.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Callable


def time_call(fn: Callable, repeat: int = 5, number: int = 1) -> float:
    """Return the best per-call wall-clock time (seconds) over *repeat* rounds."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = (time.perf_counter() - start) / number
        best = min(best, elapsed)
    return best


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """Speed-up factor of candidate over baseline (guards divide-by-zero)."""
    if candidate_seconds <= 0:
        return float("inf")
    return baseline_seconds / candidate_seconds


def format_row(values, widths) -> str:
    """Format a table row with fixed column widths."""
    cells = []
    for value, width in zip(values, widths):
        cells.append(str(value).ljust(width))
    return "  ".join(cells)


def results_dir() -> Path:
    """Directory machine-readable results are written to.

    Defaults to ``benchmarks/results/`` next to this file; override with the
    ``BENCH_RESULTS_DIR`` environment variable (CI points it at a workspace
    artifact path).
    """
    configured = os.environ.get("BENCH_RESULTS_DIR")
    base = Path(configured) if configured else Path(__file__).parent / "results"
    base.mkdir(parents=True, exist_ok=True)
    return base


def write_results(name: str, rows: list[dict[str, Any]], **metadata: Any) -> Path:
    """Write one benchmark's results as machine-readable ``BENCH_<name>.json``.

    *rows* is a list of flat dicts (one measurement each, times in seconds).
    The file is what tracks the performance trajectory across PRs: each CI
    run uploads it, and any regression shows up as a diff of numbers rather
    than of prose.  Returns the path written.
    """
    payload = {
        "benchmark": name,
        "unit": "seconds",
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "rows": rows,
    }
    payload.update(metadata)
    path = results_dir() / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n")
    return path
