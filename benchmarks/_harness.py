"""Shared measurement helpers for the benchmark report() functions.

``pytest-benchmark`` drives the ``test_*`` functions; the ``report()``
functions use :func:`time_call` so EXPERIMENTS.md can be regenerated with a
plain ``python -m benchmarks.bench_x`` invocation that does not depend on the
pytest-benchmark plugin.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable


def time_call(fn: Callable, repeat: int = 5, number: int = 1) -> float:
    """Return the best per-call wall-clock time (seconds) over *repeat* rounds."""
    return min(time_samples(fn, repeat=repeat, number=number))


def time_samples(fn: Callable, repeat: int = 5, number: int = 1) -> list[float]:
    """Per-round mean per-call times (seconds), one sample per round.

    The raw samples are what percentile reporting needs: the *best* round
    (what :func:`time_call` returns) tracks the code's floor, while
    p50/p95/p99 of the rounds expose the latency tail a mean hides — the
    reason the known small-corpus planner regression went unnoticed.
    """
    samples: list[float] = []
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        samples.append((time.perf_counter() - start) / number)
    return samples


def percentile(samples: list[float], q: float) -> float:
    """The *q*-th percentile (0..100) of *samples*, linearly interpolated."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + fraction * (ordered[high] - ordered[low])


def sample_stats(samples: list[float], prefix: str = "") -> dict[str, float]:
    """Summary keys for one measurement's samples: best/mean/p50/p95/p99.

    With *prefix* (e.g. ``"candidate"``) the keys become
    ``candidate_p50_seconds`` etc., ready to merge into an existing result
    row without renaming the keys CI floors already read.
    """
    stats = {
        "best_seconds": min(samples) if samples else 0.0,
        "mean_seconds": (sum(samples) / len(samples)) if samples else 0.0,
        "p50_seconds": percentile(samples, 50),
        "p95_seconds": percentile(samples, 95),
        "p99_seconds": percentile(samples, 99),
    }
    if prefix:
        return {f"{prefix}_{key}": value for key, value in stats.items()}
    return stats


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """Speed-up factor of candidate over baseline (guards divide-by-zero)."""
    if candidate_seconds <= 0:
        return float("inf")
    return baseline_seconds / candidate_seconds


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process so far, in bytes.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; normalising here
    keeps the ``rss_bytes`` keys in BENCH files comparable across platforms.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


def current_rss_bytes() -> int:
    """Resident-set size of this process right now, in bytes.

    Unlike :func:`peak_rss_bytes` this is not monotonic: transient spikes
    (e.g. parsing a whole snapshot into one dict) fall back out of it, so
    it is the number that answers "what does this process cost to keep
    running" — measure it after the transient work, ideally post-gc.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:  # pragma: no cover - non-Linux platform
        pass
    return peak_rss_bytes()  # pragma: no cover - non-Linux fallback


def subprocess_probe(module: str, *args: str, env: dict[str, str] | None = None) -> dict[str, Any]:
    """Run ``python -m module args...`` and parse its last stdout line as JSON.

    Memory measurements demand a fresh process: peak RSS is monotonic, so a
    probe that ran after a bigger workload in the same interpreter would
    inherit its high-water mark.  The probe prints a single JSON object as
    its final line; everything before it is free-form progress output.
    """
    merged = dict(os.environ)
    merged["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    if env:
        merged.update(env)
    completed = subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True,
        text=True,
        env=merged,
        check=True,
    )
    lines = [line for line in completed.stdout.splitlines() if line.strip()]
    if not lines:
        raise RuntimeError(f"probe {module} produced no output: {completed.stderr}")
    return json.loads(lines[-1])


def measure_recovery(open_fn: Callable[[], Any]) -> tuple[Any, float]:
    """Time a cold open/recovery; returns ``(opened, seconds)``."""
    start = time.perf_counter()
    opened = open_fn()
    return opened, time.perf_counter() - start


def format_row(values, widths) -> str:
    """Format a table row with fixed column widths."""
    cells = []
    for value, width in zip(values, widths):
        cells.append(str(value).ljust(width))
    return "  ".join(cells)


def results_dir() -> Path:
    """Directory machine-readable results are written to.

    Defaults to ``benchmarks/results/`` next to this file; override with the
    ``BENCH_RESULTS_DIR`` environment variable (CI points it at a workspace
    artifact path).
    """
    configured = os.environ.get("BENCH_RESULTS_DIR")
    base = Path(configured) if configured else Path(__file__).parent / "results"
    base.mkdir(parents=True, exist_ok=True)
    return base


def write_results(name: str, rows: list[dict[str, Any]], **metadata: Any) -> Path:
    """Write one benchmark's results as machine-readable ``BENCH_<name>.json``.

    *rows* is a list of flat dicts (one measurement each, times in seconds).
    The file is what tracks the performance trajectory across PRs: each CI
    run uploads it, and any regression shows up as a diff of numbers rather
    than of prose.  Returns the path written.
    """
    payload = {
        "benchmark": name,
        "unit": "seconds",
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "rows": rows,
    }
    payload.update(metadata)
    path = results_dir() / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n")
    return path
