"""FIG-3: the query-tab scenario (annotation graph + correlated data).

Reproduces Fig. 3 as an executable artifact: the query returning a connection
subgraph of a sequence + image + phylogenetic tree related to alpha-synuclein,
and the correlated-data view.
"""

from __future__ import annotations

from benchmarks._harness import format_row, time_call
from repro.query.builder import QueryBuilder
from repro.workloads.scenarios import build_neuroscience_instance


def _fig3_query(g):
    return g.query(QueryBuilder.graph().refers("alpha-synuclein").build())


def test_fig3_query(benchmark):
    g = build_neuroscience_instance()
    benchmark(lambda: _fig3_query(g))


def test_fig3_correlated_data(benchmark):
    g = build_neuroscience_instance()
    benchmark(lambda: g.correlated_data("neuro-a1"))


def report() -> str:
    g = build_neuroscience_instance()
    result = _fig3_query(g)
    witness = g.witness_structure("neuro-a1")
    types = {referent["type"] for referent in witness["referents"]}
    lines = ["FIG-3  query-tab scenario (alpha-synuclein annotation graph)"]
    lines.append(format_row(["metric", "value"], [30, 26]))
    rows = [
        ("result pages (subgraphs)", len(result.subgraphs)),
        ("witness referent types", sorted(types)),
        ("sequence+image+tree present", {"dna_sequence", "image", "phylogenetic_tree"} <= types),
        ("correlated annotations", sum(len(v) for v in g.correlated_data("neuro-a1").values())),
        ("path neuro-a1..neuro-a2 len", len(g.path_between_annotations("neuro-a1", "neuro-a2") or [])),
    ]
    for name, value in rows:
        lines.append(format_row([name, value], [30, 26]))
    query_time = time_call(lambda: _fig3_query(g), repeat=10)
    lines.append(format_row(["query time (us)", f"{query_time * 1e6:.1f}"], [30, 26]))
    return "\n".join(lines)


if __name__ == "__main__":
    print(report())
