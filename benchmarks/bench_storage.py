"""PERF-9: columnar storage residency + non-blocking checkpoint stalls.

Two workloads measure what the columnar annotation store and the
copy-on-write checkpoint pipeline buy at the storage layer:

* **write latency during checkpoints** — per-commit durable write latency
  on a seeded corpus, measured with no checkpoint activity and again while
  a background thread runs ``service.checkpoint()`` in a loop (seal +
  freeze under the lock, serialization off-lock).  Floor: **p99 during
  checkpoints <= 2x the no-checkpoint p99** (with a small absolute grace
  for sub-millisecond baselines) — the old implementation serialized the
  whole corpus under the write lock, so this is the number that proves
  checkpoints stopped blocking writers.  The ratio floor is enforced on
  multi-core hosts; on a single core the committer and the background
  serializer share the CPU, so scheduler timeslices dominate the tail no
  matter how non-blocking the design is — there only the absolute ceiling
  (which a serialize-under-lock regression would blow past) is enforced.
* **cold recovery RSS + time** — a checkpointed root is recovered in a
  fresh subprocess two ways: the columnar path (lazy documents, packed
  columns) and the pre-refactor object-graph baseline
  (``rebuild(eager_documents=True)`` with every annotation materialized
  and retained).  Each probe reports ``rss_bytes`` (peak RSS) and
  ``recovery_s``.  Floor: **columnar RSS <= object-graph RSS**.

``python -m benchmarks.bench_storage`` prints the table, writes
``BENCH_storage.json`` via the harness, and exits non-zero below a floor.
Set ``BENCH_SMOKE=1`` for the CI-sized run (floors still apply).  The
``--probe MODE ROOT`` form is internal: it runs one recovery measurement
in this process and prints a JSON result line.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

from benchmarks._harness import (
    current_rss_bytes,
    format_row,
    peak_rss_bytes,
    percentile,
    sample_stats,
    subprocess_probe,
    write_results,
)

#: p99 commit latency while checkpoints run, relative to the quiet p99.
STALL_P99_FACTOR = 2.0

#: Absolute grace for the ratio floor: when the quiet p99 is sub-millisecond
#: the ratio is dominated by scheduler and filesystem-journal noise the quiet
#: phase never sees; a p99 of a few milliseconds under continuous checkpoint
#: churn still honors the non-blocking promise.
STALL_P99_GRACE_S = 0.005

#: Unconditional ceiling, enforced even where the ratio floor is not: a
#: regression to serialize-under-the-write-lock stalls commits for the full
#: serialization (hundreds of milliseconds at smoke scale, seconds at 100k),
#: which this catches on any host.
STALL_P99_CEILING_S = 0.1

_SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: (corpus annotations, latency-sample commits, bulk-commit batch size).
#: Enough latency samples that the p99 reflects the stall distribution
#: rather than a single unlucky scheduler artifact.
SCALE = (2_000, 300, 500) if _SMOKE else (100_000, 600, 2_000)

_KEYWORDS = ("storage", "binding", "cleavage", "regulatory", "conserved", "mutation")


def _build_batch(manager, object_ids, count: int, prefix: str):
    rng = random.Random(len(prefix) * 7919 + count)
    batch = []
    for index in range(count):
        object_id = object_ids[index % len(object_ids)]
        start = rng.randrange(0, 900)
        builder = manager.new_annotation(
            f"{prefix}-{index}",
            title=f"storage annotation {index}",
            creator=f"bench-{index % 5}",
            keywords=["storage", rng.choice(_KEYWORDS)],
            body=f"columnar storage benchmark annotation over {object_id}",
        ).mark_sequence(object_id, start, start + rng.randrange(10, 120))
        batch.append(builder.build())
    return batch


def _open_corpus(root: str, annotations: int):
    """A durable service at *root* seeded with *annotations* committed rows."""
    from repro.core.manager import Graphitti
    from repro.service import GraphittiService, ServiceConfig
    from repro.workloads.service_scenario import seed_service_objects

    _, _, batch_size = SCALE
    manager = Graphitti("bench-storage")
    object_ids = seed_service_objects(manager)
    service = GraphittiService(
        manager=manager,
        root=root,
        config=ServiceConfig(durability="always", checkpoint_on_close=False),
    )
    committed = 0
    while committed < annotations:
        step = min(batch_size, annotations - committed)
        batch = _build_batch(manager, object_ids, step, prefix=f"seed{committed}")
        service.bulk_commit(batch)
        committed += step
    return service, manager, object_ids


def _commit_latencies(service, manager, object_ids, count: int, prefix: str) -> list[float]:
    """Per-commit durable write latencies (seconds) for *count* fresh commits."""
    samples: list[float] = []
    for index, annotation in enumerate(_build_batch(manager, object_ids, count, prefix)):
        del index
        start = time.perf_counter()
        service.commit(annotation)
        samples.append(time.perf_counter() - start)
    return samples


def measure_checkpoint_stall() -> dict:
    """p99 commit latency, quiet vs. under a continuous checkpoint loop."""
    annotations, latency_commits, _ = SCALE
    root = tempfile.mkdtemp(prefix="bench-storage-stall-")
    try:
        service, manager, object_ids = _open_corpus(root, annotations)
        try:
            service.checkpoint()  # start both phases from a sealed baseline
            baseline = _commit_latencies(
                service, manager, object_ids, latency_commits, prefix="quiet"
            )
            stop = threading.Event()

            def churn() -> None:
                while not stop.is_set():
                    service.checkpoint()

            churner = threading.Thread(target=churn, name="bench-ckpt-churn", daemon=True)
            churner.start()
            try:
                during = _commit_latencies(
                    service, manager, object_ids, latency_commits, prefix="busy"
                )
            finally:
                stop.set()
                churner.join()
            checkpoints = service.statistics()["service"]["checkpoints"]
        finally:
            service.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
    baseline_p99 = percentile(baseline, 99)
    during_p99 = percentile(during, 99)
    row = {
        "workload": "write_latency_during_checkpoint",
        "corpus_annotations": annotations,
        "latency_samples": latency_commits,
        "checkpoints_completed": checkpoints,
        "p99_ratio": (during_p99 / baseline_p99) if baseline_p99 > 0 else 0.0,
        "p99_ratio_floor": STALL_P99_FACTOR,
        "p99_grace_seconds": STALL_P99_GRACE_S,
        "p99_ceiling_seconds": STALL_P99_CEILING_S,
        "ratio_floor_enforced": _multi_core(),
    }
    row.update(sample_stats(baseline, prefix="baseline"))
    row.update(sample_stats(during, prefix="during"))
    return row


def _multi_core() -> bool:
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        return len(affinity(0)) > 1
    return (os.cpu_count() or 1) > 1  # pragma: no cover - non-Linux fallback


def measure_recovery() -> list[dict]:
    """Cold-recovery RSS and time: columnar vs. the object-graph baseline.

    Both probes run in fresh subprocesses — peak RSS is monotonic per
    process, so sharing an interpreter would let the first probe's
    high-water mark mask the second's.
    """
    annotations, _, _ = SCALE
    root = tempfile.mkdtemp(prefix="bench-storage-recovery-")
    try:
        service, _, _ = _open_corpus(root, annotations)
        service.checkpoint()
        service.close()
        rows = []
        for mode in ("object_graph", "columnar"):
            probe = subprocess_probe("benchmarks.bench_storage", "--probe", mode, root)
            rows.append(
                {
                    "workload": "cold_recovery",
                    "mode": mode,
                    "corpus_annotations": annotations,
                    "rss_bytes": probe["rss_bytes"],
                    "peak_rss_bytes": probe["peak_rss_bytes"],
                    "recovery_s": probe["recovery_s"],
                    "recovered_annotations": probe["annotations"],
                }
            )
        return rows
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _probe_main(mode: str, root: str) -> int:
    """Measure one cold recovery in THIS process; print a JSON result line.

    ``rss_bytes`` is the steady-state residency with the recovered state
    still alive (post-gc): both probes pay the same transient spike parsing
    the snapshot JSON, so peak RSS would only compare parser ceilings —
    what the columnar store actually changes is what stays resident.
    """
    import gc

    if mode == "columnar":
        from repro.service import GraphittiService, ServiceConfig

        start = time.perf_counter()
        service = GraphittiService.recover(
            root, config=ServiceConfig(checkpoint_on_close=False)
        )
        count = service.statistics()["annotations"]
        recovery_s = time.perf_counter() - start
        retained = service  # keep the recovered service resident
    elif mode == "object_graph":
        from repro.core.persistence import rebuild

        payload = json.loads((Path(root) / "snapshot.json").read_text())
        start = time.perf_counter()
        manager = rebuild(payload, eager_documents=True)
        retained = (manager, list(manager.annotations()))  # the old resident graph
        count = len(retained[1])
        recovery_s = time.perf_counter() - start
        del payload
    else:
        print(f"unknown probe mode: {mode}", file=sys.stderr)
        return 2
    gc.collect()
    result = {
        "mode": mode,
        "annotations": count,
        "recovery_s": recovery_s,
        "rss_bytes": current_rss_bytes(),
        "peak_rss_bytes": peak_rss_bytes(),
    }
    if mode == "columnar":
        retained.close()
    print(json.dumps(result))
    return 0


def _recovery_equivalence_check() -> None:
    """Sanity: the columnar recovery serves the object-graph oracle's answers."""
    from repro.core.persistence import rebuild
    from repro.service import GraphittiService, ServiceConfig

    root = tempfile.mkdtemp(prefix="bench-storage-eq-")
    try:
        service, _, _ = _open_corpus(root, 60)
        service.checkpoint()
        service.close()
        recovered = GraphittiService.recover(
            root, config=ServiceConfig(checkpoint_on_close=False)
        )
        probe = recovered.query('SELECT contents WHERE { CONTENT CONTAINS "storage" }')
        served = (sorted(probe.annotation_ids), recovered.statistics()["annotations"])
        recovered.close()
        payload = json.loads((Path(root) / "snapshot.json").read_text())
        oracle = rebuild(payload, eager_documents=True)
        oracle_ids = sorted(
            annotation.annotation_id for annotation in oracle.annotations()
        )
        assert served == (oracle_ids, len(oracle_ids)), (
            "columnar recovery diverged from the object-graph oracle"
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)


# -- report -------------------------------------------------------------------


def report() -> tuple[str, bool]:
    _recovery_equivalence_check()
    annotations, latency_commits, batch_size = SCALE
    stall_row = measure_checkpoint_stall()
    recovery_rows = measure_recovery()
    by_mode = {row["mode"]: row for row in recovery_rows}
    rss_ok = by_mode["columnar"]["rss_bytes"] <= by_mode["object_graph"]["rss_bytes"]
    during_p99 = stall_row["during_p99_seconds"]
    ratio_budget = max(
        STALL_P99_FACTOR * stall_row["baseline_p99_seconds"], STALL_P99_GRACE_S
    )
    stall_ok = during_p99 <= STALL_P99_CEILING_S
    if stall_row["ratio_floor_enforced"]:
        stall_ok = stall_ok and during_p99 <= ratio_budget
    lines = [
        "PERF-9  columnar storage: checkpoint stalls + cold-recovery residency "
        f"({annotations} annotations{', smoke' if _SMOKE else ''})"
    ]
    widths = [32, 18, 18, 12]
    lines.append(format_row(["workload", "baseline", "candidate", "floor"], widths))
    lines.append(
        format_row(
            [
                "p99 commit (ms)",
                f"{stall_row['baseline_p99_seconds'] * 1e3:.3f}",
                f"{stall_row['during_p99_seconds'] * 1e3:.3f} (ckpt)",
                f"<= {STALL_P99_FACTOR:.0f}x",
            ],
            widths,
        )
    )
    lines.append(
        format_row(
            [
                "cold recovery RSS (MiB)",
                f"{by_mode['object_graph']['rss_bytes'] / 2**20:.1f}",
                f"{by_mode['columnar']['rss_bytes'] / 2**20:.1f}",
                "<= baseline",
            ],
            widths,
        )
    )
    lines.append(
        format_row(
            [
                "cold recovery time (s)",
                f"{by_mode['object_graph']['recovery_s']:.3f}",
                f"{by_mode['columnar']['recovery_s']:.3f}",
                "-",
            ],
            widths,
        )
    )
    path = write_results(
        "storage",
        [stall_row, *recovery_rows],
        annotations=annotations,
        latency_samples=latency_commits,
        bulk_batch_size=batch_size,
        smoke=_SMOKE,
        stall_p99_factor=STALL_P99_FACTOR,
    )
    lines.append(f"results written to {path}")
    if not stall_row["ratio_floor_enforced"]:
        lines.append(
            "note: single-core host — the 2x ratio floor is not enforced here "
            f"(measured {stall_row['p99_ratio']:.2f}x); the "
            f"{1e3 * STALL_P99_CEILING_S:.0f}ms absolute ceiling still is"
        )
    ok = True
    if not stall_ok:
        ok = False
        lines.append(
            f"FAIL: p99 commit latency during checkpoints is "
            f"{1e3 * during_p99:.1f}ms "
            f"(budget {1e3 * min(ratio_budget, STALL_P99_CEILING_S):.1f}ms; "
            f"{stall_row['p99_ratio']:.2f}x the quiet p99, floor {STALL_P99_FACTOR:.0f}x)"
        )
    if not rss_ok:
        ok = False
        lines.append(
            "FAIL: columnar cold-recovery RSS exceeds the object-graph baseline"
        )
    return "\n".join(lines), ok


if __name__ == "__main__":
    if len(sys.argv) >= 4 and sys.argv[1] == "--probe":
        raise SystemExit(_probe_main(sys.argv[2], sys.argv[3]))
    text, ok = report()
    print(text)
    raise SystemExit(0 if ok else 1)
