"""PERF-7: indexed adjacency engine vs. the pre-refactor traversal path.

Measures the four hot-path workloads the indexed-adjacency refactor targets,
on the same >=10k-node / >=30k-edge a-graph, against the faithful
pre-refactor engine kept in :mod:`repro.baselines.unindexed_multigraph`:

* ``path()``        — label-indexed zero-copy BFS vs. list-concatenating BFS
* ``connect()``     — one BFS tree serving all terminals vs. a BFS per terminal
* component grouping — union-find component roots vs. a BFS sweep per seed
* path-constraint   — two multi-source bounded BFS sweeps vs. one BFS per
                      (source, target) pair

``python -m benchmarks.bench_adjacency_engine`` prints the comparison table,
writes ``BENCH_adjacency_engine.json`` via the harness, and exits non-zero if
any workload falls below the 3x speedup floor.  Set ``BENCH_SMOKE=1`` for a
fast CI-sized run (the floor still applies).
"""

from __future__ import annotations

import os
import random

import pytest

from benchmarks._harness import format_row, sample_stats, speedup, time_samples, write_results
from repro.agraph.agraph import AGraph
from repro.baselines.unindexed_multigraph import UnindexedMultigraph, mirror_agraph

#: Minimum acceptable speedup of the indexed engine over the pre-refactor one.
SPEEDUP_FLOOR = 3.0

_SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: (contents in the big cluster, referents in it, small clusters, terms).
SCALE = (700, 350, 60, 80) if _SMOKE else (4000, 2000, 400, 500)


def build_workload(seed: int = 11):
    """One large annotation cluster + many small ones, ontology-decorated.

    The big cluster models the densely cross-annotated core the paper's
    path/connect queries traverse; the small clusters model the independent
    result pages the executor groups by connected component.
    """
    big_contents, big_referents, small_clusters, term_count = SCALE
    rng = random.Random(seed)
    g = AGraph()
    terms = [f"t{i}" for i in range(term_count)]
    for term in terms:
        g.add_ontology_node(term)

    referents = [f"r{i}" for i in range(big_referents)]
    for referent in referents:
        g.add_referent(referent)
    for index in range(1, big_referents):
        g.link_referents(referents[index - 1], referents[index])
    contents = []
    for index in range(big_contents):
        content = f"c{index}"
        g.add_content(content)
        contents.append(content)
        for _ in range(rng.randint(2, 4)):
            g.link_annotation(content, rng.choice(referents))
        g.link_ontology(content, rng.choice(terms))
    for index, referent in enumerate(referents):
        g.link_ontology(referent, terms[index % term_count])

    cluster_seeds = []
    for cluster in range(small_clusters):
        local_refs = [f"s{cluster}_r{i}" for i in range(5)]
        for referent in local_refs:
            g.add_referent(referent)
        for index in range(1, 5):
            g.link_referents(local_refs[index - 1], local_refs[index])
        for index in range(10):
            content = f"s{cluster}_c{index}"
            g.add_content(content)
            for _ in range(rng.randint(2, 3)):
                g.link_annotation(content, rng.choice(local_refs))
            if index == 0:
                cluster_seeds.append(content)
    return g, contents, cluster_seeds


def _component_seeds(contents, cluster_seeds, count=200):
    seeds = list(cluster_seeds)
    seeds.extend(contents[: max(0, count - len(seeds))])
    return seeds[:count]


def _path_endpoints(contents):
    return contents[0], contents[-1]


def _workloads(g: AGraph, mirror: UnindexedMultigraph, contents, cluster_seeds):
    """(name, indexed_fn, baseline_fn) triples over identical inputs."""
    source, target = _path_endpoints(contents)
    terminals = contents[:12]
    seeds = _component_seeds(contents, cluster_seeds)
    path_sources = contents[:6]
    path_targets = contents[-6:]

    def grouped_indexed():
        by_root: dict = {}
        for seed in seeds:
            by_root.setdefault(g.component_root(seed), []).append(seed)
        return by_root

    return [
        (
            "path",
            lambda: g.path(source, target),
            lambda: mirror.path(source, target),
        ),
        (
            "connect",
            lambda: g.connect(*terminals),
            lambda: mirror.connect_nodes(*terminals),
        ),
        (
            "component_grouping",
            grouped_indexed,
            lambda: mirror.group_by_component(seeds),
        ),
        (
            "path_constraint",
            lambda: _indexed_path_eval(g, path_sources, path_targets, 6),
            lambda: mirror.pairwise_path_eval(path_sources, path_targets, 6),
        ),
    ]


def _indexed_path_eval(g: AGraph, sources, targets, bound):
    """The executor's two-sweep evaluation, inlined for the benchmark."""
    from_sources = g.multi_source_distances(sources, max_depth=bound)
    from_targets = g.multi_source_distances(targets, max_depth=bound)
    graph = g.graph
    return {
        node
        for node, source_distance in from_sources.items()
        if (target_distance := from_targets.get(node)) is not None
        and source_distance + target_distance <= bound
        and graph.node(node).kind == "content"
    }


# -- pytest-benchmark entry points --------------------------------------------


@pytest.fixture(scope="module")
def engines():
    g, contents, cluster_seeds = build_workload()
    return g, mirror_agraph(g), contents, cluster_seeds


@pytest.mark.parametrize("workload", ["path", "connect", "component_grouping", "path_constraint"])
def test_indexed_engine(benchmark, engines, workload):
    g, mirror, contents, cluster_seeds = engines
    table = {name: fn for name, fn, _ in _workloads(g, mirror, contents, cluster_seeds)}
    benchmark(table[workload])


@pytest.mark.parametrize("workload", ["path", "component_grouping"])
def test_unindexed_engine(benchmark, engines, workload):
    g, mirror, contents, cluster_seeds = engines
    table = {name: fn for name, _, fn in _workloads(g, mirror, contents, cluster_seeds)}
    benchmark(table[workload])


# -- report -------------------------------------------------------------------


def report() -> tuple[str, bool]:
    g, contents, cluster_seeds = build_workload()
    mirror = mirror_agraph(g)
    lines = [
        "PERF-7  indexed adjacency engine vs pre-refactor traversal "
        f"({g.node_count} nodes, {g.edge_count} edges{', smoke' if _SMOKE else ''})"
    ]
    widths = [20, 14, 14, 10]
    lines.append(format_row(["workload", "indexed (ms)", "baseline (ms)", "speedup"], widths))
    rows = []
    ok = True
    for name, indexed_fn, baseline_fn in _workloads(g, mirror, contents, cluster_seeds):
        indexed_result, baseline_result = indexed_fn(), baseline_fn()
        if name == "path_constraint":
            # Sanity: the two-sweep evaluation never loses a pairwise result.
            assert baseline_result <= indexed_result, "two-sweep eval lost results"
        indexed_samples = time_samples(indexed_fn, repeat=5)
        baseline_samples = time_samples(baseline_fn, repeat=2)
        indexed_time = min(indexed_samples)
        baseline_time = min(baseline_samples)
        factor = speedup(baseline_time, indexed_time)
        ok = ok and factor >= SPEEDUP_FLOOR
        row = {
            "workload": name,
            "indexed_seconds": indexed_time,
            "baseline_seconds": baseline_time,
            "speedup": factor,
        }
        row.update(sample_stats(baseline_samples, prefix="baseline"))
        row.update(sample_stats(indexed_samples, prefix="indexed"))
        rows.append(row)
        lines.append(
            format_row(
                [name, f"{indexed_time * 1e3:.3f}", f"{baseline_time * 1e3:.3f}", f"{factor:.1f}x"],
                widths,
            )
        )
    path = write_results(
        "adjacency_engine",
        rows,
        nodes=g.node_count,
        edges=g.edge_count,
        smoke=_SMOKE,
        speedup_floor=SPEEDUP_FLOOR,
    )
    lines.append(f"results written to {path}")
    if not ok:
        lines.append(f"FAIL: at least one workload is below the {SPEEDUP_FLOOR:.0f}x floor")
    return "\n".join(lines), ok


if __name__ == "__main__":
    text, ok = report()
    print(text)
    raise SystemExit(0 if ok else 1)
