"""PERF-10: observability overhead on the cached-query fast path, with a gate.

The ``repro.obs`` layer (metrics registry + span tracing + slow-op log) is
threaded through every query.  Its design contract is near-zero cost on the
hottest path — a cache-hit query pays one root span and one attribute set,
no counters, no histograms beyond the root-span duration.  This benchmark
enforces that contract: the same warmed cached-query pass through a service
with observability **enabled** vs. **disabled** must differ by less than
:data:`OVERHEAD_GATE` (10%).

Two export-surface assertions ride along so CI fails loudly if either
regresses:

* ``service.metrics()`` must render through
  :func:`repro.obs.render_prometheus` with histogram/counter series present;
* the written ``BENCH_observability.json`` row must carry the
  ``*_p99_seconds`` percentile keys the harness now emits for every bench.

Measurement alternates enabled/disabled rounds (machine drift hits both
sides equally) and compares best-of-rounds; a sub-millisecond path needs
best-of, not means, or scheduler noise alone can breach the gate.  Up to
:data:`MAX_BATCHES` extra sample batches are taken before declaring failure.

``python -m benchmarks.bench_observability`` prints the table, writes
``BENCH_observability.json``, and exits non-zero over the gate.  Set
``BENCH_SMOKE=1`` for the CI-sized run (the gate still applies).
"""

from __future__ import annotations

import os
import random

from benchmarks._harness import format_row, sample_stats, time_samples, write_results
from repro.core.manager import Graphitti
from repro.obs import ObservabilityConfig, render_prometheus
from repro.service import GraphittiService, ServiceConfig
from repro.workloads.service_scenario import READER_QUERIES, seed_service_objects

#: Maximum acceptable enabled-over-disabled slowdown on the cached path.
OVERHEAD_GATE = 0.10

_SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: (annotations in the corpus, cached-query passes per sample).
SCALE = (150, 24) if _SMOKE else (400, 40)

#: Alternating enabled/disabled rounds per batch, and retry batches.
ROUNDS_PER_BATCH = 7
MAX_BATCHES = 4

_KEYWORDS = ("workload", "binding", "cleavage", "regulatory", "conserved")


def build_corpus() -> Graphitti:
    annotation_count, _ = SCALE
    rng = random.Random(20260808)
    manager = Graphitti("bench-obs")
    object_ids = seed_service_objects(manager)
    for index in range(annotation_count):
        object_id = object_ids[index % len(object_ids)]
        start = rng.randrange(0, 900)
        (
            manager.new_annotation(
                f"obs-{index}",
                title=f"obs annotation {index}",
                creator=f"bench-{index % 5}",
                keywords=["workload", rng.choice(_KEYWORDS)],
                body=f"observability benchmark annotation over {object_id}",
            )
            .mark_sequence(object_id, start, start + rng.randrange(10, 120))
            .commit()
        )
    return manager


def _run_queries(service: GraphittiService) -> int:
    total = 0
    for text in READER_QUERIES:
        total += service.query(text).count
    return total


def _check_export_surfaces(service: GraphittiService) -> dict:
    """The metrics endpoint must actually render; returns the snapshot."""
    snapshot = service.metrics()
    assert snapshot.get("enabled"), "enabled service reports observability off"
    assert "span.query" in snapshot.get("histograms", {}), (
        "query spans missing from the metrics registry"
    )
    assert "p99" in snapshot["histograms"]["span.query"], "histogram lacks p99"
    text = render_prometheus(snapshot)
    assert "# TYPE" in text and "repro_span_query" in text.replace(".", "_"), (
        "Prometheus rendering lost the span histograms"
    )
    return snapshot


def measure() -> dict[str, float]:
    """Best-of-rounds cached-pass latency, observability on vs. off."""
    _, passes = SCALE
    manager = build_corpus()
    enabled = GraphittiService(
        manager=manager,
        config=ServiceConfig(observability=ObservabilityConfig(enabled=True)),
    )
    disabled = GraphittiService(
        manager=manager,
        config=ServiceConfig(observability=ObservabilityConfig(enabled=False)),
    )
    baseline_hits = _run_queries(disabled)  # warm both caches once
    assert _run_queries(enabled) == baseline_hits, "observability changed results"
    assert disabled.metrics() == {"enabled": False}, "disabled service leaks metrics"

    def enabled_pass() -> None:
        for _ in range(passes):
            _run_queries(enabled)

    def disabled_pass() -> None:
        for _ in range(passes):
            _run_queries(disabled)

    enabled_samples: list[float] = []
    disabled_samples: list[float] = []
    overhead = float("inf")
    for _ in range(MAX_BATCHES):
        # Alternate sides within the batch so drift hits both equally.
        for _ in range(ROUNDS_PER_BATCH):
            disabled_samples.extend(time_samples(disabled_pass, repeat=1))
            enabled_samples.extend(time_samples(enabled_pass, repeat=1))
        overhead = min(enabled_samples) / min(disabled_samples) - 1.0
        if overhead < OVERHEAD_GATE:
            break

    snapshot = _check_export_surfaces(enabled)
    row = {
        "workload": "cached_query_overhead",
        "baseline_seconds": min(disabled_samples),
        "candidate_seconds": min(enabled_samples),
        "overhead": overhead,
        "overhead_gate": OVERHEAD_GATE,
        "queries_per_pass": passes * len(READER_QUERIES),
        "spans_recorded": snapshot["histograms"]["span.query"]["count"],
    }
    row.update(sample_stats(disabled_samples, prefix="baseline"))
    row.update(sample_stats(enabled_samples, prefix="candidate"))
    return row


def test_cached_query_overhead_under_gate():
    row = measure()
    assert row["overhead"] < OVERHEAD_GATE


def report() -> tuple[str, bool]:
    annotation_count, passes = SCALE
    row = measure()
    ok = row["overhead"] < OVERHEAD_GATE
    widths = [24, 14, 14, 10, 8]
    lines = [
        "PERF-10  observability overhead on the cached-query path "
        f"({annotation_count} annotations, {passes} passes/sample"
        f"{', smoke' if _SMOKE else ''})",
        format_row(["workload", "off (ms)", "on (ms)", "overhead", "gate"], widths),
        format_row(
            [
                row["workload"],
                f"{row['baseline_seconds'] * 1e3:.3f}",
                f"{row['candidate_seconds'] * 1e3:.3f}",
                f"{row['overhead']:+.1%}",
                f"<{OVERHEAD_GATE:.0%}",
            ],
            widths,
        ),
    ]
    path = write_results(
        "observability",
        [row],
        annotations=annotation_count,
        smoke=_SMOKE,
        overhead_gate=OVERHEAD_GATE,
    )
    for key in ("baseline_p99_seconds", "candidate_p99_seconds"):
        assert key in row, f"percentile key {key} missing from the results row"
    lines.append(f"results written to {path}")
    if not ok:
        lines.append(
            f"FAIL: enabled observability costs {row['overhead']:+.1%} on the "
            f"cached-query path (gate <{OVERHEAD_GATE:.0%})"
        )
    return "\n".join(lines), ok


if __name__ == "__main__":
    text, ok = report()
    print(text)
    raise SystemExit(0 if ok else 1)
