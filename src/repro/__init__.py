"""Graphitti: an annotation management system for heterogeneous objects.

A from-scratch Python reproduction of the ICDE 2008 demonstration paper
"Graphitti: An Annotation Management System for Heterogeneous Objects" by
Sandeep Gupta, Christopher Condit and Amarnath Gupta (San Diego Supercomputer
Center).

The public entry point is :class:`repro.core.Graphitti`.  See ``DESIGN.md``
for the system inventory and ``EXPERIMENTS.md`` for the reproduced artifacts.
"""

from repro.core import Annotation, AnnotationContent, DublinCore, Graphitti, Referent
from repro.errors import GraphittiError
from repro.service import GraphittiService, ServiceConfig
from repro.shard import ShardedGraphittiService

__version__ = "1.2.0"

__all__ = [
    "Graphitti",
    "GraphittiService",
    "ShardedGraphittiService",
    "ServiceConfig",
    "Annotation",
    "AnnotationContent",
    "Referent",
    "DublinCore",
    "GraphittiError",
    "__version__",
]
