"""The typed a-graph and its primitive operations.

The a-graph has three node kinds:

* ``CONTENT`` — an annotation content (the XML comment document),
* ``REFERENT`` — a marked substructure of a data object,
* ``ONTOLOGY`` — an ontology term a referent or content points at.

Directed edges connect a content to each of its referents (label
``annotates``) and referents/contents to ontology nodes (label
``refers_to``).  Because the same referent can be annotated by two different
contents, two annotations become "indirectly related" — which is exactly the
structure the paper's queries traverse.

The two primitives are:

* :meth:`AGraph.path` — ``path(node1, node2)``: a path between two nodes,
* :meth:`AGraph.connect` — ``connect(node1, node2, ...)``: a connection
  subgraph intervening a set of nodes.

Traversals expand through the multigraph's zero-copy ``iter_incident``
adjacency index, edge lookup along a reconstructed path uses the pair index,
and component queries are answered by the multigraph's incremental union-find
instead of a per-call BFS.
"""

from __future__ import annotations

import enum
import heapq
from collections import Counter, deque
from typing import Any, Hashable, Iterable

from repro.agraph.connection import ConnectionSubgraph
from repro.agraph.multigraph import Edge, LabeledMultigraph
from repro.errors import AGraphError, UnknownNodeError

#: Edge label: content --annotates--> referent.
ANNOTATES = "annotates"
#: Edge label: content/referent --refers_to--> ontology term.
REFERS_TO = "refers_to"
#: Edge label: referent --same_object--> referent (share a data object).
SAME_OBJECT = "same_object"
#: Edge label: referent --relates--> referent (inter-substructure relation).
RELATES = "relates"


class NodeKind(enum.Enum):
    """The kinds of node in the a-graph."""

    CONTENT = "content"
    REFERENT = "referent"
    ONTOLOGY = "ontology"


class AGraph:
    """The annotation graph: a typed labeled multigraph + primitives.

    The a-graph wraps a :class:`~repro.agraph.multigraph.LabeledMultigraph`
    and adds the node-kind bookkeeping, the two primitive operations, and the
    supporting graph algorithms (BFS/Dijkstra path search, BFS-tree
    connection-subgraph construction, component analysis).
    """

    def __init__(self) -> None:
        self._graph = LabeledMultigraph()

    # -- size / access --------------------------------------------------------

    @property
    def graph(self) -> LabeledMultigraph:
        """The underlying multigraph (read-mostly; prefer the typed methods)."""
        return self._graph

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return self._graph.node_count

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return self._graph.edge_count

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._graph

    # -- typed node/edge construction -----------------------------------------

    def add_content(self, content_id: Hashable, **attributes: Any) -> Hashable:
        """Add (or update) an annotation-content node."""
        self._graph.add_node(content_id, kind=NodeKind.CONTENT.value, **attributes)
        return content_id

    def add_referent(self, referent_id: Hashable, **attributes: Any) -> Hashable:
        """Add (or update) a referent (marked-substructure) node."""
        self._graph.add_node(referent_id, kind=NodeKind.REFERENT.value, **attributes)
        return referent_id

    def add_ontology_node(self, term_id: Hashable, **attributes: Any) -> Hashable:
        """Add (or update) an ontology-term node."""
        self._graph.add_node(term_id, kind=NodeKind.ONTOLOGY.value, **attributes)
        return term_id

    def link_annotation(self, content_id: Hashable, referent_id: Hashable, **attributes: Any) -> Edge:
        """Add the ``content --annotates--> referent`` edge."""
        self._require_kind(content_id, NodeKind.CONTENT)
        self._require_kind(referent_id, NodeKind.REFERENT)
        return self._graph.add_edge(content_id, referent_id, label=ANNOTATES, **attributes)

    def link_ontology(self, source_id: Hashable, term_id: Hashable, **attributes: Any) -> Edge:
        """Add a ``source --refers_to--> ontology`` edge."""
        if term_id not in self._graph or self._graph.node(term_id).kind != NodeKind.ONTOLOGY.value:
            raise AGraphError(f"{term_id!r} is not an ontology node")
        return self._graph.add_edge(source_id, term_id, label=REFERS_TO, **attributes)

    def link_referents(self, left_id: Hashable, right_id: Hashable, label: str = RELATES, **attributes: Any) -> Edge:
        """Add an inter-referent edge (e.g. sub-sequence to sequence)."""
        self._require_kind(left_id, NodeKind.REFERENT)
        self._require_kind(right_id, NodeKind.REFERENT)
        return self._graph.add_edge(left_id, right_id, label=label, **attributes)

    def unlink_annotation(self, content_id: Hashable, referent_id: Hashable) -> int:
        """Remove the ``content --annotates--> referent`` edge(s).

        The update path uses this when an annotation drops a referent: the
        edge goes, the referent node's survival is decided separately (it
        stays while any *other* content still annotates it).
        """
        return self._graph.remove_edges(content_id, referent_id, label=ANNOTATES)

    def unlink_ontology(self, source_id: Hashable, term_id: Hashable) -> int:
        """Remove the ``source --refers_to--> ontology`` edge(s).

        Ontology nodes themselves are never dropped here — they are shared
        vocabulary, and an unreferenced term node is harmless (and cheap).
        """
        return self._graph.remove_edges(source_id, term_id, label=REFERS_TO)

    def _require_kind(self, node_id: Hashable, kind: NodeKind) -> None:
        if node_id not in self._graph:
            raise UnknownNodeError(f"no node {node_id!r} in the a-graph")
        actual = self._graph.node(node_id).kind
        if actual != kind.value:
            raise AGraphError(f"node {node_id!r} has kind {actual!r}, expected {kind.value!r}")

    # -- typed accessors -------------------------------------------------------

    def contents(self) -> list[Hashable]:
        """Ids of every annotation-content node."""
        return [node.node_id for node in self._graph.nodes_of_kind(NodeKind.CONTENT.value)]

    def referents(self) -> list[Hashable]:
        """Ids of every referent node."""
        return [node.node_id for node in self._graph.nodes_of_kind(NodeKind.REFERENT.value)]

    def ontology_nodes(self) -> list[Hashable]:
        """Ids of every ontology node."""
        return [node.node_id for node in self._graph.nodes_of_kind(NodeKind.ONTOLOGY.value)]

    def referents_of(self, content_id: Hashable) -> list[Hashable]:
        """Referents annotated by *content_id*."""
        return self._graph.successors(content_id, label=ANNOTATES)

    def contents_annotating(self, referent_id: Hashable) -> list[Hashable]:
        """Contents that annotate *referent_id*."""
        return self._graph.predecessors(referent_id, label=ANNOTATES)

    def annotation_counts(self, referent_ids: Iterable[Hashable]) -> Counter:
        """For a batch of referents, how many of them each content annotates.

        One indexed ``annotates`` in-edge walk per referent; the counter keys
        are content ids.  Referent ids absent from the graph are skipped, so
        callers can feed store-level hits straight in.
        """
        counts: Counter = Counter()
        graph = self._graph
        for referent_id in referent_ids:
            if referent_id not in graph:
                continue
            for edge in graph.iter_in_edges(referent_id, label=ANNOTATES):
                counts[edge.source] += 1
        return counts

    def related_annotations(self, content_id: Hashable) -> set[Hashable]:
        """Other contents indirectly related to *content_id* through a shared
        referent.  This is the paper's "two annotations become indirectly
        related" relation."""
        related: set[Hashable] = set()
        graph = self._graph
        for edge in graph.iter_out_edges(content_id, label=ANNOTATES):
            for back in graph.iter_in_edges(edge.target, label=ANNOTATES):
                if back.source != content_id:
                    related.add(back.source)
        return related

    def ontology_terms_of(self, node_id: Hashable) -> list[Hashable]:
        """Ontology terms that *node_id* refers to."""
        return self._graph.successors(node_id, label=REFERS_TO)

    # -- primitive: path -------------------------------------------------------

    def path(self, node1: Hashable, node2: Hashable, labels: Iterable[str] | None = None) -> list[Hashable] | None:
        """``path(node1, node2)``: a shortest path between the two nodes.

        Edges are followed ignoring direction (the a-graph's connection
        semantics are symmetric: a content reaches its referents and vice
        versa).  When *labels* is given, only edges with those labels are
        traversed.  Returns the node-id sequence, or ``None`` when no path
        exists.

        The search is a level-synchronous bidirectional BFS over the
        multigraph's neighbor-id index: the smaller frontier expands one full
        level at a time, and the best meeting node of a level yields a
        provably shortest path while visiting a fraction of the nodes a
        one-sided sweep would touch.
        """
        if node1 not in self._graph:
            raise UnknownNodeError(f"no node {node1!r} in the a-graph")
        if node2 not in self._graph:
            raise UnknownNodeError(f"no node {node2!r} in the a-graph")
        if node1 == node2:
            return [node1]
        # The component index refutes most unreachable pairs without a BFS.
        if labels is None and not self._graph.same_component(node1, node2):
            return None
        allowed = tuple(set(labels)) if labels is not None else None
        adjacency = self._graph.undirected_adjacency
        prev_from_1: dict[Hashable, Hashable] = {node1: node1}
        prev_from_2: dict[Hashable, Hashable] = {node2: node2}
        frontier_1: list[Hashable] = [node1]
        frontier_2: list[Hashable] = [node2]
        while frontier_1 and frontier_2:
            if len(frontier_1) <= len(frontier_2):
                frontier, prev_here, prev_other = frontier_1, prev_from_1, prev_from_2
                expanding_from_1 = True
            else:
                frontier, prev_here, prev_other = frontier_2, prev_from_2, prev_from_1
                expanding_from_1 = False
            next_frontier: list[Hashable] = []
            meets: list[Hashable] = []
            for current in frontier:
                buckets = adjacency[current]
                if allowed is None:
                    groups = buckets.values()
                else:
                    groups = [buckets[label] for label in allowed if label in buckets]
                for ids in groups:
                    for neighbor in ids:
                        if neighbor not in prev_here:
                            prev_here[neighbor] = current
                            if neighbor in prev_other:
                                meets.append(neighbor)
                            else:
                                next_frontier.append(neighbor)
            if meets:
                # Every meet closes a path at this level; the one whose chain
                # on the *other* side is shortest closes the shortest path.
                other_root = node2 if expanding_from_1 else node1
                meet = min(
                    meets,
                    key=lambda node: len(self._reconstruct(prev_other, other_root, node)),
                )
                left = self._reconstruct(prev_from_1, node1, meet)
                right = self._reconstruct(prev_from_2, node2, meet)
                right.reverse()
                return left + right[1:]
            if expanding_from_1:
                frontier_1 = next_frontier
            else:
                frontier_2 = next_frontier
        return None

    def weighted_path(
        self,
        node1: Hashable,
        node2: Hashable,
        weight_attribute: str = "weight",
        default_weight: float = 1.0,
    ) -> tuple[list[Hashable], float] | None:
        """Shortest *weighted* path (Dijkstra) between two nodes.

        Returns ``(path, total_cost)`` or ``None``.  Used by the connection
        primitive when edges carry a cost attribute.
        """
        if node1 not in self._graph or node2 not in self._graph:
            raise UnknownNodeError("both endpoints must be nodes in the a-graph")
        if not self._graph.same_component(node1, node2):
            return None
        distances: dict[Hashable, float] = {node1: 0.0}
        previous: dict[Hashable, Hashable] = {node1: node1}
        heap: list[tuple[float, int, Hashable]] = [(0.0, 0, node1)]
        counter = 0
        visited: set[Hashable] = set()
        graph = self._graph
        while heap:
            cost, _, current = heapq.heappop(heap)
            if current in visited:
                continue
            visited.add(current)
            if current == node2:
                return self._reconstruct(previous, node1, node2), cost
            for edge in graph.iter_incident(current):
                neighbor = edge.target if edge.source == current else edge.source
                if neighbor in visited:
                    continue
                step = float(edge.attribute(weight_attribute, default_weight))
                new_cost = cost + step
                if new_cost < distances.get(neighbor, float("inf")):
                    distances[neighbor] = new_cost
                    previous[neighbor] = current
                    counter += 1
                    heapq.heappush(heap, (new_cost, counter, neighbor))
        return None

    def all_paths(
        self,
        node1: Hashable,
        node2: Hashable,
        max_length: int = 6,
    ) -> list[list[Hashable]]:
        """Every simple path between two nodes up to *max_length* edges."""
        if node1 not in self._graph or node2 not in self._graph:
            raise UnknownNodeError("both endpoints must be nodes in the a-graph")
        results: list[list[Hashable]] = []
        graph = self._graph

        def walk(current: Hashable, target: Hashable, visited: list[Hashable]) -> None:
            if len(visited) - 1 > max_length:
                return
            if current == target:
                results.append(list(visited))
                return
            for neighbor in graph.iter_neighbors(current):
                if neighbor not in visited:
                    visited.append(neighbor)
                    walk(neighbor, target, visited)
                    visited.pop()

        walk(node1, node2, [node1])
        return results

    # -- multi-source traversal ------------------------------------------------

    def multi_source_distances(
        self,
        sources: Iterable[Hashable],
        max_depth: int | None = None,
        labels: Iterable[str] | None = None,
    ) -> dict[Hashable, int]:
        """Hop distance from the nearest of *sources* to every reachable node.

        One breadth-first sweep seeded with the whole source set (undirected
        edge semantics, optional label filter, optional depth bound).  This is
        the building block that lets the query executor evaluate a path
        constraint with two BFS passes instead of one BFS per
        (source, target) pair.  Unknown source ids are ignored.
        """
        allowed = tuple(set(labels)) if labels is not None else None
        graph = self._graph
        distances: dict[Hashable, int] = {}
        frontier: list[Hashable] = []
        for source in sources:
            if source in graph and source not in distances:
                distances[source] = 0
                frontier.append(source)
        depth = 0
        adjacency = graph.undirected_adjacency
        while frontier and (max_depth is None or depth < max_depth):
            depth += 1
            next_frontier: list[Hashable] = []
            for current in frontier:
                buckets = adjacency[current]
                if allowed is None:
                    groups = buckets.values()
                else:
                    groups = [buckets[label] for label in allowed if label in buckets]
                for ids in groups:
                    for neighbor in ids:
                        if neighbor not in distances:
                            distances[neighbor] = depth
                            next_frontier.append(neighbor)
            frontier = next_frontier
        return distances

    def bfs_tree(
        self,
        root: Hashable,
        stop_nodes: Iterable[Hashable] | None = None,
        labels: Iterable[str] | None = None,
    ) -> dict[Hashable, Hashable]:
        """Predecessor map of an undirected BFS from *root*.

        The returned mapping sends every reached node to its BFS parent (the
        root maps to itself); :meth:`path_from_tree` reconstructs the shortest
        root-to-node path.  When *stop_nodes* is given the search ends early
        once every stop node has been reached — ``connect`` uses this to grow
        one tree that serves all terminals instead of one BFS per terminal.
        """
        if root not in self._graph:
            raise UnknownNodeError(f"no node {root!r} in the a-graph")
        pending = set(stop_nodes) if stop_nodes is not None else None
        if pending is not None:
            pending.discard(root)
        allowed = tuple(set(labels)) if labels is not None else None
        adjacency = self._graph.undirected_adjacency
        previous: dict[Hashable, Hashable] = {root: root}
        queue: deque[Hashable] = deque([root])
        while queue:
            if pending is not None and not pending:
                break
            current = queue.popleft()
            buckets = adjacency[current]
            if allowed is None:
                groups = buckets.values()
            else:
                groups = [buckets[label] for label in allowed if label in buckets]
            for ids in groups:
                for neighbor in ids:
                    if neighbor not in previous:
                        previous[neighbor] = current
                        if pending is not None:
                            pending.discard(neighbor)
                        queue.append(neighbor)
        return previous

    def path_from_tree(
        self, tree: dict[Hashable, Hashable], root: Hashable, node: Hashable
    ) -> list[Hashable] | None:
        """The root-to-*node* path recorded in a :meth:`bfs_tree` result."""
        if node not in tree:
            return None
        return self._reconstruct(tree, root, node)

    # -- primitive: connect ----------------------------------------------------

    def connect(self, *node_ids: Hashable, hub: Hashable | None = None) -> ConnectionSubgraph:
        """``connect(node1, node2, ...)``: a connection subgraph.

        Builds a subgraph that intervenes the requested terminals by joining
        them through shortest paths.  When *hub* is given, every terminal is
        connected to the hub; otherwise the first terminal acts as the hub and
        every other terminal is linked to it (a star of shortest paths, which
        is the connection structure the paper's query results render as a
        result page).  A single BFS tree grown from the anchor serves every
        terminal.
        """
        terminals = tuple(node_ids)
        if len(terminals) < 2:
            raise AGraphError("connect() requires at least two nodes")
        for terminal in terminals:
            if terminal not in self._graph:
                raise UnknownNodeError(f"no node {terminal!r} in the a-graph")
        if hub is not None and hub not in self._graph:
            raise UnknownNodeError(f"no hub node {hub!r} in the a-graph")
        anchor = hub if hub is not None else terminals[0]
        others = [terminal for terminal in terminals if terminal != anchor]
        result = ConnectionSubgraph(terminals=terminals, nodes={anchor})
        tree = self.bfs_tree(anchor, stop_nodes=others)
        for terminal in others:
            path = self.path_from_tree(tree, anchor, terminal)
            if path is None:
                continue
            edges = self._edges_along(path)
            result.add_path(path, edges)
        return result

    def connection_exists(self, *node_ids: Hashable) -> bool:
        """True when every requested node lies in one connected component."""
        terminals = tuple(node_ids)
        if len(terminals) < 2:
            raise AGraphError("connect() requires at least two nodes")
        first = terminals[0]
        return all(self._graph.same_component(first, terminal) for terminal in terminals[1:])

    # -- component analysis -----------------------------------------------------

    def connected_component(self, node_id: Hashable) -> set[Hashable]:
        """All nodes reachable from *node_id* ignoring edge direction.

        Answered from the multigraph's incremental component index; no
        per-call BFS.
        """
        if node_id not in self._graph:
            raise UnknownNodeError(f"no node {node_id!r} in the a-graph")
        return self._graph.component_members(node_id)

    def connected_components(self) -> list[set[Hashable]]:
        """Partition the a-graph into connected components."""
        return self._graph.components()

    def component_root(self, node_id: Hashable) -> Hashable:
        """Canonical representative of *node_id*'s component (O(alpha))."""
        return self._graph.component_root(node_id)

    # -- internals --------------------------------------------------------------

    def _incident_edges(self, node_id: Hashable, allowed: Iterable[str] | None) -> Iterable[Edge]:
        """Incident edges of *node_id*, optionally label-filtered (zero-copy)."""
        return self._graph.iter_incident(node_id, allowed)

    def _edges_along(self, path: list[Hashable]) -> list[Edge]:
        find_edge = self._graph.find_edge
        edges: list[Edge] = []
        for source, target in zip(path, path[1:]):
            edge = find_edge(source, target)
            if edge is not None:
                edges.append(edge)
        return edges

    def _find_edge(self, source: Hashable, target: Hashable) -> Edge | None:
        return self._graph.find_edge(source, target)

    @staticmethod
    def _reconstruct(previous: dict[Hashable, Hashable], start: Hashable, end: Hashable) -> list[Hashable]:
        path = [end]
        while path[-1] != start:
            path.append(previous[path[-1]])
        path.reverse()
        return path

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation of the whole a-graph."""
        return self._graph.to_dict()
