"""The typed a-graph and its primitive operations.

The a-graph has three node kinds:

* ``CONTENT`` — an annotation content (the XML comment document),
* ``REFERENT`` — a marked substructure of a data object,
* ``ONTOLOGY`` — an ontology term a referent or content points at.

Directed edges connect a content to each of its referents (label
``annotates``) and referents/contents to ontology nodes (label
``refers_to``).  Because the same referent can be annotated by two different
contents, two annotations become "indirectly related" — which is exactly the
structure the paper's queries traverse.

The two primitives are:

* :meth:`AGraph.path` — ``path(node1, node2)``: a path between two nodes,
* :meth:`AGraph.connect` — ``connect(node1, node2, ...)``: a connection
  subgraph intervening a set of nodes.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from typing import Any, Hashable, Iterable

from repro.agraph.connection import ConnectionSubgraph
from repro.agraph.multigraph import Edge, LabeledMultigraph
from repro.errors import AGraphError, UnknownNodeError

#: Edge label: content --annotates--> referent.
ANNOTATES = "annotates"
#: Edge label: content/referent --refers_to--> ontology term.
REFERS_TO = "refers_to"
#: Edge label: referent --same_object--> referent (share a data object).
SAME_OBJECT = "same_object"
#: Edge label: referent --relates--> referent (inter-substructure relation).
RELATES = "relates"


class NodeKind(enum.Enum):
    """The kinds of node in the a-graph."""

    CONTENT = "content"
    REFERENT = "referent"
    ONTOLOGY = "ontology"


class AGraph:
    """The annotation graph: a typed labeled multigraph + primitives.

    The a-graph wraps a :class:`~repro.agraph.multigraph.LabeledMultigraph`
    and adds the node-kind bookkeeping, the two primitive operations, and the
    supporting graph algorithms (BFS/Dijkstra path search, bidirectional
    connection-subgraph construction, component analysis).
    """

    def __init__(self) -> None:
        self._graph = LabeledMultigraph()

    # -- size / access --------------------------------------------------------

    @property
    def graph(self) -> LabeledMultigraph:
        """The underlying multigraph (read-mostly; prefer the typed methods)."""
        return self._graph

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return self._graph.node_count

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return self._graph.edge_count

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._graph

    # -- typed node/edge construction -----------------------------------------

    def add_content(self, content_id: Hashable, **attributes: Any) -> Hashable:
        """Add (or update) an annotation-content node."""
        self._graph.add_node(content_id, kind=NodeKind.CONTENT.value, **attributes)
        return content_id

    def add_referent(self, referent_id: Hashable, **attributes: Any) -> Hashable:
        """Add (or update) a referent (marked-substructure) node."""
        self._graph.add_node(referent_id, kind=NodeKind.REFERENT.value, **attributes)
        return referent_id

    def add_ontology_node(self, term_id: Hashable, **attributes: Any) -> Hashable:
        """Add (or update) an ontology-term node."""
        self._graph.add_node(term_id, kind=NodeKind.ONTOLOGY.value, **attributes)
        return term_id

    def link_annotation(self, content_id: Hashable, referent_id: Hashable, **attributes: Any) -> Edge:
        """Add the ``content --annotates--> referent`` edge."""
        self._require_kind(content_id, NodeKind.CONTENT)
        self._require_kind(referent_id, NodeKind.REFERENT)
        return self._graph.add_edge(content_id, referent_id, label=ANNOTATES, **attributes)

    def link_ontology(self, source_id: Hashable, term_id: Hashable, **attributes: Any) -> Edge:
        """Add a ``source --refers_to--> ontology`` edge."""
        if term_id not in self._graph or self._graph.node(term_id).kind != NodeKind.ONTOLOGY.value:
            raise AGraphError(f"{term_id!r} is not an ontology node")
        return self._graph.add_edge(source_id, term_id, label=REFERS_TO, **attributes)

    def link_referents(self, left_id: Hashable, right_id: Hashable, label: str = RELATES, **attributes: Any) -> Edge:
        """Add an inter-referent edge (e.g. sub-sequence to sequence)."""
        self._require_kind(left_id, NodeKind.REFERENT)
        self._require_kind(right_id, NodeKind.REFERENT)
        return self._graph.add_edge(left_id, right_id, label=label, **attributes)

    def _require_kind(self, node_id: Hashable, kind: NodeKind) -> None:
        if node_id not in self._graph:
            raise UnknownNodeError(f"no node {node_id!r} in the a-graph")
        actual = self._graph.node(node_id).kind
        if actual != kind.value:
            raise AGraphError(f"node {node_id!r} has kind {actual!r}, expected {kind.value!r}")

    # -- typed accessors -------------------------------------------------------

    def contents(self) -> list[Hashable]:
        """Ids of every annotation-content node."""
        return [node.node_id for node in self._graph.nodes_of_kind(NodeKind.CONTENT.value)]

    def referents(self) -> list[Hashable]:
        """Ids of every referent node."""
        return [node.node_id for node in self._graph.nodes_of_kind(NodeKind.REFERENT.value)]

    def ontology_nodes(self) -> list[Hashable]:
        """Ids of every ontology node."""
        return [node.node_id for node in self._graph.nodes_of_kind(NodeKind.ONTOLOGY.value)]

    def referents_of(self, content_id: Hashable) -> list[Hashable]:
        """Referents annotated by *content_id*."""
        return self._graph.successors(content_id, label=ANNOTATES)

    def contents_annotating(self, referent_id: Hashable) -> list[Hashable]:
        """Contents that annotate *referent_id*."""
        return self._graph.predecessors(referent_id, label=ANNOTATES)

    def related_annotations(self, content_id: Hashable) -> set[Hashable]:
        """Other contents indirectly related to *content_id* through a shared
        referent.  This is the paper's "two annotations become indirectly
        related" relation."""
        related: set[Hashable] = set()
        for referent_id in self.referents_of(content_id):
            for other in self.contents_annotating(referent_id):
                if other != content_id:
                    related.add(other)
        return related

    def ontology_terms_of(self, node_id: Hashable) -> list[Hashable]:
        """Ontology terms that *node_id* refers to."""
        return self._graph.successors(node_id, label=REFERS_TO)

    # -- primitive: path -------------------------------------------------------

    def path(self, node1: Hashable, node2: Hashable, labels: Iterable[str] | None = None) -> list[Hashable] | None:
        """``path(node1, node2)``: a shortest path between the two nodes.

        Edges are followed ignoring direction (the a-graph's connection
        semantics are symmetric: a content reaches its referents and vice
        versa).  When *labels* is given, only edges with those labels are
        traversed.  Returns the node-id sequence, or ``None`` when no path
        exists.
        """
        if node1 not in self._graph:
            raise UnknownNodeError(f"no node {node1!r} in the a-graph")
        if node2 not in self._graph:
            raise UnknownNodeError(f"no node {node2!r} in the a-graph")
        if node1 == node2:
            return [node1]
        allowed = set(labels) if labels is not None else None
        previous: dict[Hashable, Hashable] = {node1: node1}
        queue: deque[Hashable] = deque([node1])
        while queue:
            current = queue.popleft()
            for edge in self._incident_edges(current, allowed):
                neighbor = edge.target if edge.source == current else edge.source
                if neighbor not in previous:
                    previous[neighbor] = current
                    if neighbor == node2:
                        return self._reconstruct(previous, node1, node2)
                    queue.append(neighbor)
        return None

    def weighted_path(
        self,
        node1: Hashable,
        node2: Hashable,
        weight_attribute: str = "weight",
        default_weight: float = 1.0,
    ) -> tuple[list[Hashable], float] | None:
        """Shortest *weighted* path (Dijkstra) between two nodes.

        Returns ``(path, total_cost)`` or ``None``.  Used by the connection
        primitive when edges carry a cost attribute.
        """
        if node1 not in self._graph or node2 not in self._graph:
            raise UnknownNodeError("both endpoints must be nodes in the a-graph")
        distances: dict[Hashable, float] = {node1: 0.0}
        previous: dict[Hashable, Hashable] = {node1: node1}
        heap: list[tuple[float, int, Hashable]] = [(0.0, 0, node1)]
        counter = 0
        visited: set[Hashable] = set()
        while heap:
            cost, _, current = heapq.heappop(heap)
            if current in visited:
                continue
            visited.add(current)
            if current == node2:
                return self._reconstruct(previous, node1, node2), cost
            for edge in self._incident_edges(current, None):
                neighbor = edge.target if edge.source == current else edge.source
                if neighbor in visited:
                    continue
                step = float(edge.attribute(weight_attribute, default_weight))
                new_cost = cost + step
                if new_cost < distances.get(neighbor, float("inf")):
                    distances[neighbor] = new_cost
                    previous[neighbor] = current
                    counter += 1
                    heapq.heappush(heap, (new_cost, counter, neighbor))
        return None

    def all_paths(
        self,
        node1: Hashable,
        node2: Hashable,
        max_length: int = 6,
    ) -> list[list[Hashable]]:
        """Every simple path between two nodes up to *max_length* edges."""
        if node1 not in self._graph or node2 not in self._graph:
            raise UnknownNodeError("both endpoints must be nodes in the a-graph")
        results: list[list[Hashable]] = []

        def walk(current: Hashable, target: Hashable, visited: list[Hashable]) -> None:
            if len(visited) - 1 > max_length:
                return
            if current == target:
                results.append(list(visited))
                return
            for edge in self._incident_edges(current, None):
                neighbor = edge.target if edge.source == current else edge.source
                if neighbor not in visited:
                    visited.append(neighbor)
                    walk(neighbor, target, visited)
                    visited.pop()

        walk(node1, node2, [node1])
        return results

    # -- primitive: connect ----------------------------------------------------

    def connect(self, *node_ids: Hashable, hub: Hashable | None = None) -> ConnectionSubgraph:
        """``connect(node1, node2, ...)``: a connection subgraph.

        Builds a subgraph that intervenes the requested terminals by joining
        them through shortest paths.  When *hub* is given, every terminal is
        connected to the hub; otherwise the first terminal acts as the hub and
        every other terminal is linked to it (a star of shortest paths, which
        is the connection structure the paper's query results render as a
        result page).
        """
        terminals = tuple(node_ids)
        if len(terminals) < 2:
            raise AGraphError("connect() requires at least two nodes")
        for terminal in terminals:
            if terminal not in self._graph:
                raise UnknownNodeError(f"no node {terminal!r} in the a-graph")
        anchor = hub if hub is not None else terminals[0]
        others = [terminal for terminal in terminals if terminal != anchor]
        result = ConnectionSubgraph(terminals=terminals, nodes={anchor})
        for terminal in others:
            path = self.path(anchor, terminal)
            if path is None:
                continue
            edges = self._edges_along(path)
            result.add_path(path, edges)
        return result

    def connection_exists(self, *node_ids: Hashable) -> bool:
        """True when every requested node lies in one connected component."""
        return self.connect(*node_ids).is_connected

    # -- component analysis -----------------------------------------------------

    def connected_component(self, node_id: Hashable) -> set[Hashable]:
        """All nodes reachable from *node_id* ignoring edge direction."""
        if node_id not in self._graph:
            raise UnknownNodeError(f"no node {node_id!r} in the a-graph")
        seen = {node_id}
        queue = deque([node_id])
        while queue:
            current = queue.popleft()
            for neighbor in self._graph.neighbors_undirected(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return seen

    def connected_components(self) -> list[set[Hashable]]:
        """Partition the a-graph into connected components."""
        seen: set[Hashable] = set()
        components: list[set[Hashable]] = []
        for node in self._graph.node_ids():
            if node not in seen:
                component = self.connected_component(node)
                seen |= component
                components.append(component)
        return components

    # -- internals --------------------------------------------------------------

    def _incident_edges(self, node_id: Hashable, allowed: set[str] | None) -> list[Edge]:
        edges = self._graph.out_edges(node_id) + self._graph.in_edges(node_id)
        if allowed is None:
            return edges
        return [edge for edge in edges if edge.label in allowed]

    def _edges_along(self, path: list[Hashable]) -> list[Edge]:
        edges: list[Edge] = []
        for source, target in zip(path, path[1:]):
            edge = self._find_edge(source, target)
            if edge is not None:
                edges.append(edge)
        return edges

    def _find_edge(self, source: Hashable, target: Hashable) -> Edge | None:
        for edge in self._graph.out_edges(source):
            if edge.target == target:
                return edge
        for edge in self._graph.in_edges(source):
            if edge.source == target:
                return edge
        return None

    @staticmethod
    def _reconstruct(previous: dict[Hashable, Hashable], start: Hashable, end: Hashable) -> list[Hashable]:
        path = [end]
        while path[-1] != start:
            path.append(previous[path[-1]])
        path.reverse()
        return path

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation of the whole a-graph."""
        return self._graph.to_dict()
