"""The a-graph: Graphitti's labeled join index.

"A collection of annotation contents and referents would induce a graph,
where there are two types of nodes, the contents and the referents, and a
directed edge connects a content to a referent. ... We call this the a-graph;
it is the connection structure that associates the substructures of all other
types of data. ... It is implemented in a directed labeled multigraph data
structure we have developed, and serves as a general-purpose labeled join
index.  The two primitive operations on the a-graph are path(node1, node2)
... and connect(node1, node2, ...)."

This package implements the multigraph (:mod:`repro.agraph.multigraph`), the
typed a-graph layer on top of it (:mod:`repro.agraph.agraph`), and the two
primitives plus their supporting graph algorithms.
"""

from repro.agraph.multigraph import Edge, LabeledMultigraph, Node
from repro.agraph.agraph import AGraph, NodeKind
from repro.agraph.connection import ConnectionSubgraph
from repro.agraph.metrics import AGraphMetrics

__all__ = [
    "LabeledMultigraph",
    "Node",
    "Edge",
    "AGraph",
    "NodeKind",
    "ConnectionSubgraph",
    "AGraphMetrics",
]
