"""Directed labeled multigraph with indexed adjacency.

The substrate of the a-graph: a directed graph that allows multiple, labeled
edges between the same pair of nodes (hence *multi*-graph).  Nodes carry a
kind and arbitrary attributes; edges carry a label and attributes.

Adjacency is indexed three ways so the query hot path never scans:

* **per-node / per-label adjacency** — ``_out[node][label] -> [Edge]`` (and
  the mirror ``_in``), so a label-filtered expansion touches only the edges
  with that label instead of filtering the full incident list;
* **pair index** — ``(source, target) -> [Edge]``, so path reconstruction
  finds the edge between two adjacent nodes in O(1) instead of scanning the
  source's incident lists;
* **kind index** — ``kind -> ordered set of node ids``, so
  :meth:`nodes_of_kind` stops scanning the whole node table.

On top of the adjacency indexes the graph maintains an **incremental
connected-component index** (union-find with size-balanced merging and path
compression, treating edges as undirected).  ``add_node``/``add_edge`` update
it in O(alpha); ``remove_node`` only marks it stale, and the next component
query rebuilds it in one pass.  Component queries therefore cost O(1) after
the (amortised) maintenance instead of a BFS per call.

The ``iter_*`` accessors yield edges straight out of the index without
copying; the list-returning accessors (``out_edges`` et al.) are kept for
compatibility and defensive-copy semantics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator

from repro.errors import AGraphError, UnknownNodeError
from repro.analysis.annotations import requires_write_lock


@dataclass
class Node:
    """A graph node: an id, a kind tag, and free-form attributes."""

    node_id: Hashable
    kind: str = "node"
    attributes: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Edge:
    """A directed labeled edge between two nodes."""

    source: Hashable
    target: Hashable
    label: str = ""
    attributes: tuple[tuple[str, Any], ...] = ()

    def attribute(self, name: str, default: Any = None) -> Any:
        """Value of attribute *name*, or *default*."""
        for key, value in self.attributes:
            if key == name:
                return value
        return default

    def reversed(self) -> "Edge":
        """The same edge with source/target swapped (for reverse walks)."""
        return Edge(self.target, self.source, self.label, self.attributes)


class LabeledMultigraph:
    """A directed labeled multigraph with indexed forward/backward adjacency."""

    def __init__(self) -> None:
        self._nodes: dict[Hashable, Node] = {}
        # node -> label -> edges (insertion order preserved within a label).
        self._out: dict[Hashable, dict[str, list[Edge]]] = {}
        self._in: dict[Hashable, dict[str, list[Edge]]] = {}
        # node -> label -> neighbor ids, both directions merged.  This is the
        # BFS expansion index: traversal touches plain id lists, never Edge
        # objects (parallel edges appear once per edge; self-loops once).
        self._undirected: dict[Hashable, dict[str, list[Hashable]]] = {}
        # (source, target) -> edges, for O(1) edge lookup along a path.
        self._pairs: dict[tuple[Hashable, Hashable], list[Edge]] = {}
        # kind -> ordered set of node ids (dict used as an ordered set).
        self._kinds: dict[str, dict[Hashable, None]] = {}
        self._label_counts: Counter[str] = Counter()
        self._out_degree: dict[Hashable, int] = {}
        self._in_degree: dict[Hashable, int] = {}
        self._edge_count = 0
        # Union-find component index (undirected view of the edges).
        self._uf_parent: dict[Hashable, Hashable] = {}
        self._uf_size: dict[Hashable, int] = {}
        self._uf_members: dict[Hashable, set[Hashable]] = {}
        self._components_stale = False

    # -- size ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._nodes

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return self._edge_count

    # -- nodes ----------------------------------------------------------------

    def add_node(self, node_id: Hashable, kind: str = "node", **attributes: Any) -> Node:
        """Add (or update) a node and return it."""
        node = self._nodes.get(node_id)
        if node is None:
            node = Node(node_id, kind, dict(attributes))
            self._nodes[node_id] = node
            self._out[node_id] = {}
            self._in[node_id] = {}
            self._undirected[node_id] = {}
            self._out_degree[node_id] = 0
            self._in_degree[node_id] = 0
            self._kinds.setdefault(kind, {})[node_id] = None
            if not self._components_stale:
                self._uf_parent[node_id] = node_id
                self._uf_size[node_id] = 1
                self._uf_members[node_id] = {node_id}
        else:
            if node.kind != kind:
                old_bucket = self._kinds.get(node.kind)
                if old_bucket is not None:
                    old_bucket.pop(node_id, None)
                    if not old_bucket:
                        del self._kinds[node.kind]
                self._kinds.setdefault(kind, {})[node_id] = None
                node.kind = kind
            node.attributes.update(attributes)
        return node

    def node(self, node_id: Hashable) -> Node:
        """The node with id *node_id* (raises when absent)."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(f"no node {node_id!r} in the graph") from None

    def has_node(self, node_id: Hashable) -> bool:
        """True when the node exists."""
        return node_id in self._nodes

    def nodes(self) -> Iterator[Node]:
        """Iterate over every node."""
        return iter(self._nodes.values())

    def node_ids(self) -> tuple[Hashable, ...]:
        """All node ids."""
        return tuple(self._nodes)

    def nodes_of_kind(self, kind: str) -> list[Node]:
        """All nodes whose kind equals *kind* (answered from the kind index)."""
        bucket = self._kinds.get(kind)
        if not bucket:
            return []
        return [self._nodes[node_id] for node_id in bucket]

    def kind_counts(self) -> dict[str, int]:
        """Map of kind -> number of nodes with that kind."""
        return {kind: len(bucket) for kind, bucket in self._kinds.items()}

    def remove_node(self, node_id: Hashable) -> None:
        """Remove a node and every incident edge."""
        if node_id not in self._nodes:
            raise UnknownNodeError(f"no node {node_id!r} in the graph")
        # Detach outgoing edges from their targets' in-indexes first; a
        # self-loop is fully handled here and never appears in the in-pass.
        for label, edges in self._out[node_id].items():
            for edge in edges:
                self._unindex_edge(edge)
                if edge.target != node_id:
                    bucket = self._in[edge.target]
                    bucket[label] = [item for item in bucket[label] if item is not edge]
                    if not bucket[label]:
                        del bucket[label]
                    self._in_degree[edge.target] -= 1
                    self._drop_neighbor(edge.target, label, node_id)
        for label, edges in self._in[node_id].items():
            for edge in edges:
                if edge.source == node_id:
                    continue  # self-loop, already unindexed above
                self._unindex_edge(edge)
                bucket = self._out[edge.source]
                bucket[label] = [item for item in bucket[label] if item is not edge]
                if not bucket[label]:
                    del bucket[label]
                self._out_degree[edge.source] -= 1
                self._drop_neighbor(edge.source, label, node_id)
        node = self._nodes[node_id]
        kind_bucket = self._kinds.get(node.kind)
        if kind_bucket is not None:
            kind_bucket.pop(node_id, None)
            if not kind_bucket:
                del self._kinds[node.kind]
        del self._out[node_id]
        del self._in[node_id]
        del self._undirected[node_id]
        del self._out_degree[node_id]
        del self._in_degree[node_id]
        del self._nodes[node_id]
        # Splitting a union-find set is not incremental; rebuild lazily.
        self._components_stale = True

    def _drop_neighbor(self, node_id: Hashable, label: str, neighbor: Hashable) -> None:
        bucket = self._undirected[node_id]
        bucket[label].remove(neighbor)
        if not bucket[label]:
            del bucket[label]

    def _unindex_edge(self, edge: Edge) -> None:
        key = (edge.source, edge.target)
        remaining = [item for item in self._pairs[key] if item is not edge]
        if remaining:
            self._pairs[key] = remaining
        else:
            del self._pairs[key]
        self._label_counts[edge.label] -= 1
        if not self._label_counts[edge.label]:
            del self._label_counts[edge.label]
        self._edge_count -= 1

    def remove_edges(self, source: Hashable, target: Hashable, label: str | None = None) -> int:
        """Remove every directed ``source -> target`` edge (optionally only
        those carrying *label*); returns how many edges were removed.

        This is the surgical counterpart of :meth:`remove_node` for the
        mutation-lifecycle paths that rewire one relationship (an annotation
        dropping a referent it no longer marks, a content unlinking an
        ontology term) without touching either endpoint node.  Removing an
        edge can split a component, so the union-find index is marked stale
        exactly like :meth:`remove_node` does.
        """
        if source not in self._nodes:
            raise UnknownNodeError(f"no node {source!r} in the graph")
        if target not in self._nodes:
            raise UnknownNodeError(f"no node {target!r} in the graph")
        doomed = [
            edge
            for edge in self._pairs.get((source, target), ())
            if label is None or edge.label == label
        ]
        for edge in doomed:
            self._unindex_edge(edge)
            out_bucket = self._out[source]
            out_bucket[edge.label] = [item for item in out_bucket[edge.label] if item is not edge]
            if not out_bucket[edge.label]:
                del out_bucket[edge.label]
            in_bucket = self._in[target]
            in_bucket[edge.label] = [item for item in in_bucket[edge.label] if item is not edge]
            if not in_bucket[edge.label]:
                del in_bucket[edge.label]
            self._out_degree[source] -= 1
            self._in_degree[target] -= 1
            self._drop_neighbor(source, edge.label, target)
            if source != target:
                self._drop_neighbor(target, edge.label, source)
        if doomed:
            # Splitting a union-find set is not incremental; rebuild lazily.
            self._components_stale = True
        return len(doomed)

    # -- edges ----------------------------------------------------------------

    def add_edge(
        self,
        source: Hashable,
        target: Hashable,
        label: str = "",
        **attributes: Any,
    ) -> Edge:
        """Add a directed labeled edge (endpoints must already exist)."""
        if source not in self._nodes:
            raise UnknownNodeError(f"edge source {source!r} is not a node")
        if target not in self._nodes:
            raise UnknownNodeError(f"edge target {target!r} is not a node")
        edge = Edge(source, target, label, tuple(sorted(attributes.items())))
        self._out[source].setdefault(label, []).append(edge)
        self._in[target].setdefault(label, []).append(edge)
        self._undirected[source].setdefault(label, []).append(target)
        if source != target:
            self._undirected[target].setdefault(label, []).append(source)
        self._pairs.setdefault((source, target), []).append(edge)
        self._label_counts[label] += 1
        self._out_degree[source] += 1
        self._in_degree[target] += 1
        self._edge_count += 1
        self._union(source, target)
        return edge

    def out_edges(self, node_id: Hashable) -> list[Edge]:
        """Outgoing edges of *node_id* (a fresh list; see ``iter_out_edges``)."""
        return list(self.iter_out_edges(node_id))

    def in_edges(self, node_id: Hashable) -> list[Edge]:
        """Incoming edges of *node_id* (a fresh list; see ``iter_in_edges``)."""
        return list(self.iter_in_edges(node_id))

    def iter_out_edges(self, node_id: Hashable, label: str | None = None) -> Iterator[Edge]:
        """Yield outgoing edges without copying, optionally one label only."""
        try:
            buckets = self._out[node_id]
        except KeyError:
            raise UnknownNodeError(f"no node {node_id!r} in the graph") from None
        if label is not None:
            yield from buckets.get(label, ())
            return
        for edges in buckets.values():
            yield from edges

    def iter_in_edges(self, node_id: Hashable, label: str | None = None) -> Iterator[Edge]:
        """Yield incoming edges without copying, optionally one label only."""
        try:
            buckets = self._in[node_id]
        except KeyError:
            raise UnknownNodeError(f"no node {node_id!r} in the graph") from None
        if label is not None:
            yield from buckets.get(label, ())
            return
        for edges in buckets.values():
            yield from edges

    def iter_incident(
        self, node_id: Hashable, labels: Iterable[str] | None = None
    ) -> Iterator[Edge]:
        """Yield every incident edge (out then in), optionally label-filtered.

        This is the zero-copy expansion step the BFS primitives use: no list
        concatenation, and a label filter hits only the matching buckets.
        """
        try:
            out_buckets = self._out[node_id]
        except KeyError:
            raise UnknownNodeError(f"no node {node_id!r} in the graph") from None
        in_buckets = self._in[node_id]
        if labels is None:
            for edges in out_buckets.values():
                yield from edges
            for edges in in_buckets.values():
                yield from edges
            return
        for label in labels:
            yield from out_buckets.get(label, ())
            yield from in_buckets.get(label, ())

    def edges_between(self, source: Hashable, target: Hashable) -> list[Edge]:
        """Every directed edge from *source* to *target* (pair index lookup)."""
        return list(self._pairs.get((source, target), ()))

    def find_edge(self, source: Hashable, target: Hashable) -> Edge | None:
        """One edge joining the two nodes in either direction, or ``None``."""
        edges = self._pairs.get((source, target))
        if edges:
            return edges[0]
        edges = self._pairs.get((target, source))
        if edges:
            return edges[0]
        return None

    def has_edge(self, source: Hashable, target: Hashable) -> bool:
        """True when a directed ``source -> target`` edge exists."""
        return (source, target) in self._pairs

    def edges(self) -> Iterator[Edge]:
        """Iterate over every edge."""
        for buckets in self._out.values():
            for edges in buckets.values():
                yield from edges

    def successors(self, node_id: Hashable, label: str | None = None) -> list[Hashable]:
        """Targets of outgoing edges (optionally filtered by label)."""
        return [edge.target for edge in self.iter_out_edges(node_id, label)]

    def predecessors(self, node_id: Hashable, label: str | None = None) -> list[Hashable]:
        """Sources of incoming edges (optionally filtered by label)."""
        return [edge.source for edge in self.iter_in_edges(node_id, label)]

    def neighbors_undirected(self, node_id: Hashable) -> set[Hashable]:
        """All nodes connected to *node_id* ignoring edge direction."""
        buckets = self.neighbor_buckets(node_id)
        neighbors: set[Hashable] = set()
        for ids in buckets.values():
            neighbors.update(ids)
        return neighbors

    @property
    def undirected_adjacency(self) -> dict[Hashable, dict[str, list[Hashable]]]:
        """The whole BFS expansion index: node -> label -> neighbor ids.

        Exposed for tight traversal loops that cannot afford a method call
        per expanded node.  The mapping is live graph structure and MUST NOT
        be mutated by callers.
        """
        return self._undirected

    def neighbor_buckets(self, node_id: Hashable) -> dict[str, list[Hashable]]:
        """Undirected neighbor ids of *node_id*, bucketed by edge label.

        This is the raw BFS expansion index: the returned mapping is the
        graph's own structure (label -> neighbor-id list, one entry per
        incident edge) and MUST NOT be mutated by callers.  Traversals iterate
        these plain id lists instead of materializing Edge objects.
        """
        try:
            return self._undirected[node_id]
        except KeyError:
            raise UnknownNodeError(f"no node {node_id!r} in the graph") from None

    def iter_neighbors(
        self, node_id: Hashable, labels: Iterable[str] | None = None
    ) -> Iterator[Hashable]:
        """Yield undirected neighbor ids (one per incident edge), optionally
        restricted to the given labels."""
        buckets = self.neighbor_buckets(node_id)
        if labels is None:
            for ids in buckets.values():
                yield from ids
            return
        for label in labels:
            yield from buckets.get(label, ())

    def degree(self, node_id: Hashable) -> int:
        """Total degree (in + out) of *node_id* (O(1) from the degree index)."""
        if node_id not in self._nodes:
            raise UnknownNodeError(f"no node {node_id!r} in the graph")
        return self._out_degree[node_id] + self._in_degree[node_id]

    def out_degree(self, node_id: Hashable) -> int:
        """Number of outgoing edges of *node_id*."""
        if node_id not in self._nodes:
            raise UnknownNodeError(f"no node {node_id!r} in the graph")
        return self._out_degree[node_id]

    def in_degree(self, node_id: Hashable) -> int:
        """Number of incoming edges of *node_id*."""
        if node_id not in self._nodes:
            raise UnknownNodeError(f"no node {node_id!r} in the graph")
        return self._in_degree[node_id]

    def labels(self) -> set[str]:
        """Distinct edge labels present in the graph."""
        return set(self._label_counts)

    # -- connected components (incremental union-find) -------------------------

    def _find(self, node_id: Hashable) -> Hashable:
        parent = self._uf_parent
        root = node_id
        while parent[root] != root:
            root = parent[root]
        while parent[node_id] != root:  # path compression
            parent[node_id], node_id = root, parent[node_id]
        return root

    def _union(self, a: Hashable, b: Hashable) -> None:
        if self._components_stale:
            return  # the pending rebuild re-derives everything from the edges
        root_a, root_b = self._find(a), self._find(b)
        if root_a == root_b:
            return
        if self._uf_size[root_a] < self._uf_size[root_b]:
            root_a, root_b = root_b, root_a
        self._uf_parent[root_b] = root_a
        self._uf_size[root_a] += self._uf_size[root_b]
        self._uf_members[root_a] |= self._uf_members.pop(root_b)

    def _rebuild_components(self) -> None:
        self._uf_parent = {node_id: node_id for node_id in self._nodes}
        self._uf_size = {node_id: 1 for node_id in self._nodes}
        self._uf_members = {node_id: {node_id} for node_id in self._nodes}
        self._components_stale = False
        for source, target in self._pairs:
            self._union(source, target)

    def _ensure_components(self) -> None:
        if self._components_stale:
            self._rebuild_components()

    @property
    def components_stale(self) -> bool:
        """True when a ``remove_node`` left the component index pending rebuild."""
        return self._components_stale

    @requires_write_lock
    def rebuild_components(self) -> bool:
        """Rebuild the component index now if (and only if) it is stale.

        ``remove_node`` marks the union-find index stale and defers the
        rebuild to the next component query.  Callers with a natural quiesce
        point (the serving layer's checkpoint, a bulk ingest boundary) invoke
        this explicitly so the first query after recovery or a delete never
        pays a surprise O(V + E) rebuild.  Returns True when a rebuild ran.
        """
        if not self._components_stale:
            return False
        self._rebuild_components()
        return True

    def component_root(self, node_id: Hashable) -> Hashable:
        """Canonical representative of the component containing *node_id*.

        Two nodes are in the same component iff their roots are equal; the
        root itself is an arbitrary member and may change across mutations.
        """
        if node_id not in self._nodes:
            raise UnknownNodeError(f"no node {node_id!r} in the graph")
        self._ensure_components()
        return self._find(node_id)

    def component_members(self, node_id: Hashable) -> set[Hashable]:
        """The full connected component containing *node_id* (a fresh set)."""
        return set(self._uf_members[self.component_root(node_id)])

    def component_size(self, node_id: Hashable) -> int:
        """Size of the component containing *node_id*."""
        return self._uf_size[self.component_root(node_id)]

    def same_component(self, a: Hashable, b: Hashable) -> bool:
        """True when both nodes lie in one connected component."""
        return self.component_root(a) == self.component_root(b)

    @property
    def component_count(self) -> int:
        """Number of connected components."""
        self._ensure_components()
        return len(self._uf_members)

    def components(self) -> list[set[Hashable]]:
        """Every connected component as a fresh set of node ids."""
        self._ensure_components()
        return [set(members) for members in self._uf_members.values()]

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "nodes": [
                {"id": node.node_id, "kind": node.kind, "attributes": node.attributes}
                for node in self._nodes.values()
            ],
            "edges": [
                {
                    "source": edge.source,
                    "target": edge.target,
                    "label": edge.label,
                    "attributes": dict(edge.attributes),
                }
                for edge in self.edges()
            ],
        }
