"""Directed labeled multigraph.

The substrate of the a-graph: a directed graph that allows multiple, labeled
edges between the same pair of nodes (hence *multi*-graph).  Nodes carry a
kind and arbitrary attributes; edges carry a label and attributes.  Adjacency
is stored both forward and backward so traversals in either direction are
efficient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator

from repro.errors import AGraphError, UnknownNodeError


@dataclass
class Node:
    """A graph node: an id, a kind tag, and free-form attributes."""

    node_id: Hashable
    kind: str = "node"
    attributes: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Edge:
    """A directed labeled edge between two nodes."""

    source: Hashable
    target: Hashable
    label: str = ""
    attributes: tuple[tuple[str, Any], ...] = ()

    def attribute(self, name: str, default: Any = None) -> Any:
        """Value of attribute *name*, or *default*."""
        for key, value in self.attributes:
            if key == name:
                return value
        return default

    def reversed(self) -> "Edge":
        """The same edge with source/target swapped (for reverse walks)."""
        return Edge(self.target, self.source, self.label, self.attributes)


class LabeledMultigraph:
    """A directed labeled multigraph with forward and backward adjacency."""

    def __init__(self) -> None:
        self._nodes: dict[Hashable, Node] = {}
        self._out: dict[Hashable, list[Edge]] = {}
        self._in: dict[Hashable, list[Edge]] = {}
        self._edge_count = 0

    # -- size ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._nodes

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return self._edge_count

    # -- nodes ----------------------------------------------------------------

    def add_node(self, node_id: Hashable, kind: str = "node", **attributes: Any) -> Node:
        """Add (or update) a node and return it."""
        node = self._nodes.get(node_id)
        if node is None:
            node = Node(node_id, kind, dict(attributes))
            self._nodes[node_id] = node
            self._out[node_id] = []
            self._in[node_id] = []
        else:
            node.kind = kind
            node.attributes.update(attributes)
        return node

    def node(self, node_id: Hashable) -> Node:
        """The node with id *node_id* (raises when absent)."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(f"no node {node_id!r} in the graph") from None

    def has_node(self, node_id: Hashable) -> bool:
        """True when the node exists."""
        return node_id in self._nodes

    def nodes(self) -> Iterator[Node]:
        """Iterate over every node."""
        return iter(self._nodes.values())

    def node_ids(self) -> tuple[Hashable, ...]:
        """All node ids."""
        return tuple(self._nodes)

    def nodes_of_kind(self, kind: str) -> list[Node]:
        """All nodes whose kind equals *kind*."""
        return [node for node in self._nodes.values() if node.kind == kind]

    def remove_node(self, node_id: Hashable) -> None:
        """Remove a node and every incident edge."""
        if node_id not in self._nodes:
            raise UnknownNodeError(f"no node {node_id!r} in the graph")
        for edge in list(self._out[node_id]):
            self._in[edge.target] = [item for item in self._in[edge.target] if item is not edge]
            self._edge_count -= 1
        for edge in list(self._in[node_id]):
            self._out[edge.source] = [item for item in self._out[edge.source] if item is not edge]
            self._edge_count -= 1
        del self._out[node_id]
        del self._in[node_id]
        del self._nodes[node_id]

    # -- edges ----------------------------------------------------------------

    def add_edge(
        self,
        source: Hashable,
        target: Hashable,
        label: str = "",
        **attributes: Any,
    ) -> Edge:
        """Add a directed labeled edge (endpoints must already exist)."""
        if source not in self._nodes:
            raise UnknownNodeError(f"edge source {source!r} is not a node")
        if target not in self._nodes:
            raise UnknownNodeError(f"edge target {target!r} is not a node")
        edge = Edge(source, target, label, tuple(sorted(attributes.items())))
        self._out[source].append(edge)
        self._in[target].append(edge)
        self._edge_count += 1
        return edge

    def out_edges(self, node_id: Hashable) -> list[Edge]:
        """Outgoing edges of *node_id*."""
        if node_id not in self._nodes:
            raise UnknownNodeError(f"no node {node_id!r} in the graph")
        return list(self._out[node_id])

    def in_edges(self, node_id: Hashable) -> list[Edge]:
        """Incoming edges of *node_id*."""
        if node_id not in self._nodes:
            raise UnknownNodeError(f"no node {node_id!r} in the graph")
        return list(self._in[node_id])

    def edges(self) -> Iterator[Edge]:
        """Iterate over every edge."""
        for edges in self._out.values():
            yield from edges

    def successors(self, node_id: Hashable, label: str | None = None) -> list[Hashable]:
        """Targets of outgoing edges (optionally filtered by label)."""
        return [
            edge.target
            for edge in self.out_edges(node_id)
            if label is None or edge.label == label
        ]

    def predecessors(self, node_id: Hashable, label: str | None = None) -> list[Hashable]:
        """Sources of incoming edges (optionally filtered by label)."""
        return [
            edge.source
            for edge in self.in_edges(node_id)
            if label is None or edge.label == label
        ]

    def neighbors_undirected(self, node_id: Hashable) -> set[Hashable]:
        """All nodes connected to *node_id* ignoring edge direction."""
        neighbors = {edge.target for edge in self.out_edges(node_id)}
        neighbors |= {edge.source for edge in self.in_edges(node_id)}
        return neighbors

    def degree(self, node_id: Hashable) -> int:
        """Total degree (in + out) of *node_id*."""
        return len(self.out_edges(node_id)) + len(self.in_edges(node_id))

    def labels(self) -> set[str]:
        """Distinct edge labels present in the graph."""
        return {edge.label for edge in self.edges()}

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "nodes": [
                {"id": node.node_id, "kind": node.kind, "attributes": node.attributes}
                for node in self._nodes.values()
            ],
            "edges": [
                {
                    "source": edge.source,
                    "target": edge.target,
                    "label": edge.label,
                    "attributes": dict(edge.attributes),
                }
                for edge in self.edges()
            ],
        }
