"""Connection subgraphs returned by the a-graph ``connect`` primitive.

``connect(node1, node2, ...)`` "returns a connection subgraph intervening the
given nodes".  A :class:`ConnectionSubgraph` is the result value: the set of
nodes and edges that together connect the requested terminals, plus the paths
that justify the connection.  It is a self-contained value object so callers
(examples, the query processor, tests) can inspect, count, and serialize a
result without touching the full a-graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.agraph.multigraph import Edge


@dataclass
class ConnectionSubgraph:
    """A subgraph connecting a set of terminal nodes.

    Parameters
    ----------
    terminals:
        The nodes the connection was requested between.
    nodes:
        Every node in the connection subgraph (terminals + intervening nodes).
    edges:
        Every edge in the connection subgraph.
    paths:
        The concrete paths (node-id sequences) that justify the connection.
    """

    terminals: tuple[Hashable, ...]
    nodes: set[Hashable] = field(default_factory=set)
    edges: list[Edge] = field(default_factory=list)
    paths: list[list[Hashable]] = field(default_factory=list)
    #: Set mirror of ``edges`` so membership checks stay O(1) as subgraphs
    #: grow (``Edge`` is a frozen, hashable dataclass).
    _edge_set: set[Edge] = field(default_factory=set, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._edge_set = set(self.edges)

    @property
    def is_connected(self) -> bool:
        """True when every terminal appears in the subgraph's node set."""
        return all(terminal in self.nodes for terminal in self.terminals)

    @property
    def node_count(self) -> int:
        """Number of nodes in the connection subgraph."""
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        """Number of edges in the connection subgraph."""
        return len(self.edges)

    @property
    def intervening_nodes(self) -> set[Hashable]:
        """Nodes that are not terminals (the 'intervening' nodes)."""
        return self.nodes - set(self.terminals)

    def add_path(self, path: list[Hashable], edges: list[Edge]) -> None:
        """Fold a path and its edges into the connection subgraph."""
        self.paths.append(list(path))
        self.nodes.update(path)
        for edge in edges:
            if edge not in self._edge_set:
                self._edge_set.add(edge)
                self.edges.append(edge)

    def merge(self, other: "ConnectionSubgraph") -> None:
        """Merge another connection subgraph into this one."""
        self.nodes.update(other.nodes)
        for edge in other.edges:
            if edge not in self._edge_set:
                self._edge_set.add(edge)
                self.edges.append(edge)
        self.paths.extend(other.paths)

    #: Optional per-type witness metadata attached by the query executor when
    #: it collates "type-extended connection subgraphs" (see the paper's query
    #: processor).  Maps a data-type name to the referent ids of that type in
    #: this subgraph, plus any computed intersections of co-located referents.
    type_extensions: dict = field(default_factory=dict)

    def attach_type_extension(self, data_type: str, referent_ids: list, intersections: list) -> None:
        """Record the referents of *data_type* and their intersections."""
        self.type_extensions[data_type] = {
            "referents": list(referent_ids),
            "intersections": list(intersections),
        }

    def types_present(self) -> list[str]:
        """Data-type names whose referents appear in this subgraph."""
        return sorted(self.type_extensions)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "terminals": list(self.terminals),
            "nodes": sorted(self.nodes, key=repr),
            "edges": [
                {"source": edge.source, "target": edge.target, "label": edge.label}
                for edge in self.edges
            ],
            "paths": [list(path) for path in self.paths],
            "connected": self.is_connected,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ConnectionSubgraph terminals={len(self.terminals)} "
            f"nodes={self.node_count} edges={self.edge_count} connected={self.is_connected}>"
        )
