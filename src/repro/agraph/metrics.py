"""Analytics over the a-graph.

The a-graph is the structure a Graphitti user explores; these metrics quantify
its shape — degree distribution, the ontology terms that act as hubs, pairwise
annotation similarity by shared referents, and the articulation-point
annotations whose removal would fragment the graph.  They power the admin /
study-report views and the "browse through further related results" step of
the paper's query tab.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable

from repro.agraph.agraph import AGraph, NodeKind


class AGraphMetrics:
    """Structural analytics over one :class:`~repro.agraph.agraph.AGraph`."""

    def __init__(self, agraph: AGraph):
        self.agraph = agraph

    def degree_distribution(self) -> dict[int, int]:
        """Map of degree -> number of nodes with that degree."""
        distribution: Counter[int] = Counter()
        graph = self.agraph.graph
        for node_id in graph.node_ids():
            distribution[graph.degree(node_id)] += 1
        return dict(sorted(distribution.items()))

    def average_degree(self) -> float:
        """Mean node degree (0 for an empty graph)."""
        if self.agraph.node_count == 0:
            return 0.0
        total = sum(self.agraph.graph.degree(node_id) for node_id in self.agraph.graph.node_ids())
        return total / self.agraph.node_count

    def ontology_hubs(self, top: int = 5) -> list[tuple[Hashable, int]]:
        """Ontology terms ranked by how many nodes point at them."""
        graph = self.agraph.graph
        ranked = [
            (term_id, graph.in_degree(term_id))
            for term_id in self.agraph.ontology_nodes()
        ]
        ranked.sort(key=lambda item: (-item[1], str(item[0])))
        return ranked[:top]

    def annotation_similarity(self, a: Hashable, b: Hashable) -> float:
        """Jaccard similarity of two annotations by their shared referents."""
        refs_a = set(self.agraph.referents_of(a))
        refs_b = set(self.agraph.referents_of(b))
        if not refs_a and not refs_b:
            return 0.0
        union = refs_a | refs_b
        return len(refs_a & refs_b) / len(union)

    def most_similar(self, annotation_id: Hashable, top: int = 3) -> list[tuple[Hashable, float]]:
        """Annotations most similar to *annotation_id* by shared referents."""
        scores = []
        for other in self.agraph.contents():
            if other == annotation_id:
                continue
            score = self.annotation_similarity(annotation_id, other)
            if score > 0:
                scores.append((other, score))
        scores.sort(key=lambda item: (-item[1], str(item[0])))
        return scores[:top]

    def referent_sharing(self) -> dict[Hashable, int]:
        """For each referent shared by >1 annotation, how many annotations use it."""
        shared = {}
        for referent_id in self.agraph.referents():
            count = len(self.agraph.contents_annotating(referent_id))
            if count > 1:
                shared[referent_id] = count
        return shared

    def component_sizes(self) -> list[int]:
        """Sizes of the connected components, largest first."""
        return sorted((len(component) for component in self.agraph.connected_components()), reverse=True)

    def articulation_annotations(self) -> list[Hashable]:
        """Annotation (content) nodes whose removal increases the component count.

        These are the annotations that "hold the graph together" — removing one
        would disconnect parts of the exploration graph.
        """
        baseline = len(self.agraph.connected_components())
        articulation: list[Hashable] = []
        for content_id in self.agraph.contents():
            if self._removal_increases_components(content_id, baseline):
                articulation.append(content_id)
        return sorted(articulation, key=str)

    def _removal_increases_components(self, node_id: Hashable, baseline: int) -> int:
        graph = self.agraph.graph
        # Work on an induced view: BFS over all nodes except node_id.
        remaining = set(graph.node_ids())
        remaining.discard(node_id)
        seen: set[Hashable] = set()
        components = 0
        for start in remaining:
            if start in seen:
                continue
            components += 1
            stack = [start]
            seen.add(start)
            while stack:
                current = stack.pop()
                for neighbor in graph.neighbors_undirected(current):
                    if neighbor != node_id and neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
        # Account for the removed node's own component contribution.
        return components > baseline
