"""Additional ontology reasoning built on the OntoQuest operation set.

OntoQuest exposes ontologies as graphs; beyond the instance-retrieval
operations the paper lists, common ontology reasoning over such a graph
includes lowest-common-ancestor, information-content-based semantic
similarity, and shortest relation paths between terms.  These are provided
here as a reasoning layer the query processor and examples can use to rank or
relate ontology terms.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Hashable

from repro.errors import OntologyError, UnknownTermError
from repro.ontology.model import IS_A, PART_OF, Ontology


class OntologyReasoner:
    """Reasoning helpers over one ontology."""

    DEFAULT_HIERARCHY = (IS_A, PART_OF)

    def __init__(self, ontology: Ontology):
        self.ontology = ontology

    def lowest_common_ancestors(self, term_a: str, term_b: str, predicates=DEFAULT_HIERARCHY) -> set[str]:
        """The most-specific shared ancestors of two terms.

        An ancestor is "lowest" when none of its own descendants is also a
        shared ancestor.  Returns the empty set when the terms share no
        ancestor (disjoint hierarchies).
        """
        predicates = tuple(predicates)
        anc_a = self.ontology.ancestors(term_a, predicates) | {term_a}
        anc_b = self.ontology.ancestors(term_b, predicates) | {term_b}
        shared = anc_a & anc_b
        if not shared:
            return set()
        lowest: set[str] = set()
        for candidate in shared:
            descendants = self.ontology.descendants(candidate, predicates)
            if not (descendants & shared):
                lowest.add(candidate)
        return lowest

    def depth(self, term: str, predicates=DEFAULT_HIERARCHY) -> int:
        """Longest path from *term* up to a root (0 for a root)."""
        return self.ontology.depth(term, predicates)

    def wu_palmer_similarity(self, term_a: str, term_b: str, predicates=DEFAULT_HIERARCHY) -> float:
        """Wu-Palmer semantic similarity in ``[0, 1]``.

        ``2 * depth(LCA) / (depth(a) + depth(b) + 2 * depth(LCA))`` using the
        deepest common ancestor.  Identical terms score 1.0; terms in disjoint
        hierarchies score 0.0.
        """
        if term_a == term_b:
            return 1.0
        lcas = self.lowest_common_ancestors(term_a, term_b, predicates)
        if not lcas:
            return 0.0
        lca_depth = max(self.depth(lca, predicates) for lca in lcas)
        depth_a = self.depth(term_a, predicates)
        depth_b = self.depth(term_b, predicates)
        denominator = depth_a + depth_b
        if denominator == 0:
            return 1.0 if lca_depth == 0 and term_a == term_b else 0.0
        return (2.0 * lca_depth + 1e-9) / (denominator + 2.0 * lca_depth + 1e-9)

    def information_content(self, term: str, predicates=DEFAULT_HIERARCHY) -> float:
        """Corpus-free information content: ``-log(|subtree| / |concepts|)``.

        Deeper, more-specific concepts (smaller subtrees) carry more
        information.  A leaf concept has the maximum IC for the ontology.
        """
        concepts = len(self.ontology.concepts())
        if concepts == 0:
            return 0.0
        subtree = len(self.ontology.descendants(term, tuple(predicates))) + 1
        return -math.log(subtree / concepts)

    def relation_path(self, term_a: str, term_b: str) -> list[str] | None:
        """Shortest undirected path of terms between two terms (any relation).

        Returns the term-id sequence, or ``None`` when unconnected.
        """
        if term_a not in self.ontology:
            raise UnknownTermError(f"no term {term_a!r}")
        if term_b not in self.ontology:
            raise UnknownTermError(f"no term {term_b!r}")
        if term_a == term_b:
            return [term_a]
        previous: dict[str, str] = {term_a: term_a}
        queue: deque[str] = deque([term_a])
        while queue:
            current = queue.popleft()
            neighbors = set()
            for edge in self.ontology.relations_from(current):
                neighbors.add(edge.object)
            for edge in self.ontology.relations_to(current):
                neighbors.add(edge.subject)
            for neighbor in neighbors:
                if neighbor not in previous:
                    previous[neighbor] = current
                    if neighbor == term_b:
                        return self._reconstruct(previous, term_a, term_b)
                    queue.append(neighbor)
        return None

    def distance(self, term_a: str, term_b: str) -> int | None:
        """Number of edges on the shortest relation path (None when unconnected)."""
        path = self.relation_path(term_a, term_b)
        return None if path is None else len(path) - 1

    def most_specific(self, terms, predicates=DEFAULT_HIERARCHY) -> list[str]:
        """Filter *terms* to those that are not ancestors of any other term."""
        term_set = set(terms)
        predicates = tuple(predicates)
        result = []
        for term in term_set:
            descendants = self.ontology.descendants(term, predicates)
            if not (descendants & term_set):
                result.append(term)
        return sorted(result)

    @staticmethod
    def _reconstruct(previous: dict, start: Hashable, end: Hashable) -> list[str]:
        path = [end]
        while path[-1] != start:
            path.append(previous[path[-1]])
        path.reverse()
        return path
