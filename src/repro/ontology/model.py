"""Ontology graph model.

An ontology is a directed labeled graph: nodes are *terms* (concepts or
instances), edges are *relations* drawn from a per-ontology relation
vocabulary ("domain-specific quantified binary relationships between term
pairs").  Classic relation names (``is_a``, ``part_of``, ``instance_of``) are
pre-registered, and arbitrary additional relation types can be declared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import OntologyError, UnknownRelationError, UnknownTermError

#: Relation name connecting an instance to its concept.
INSTANCE_OF = "instance_of"
#: Subclass relation between concepts.
IS_A = "is_a"
#: Mereological relation between concepts.
PART_OF = "part_of"

_DEFAULT_RELATIONS = (IS_A, PART_OF, INSTANCE_OF)


@dataclass(frozen=True)
class Term:
    """One ontology term (a concept or an instance).

    Parameters
    ----------
    term_id:
        Stable identifier, e.g. ``"UBERON:0002037"`` or ``"brain:dcn"``.
    name:
        Human-readable name, e.g. ``"Deep Cerebellar nuclei"``.
    is_instance:
        True for instance terms (individuals), False for concepts (classes).
    synonyms:
        Alternative names matched by name lookups.
    metadata:
        Free-form extra attributes (definition, xrefs, ...).
    """

    term_id: str
    name: str
    is_instance: bool = False
    synonyms: tuple[str, ...] = ()
    metadata: dict[str, Any] = field(default_factory=dict, compare=False)

    def matches_name(self, text: str) -> bool:
        """Case-insensitive match against the name or any synonym."""
        needle = text.strip().lower()
        if needle == self.name.strip().lower():
            return True
        return any(needle == synonym.strip().lower() for synonym in self.synonyms)


@dataclass(frozen=True)
class Relation:
    """One directed labeled edge: ``subject --predicate--> object``."""

    subject: str
    predicate: str
    object: str
    quantifier: str | None = None

    def reversed(self) -> "Relation":
        """The same edge with subject and object swapped (for inverse walks)."""
        return Relation(self.object, self.predicate, self.subject, self.quantifier)


class Ontology:
    """A named ontology graph with typed relations.

    Edges are stored in adjacency maps keyed by predicate so that operations
    restricted to a relation set (CmRI, SubTree(X, R)) never touch edges of
    other types.
    """

    def __init__(self, name: str, relation_types: Iterable[str] = ()):
        self.name = name
        self._terms: dict[str, Term] = {}
        self._relation_types: set[str] = set(_DEFAULT_RELATIONS)
        self._relation_types.update(relation_types)
        # predicate -> subject -> set of objects
        self._forward: dict[str, dict[str, set[str]]] = {}
        # predicate -> object -> set of subjects
        self._backward: dict[str, dict[str, set[str]]] = {}
        self._edge_count = 0

    # -- terms -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term_id: str) -> bool:
        return term_id in self._terms

    def __iter__(self) -> Iterator[Term]:
        return iter(self._terms.values())

    @property
    def term_count(self) -> int:
        """Number of terms."""
        return len(self._terms)

    @property
    def edge_count(self) -> int:
        """Number of relation edges."""
        return self._edge_count

    @property
    def relation_types(self) -> tuple[str, ...]:
        """Declared relation type names."""
        return tuple(sorted(self._relation_types))

    def add_term(self, term: Term) -> Term:
        """Add a term; re-adding an identical term is a no-op."""
        existing = self._terms.get(term.term_id)
        if existing is not None:
            if existing == term:
                return existing
            raise OntologyError(f"term {term.term_id!r} already exists with different content")
        self._terms[term.term_id] = term
        return term

    def add_concept(self, term_id: str, name: str, synonyms: Iterable[str] = (), **metadata: Any) -> Term:
        """Convenience: add a concept term."""
        return self.add_term(Term(term_id, name, is_instance=False, synonyms=tuple(synonyms), metadata=metadata))

    def add_instance(self, term_id: str, name: str, concept_id: str | None = None, **metadata: Any) -> Term:
        """Convenience: add an instance term, optionally linked to its concept."""
        term = self.add_term(Term(term_id, name, is_instance=True, metadata=metadata))
        if concept_id is not None:
            self.add_relation(term_id, INSTANCE_OF, concept_id)
        return term

    def term(self, term_id: str) -> Term:
        """The term with id *term_id* (raises when unknown)."""
        try:
            return self._terms[term_id]
        except KeyError:
            raise UnknownTermError(f"ontology {self.name!r} has no term {term_id!r}") from None

    def find_by_name(self, text: str) -> list[Term]:
        """Terms whose name or synonyms match *text* (case-insensitive)."""
        return [term for term in self._terms.values() if term.matches_name(text)]

    def concepts(self) -> list[Term]:
        """All concept (class) terms."""
        return [term for term in self._terms.values() if not term.is_instance]

    def instances(self) -> list[Term]:
        """All instance terms."""
        return [term for term in self._terms.values() if term.is_instance]

    # -- relations ---------------------------------------------------------------------

    def declare_relation_type(self, predicate: str) -> None:
        """Declare a new relation type name."""
        if not predicate:
            raise OntologyError("relation type name must be non-empty")
        self._relation_types.add(predicate)

    def _check_relation_type(self, predicate: str) -> None:
        if predicate not in self._relation_types:
            raise UnknownRelationError(
                f"ontology {self.name!r} has no relation type {predicate!r}; "
                f"declare it with declare_relation_type()"
            )

    def add_relation(self, subject: str, predicate: str, object_: str, quantifier: str | None = None) -> Relation:
        """Add a directed edge ``subject --predicate--> object``."""
        self._check_relation_type(predicate)
        if subject not in self._terms:
            raise UnknownTermError(f"ontology {self.name!r} has no term {subject!r}")
        if object_ not in self._terms:
            raise UnknownTermError(f"ontology {self.name!r} has no term {object_!r}")
        forward = self._forward.setdefault(predicate, {}).setdefault(subject, set())
        if object_ not in forward:
            forward.add(object_)
            self._backward.setdefault(predicate, {}).setdefault(object_, set()).add(subject)
            self._edge_count += 1
        return Relation(subject, predicate, object_, quantifier)

    def has_relation(self, subject: str, predicate: str, object_: str) -> bool:
        """True when the edge exists."""
        return object_ in self._forward.get(predicate, {}).get(subject, set())

    def objects(self, subject: str, predicate: str) -> set[str]:
        """Direct objects of ``subject --predicate-->``."""
        return set(self._forward.get(predicate, {}).get(subject, set()))

    def subjects(self, object_: str, predicate: str) -> set[str]:
        """Direct subjects of ``--predicate--> object``."""
        return set(self._backward.get(predicate, {}).get(object_, set()))

    def relations_from(self, subject: str) -> list[Relation]:
        """Every outgoing edge of *subject*."""
        edges = []
        for predicate, adjacency in self._forward.items():
            for object_ in adjacency.get(subject, ()):
                edges.append(Relation(subject, predicate, object_))
        return edges

    def relations_to(self, object_: str) -> list[Relation]:
        """Every incoming edge of *object_*."""
        edges = []
        for predicate, adjacency in self._backward.items():
            for subject in adjacency.get(object_, ()):
                edges.append(Relation(subject, predicate, object_))
        return edges

    def all_relations(self) -> Iterator[Relation]:
        """Iterate every edge in the ontology."""
        for predicate, adjacency in self._forward.items():
            for subject, objects in adjacency.items():
                for object_ in objects:
                    yield Relation(subject, predicate, object_)

    # -- hierarchy helpers -------------------------------------------------------------

    def parents(self, term_id: str, predicates: Iterable[str] = (IS_A, PART_OF)) -> set[str]:
        """Terms reachable by one hop along the given hierarchical predicates."""
        self.term(term_id)
        result: set[str] = set()
        for predicate in predicates:
            result.update(self.objects(term_id, predicate))
        return result

    def children(self, term_id: str, predicates: Iterable[str] = (IS_A, PART_OF)) -> set[str]:
        """Terms whose one-hop hierarchical edges point at *term_id*."""
        self.term(term_id)
        result: set[str] = set()
        for predicate in predicates:
            result.update(self.subjects(term_id, predicate))
        return result

    def ancestors(self, term_id: str, predicates: Iterable[str] = (IS_A, PART_OF)) -> set[str]:
        """Transitive closure of :meth:`parents`."""
        predicates = tuple(predicates)
        seen: set[str] = set()
        frontier = [term_id]
        while frontier:
            current = frontier.pop()
            for parent in self.parents(current, predicates):
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        return seen

    def descendants(self, term_id: str, predicates: Iterable[str] = (IS_A, PART_OF)) -> set[str]:
        """Transitive closure of :meth:`children`."""
        predicates = tuple(predicates)
        seen: set[str] = set()
        frontier = [term_id]
        while frontier:
            current = frontier.pop()
            for child in self.children(current, predicates):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return seen

    def roots(self, predicates: Iterable[str] = (IS_A, PART_OF)) -> list[str]:
        """Concept terms with no outgoing hierarchical edges."""
        predicates = tuple(predicates)
        return [
            term.term_id
            for term in self.concepts()
            if not any(self.objects(term.term_id, predicate) for predicate in predicates)
        ]

    def depth(self, term_id: str, predicates: Iterable[str] = (IS_A, PART_OF)) -> int:
        """Longest hierarchical path from *term_id* up to a root."""
        predicates = tuple(predicates)
        best = 0
        frontier = [(term_id, 0)]
        seen = {term_id: 0}
        while frontier:
            current, distance = frontier.pop()
            parents = self.parents(current, predicates)
            if not parents:
                best = max(best, distance)
            for parent in parents:
                if seen.get(parent, -1) < distance + 1:
                    seen[parent] = distance + 1
                    frontier.append((parent, distance + 1))
        return best

    # -- serialization ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation of the whole ontology."""
        return {
            "name": self.name,
            "relation_types": sorted(self._relation_types),
            "terms": [
                {
                    "term_id": term.term_id,
                    "name": term.name,
                    "is_instance": term.is_instance,
                    "synonyms": list(term.synonyms),
                    "metadata": dict(term.metadata),
                }
                for term in self._terms.values()
            ],
            "relations": [
                {"subject": edge.subject, "predicate": edge.predicate, "object": edge.object}
                for edge in self.all_relations()
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Ontology":
        """Reconstruct from :meth:`to_dict` output."""
        ontology = cls(payload["name"], relation_types=payload.get("relation_types", ()))
        for item in payload.get("terms", []):
            ontology.add_term(
                Term(
                    term_id=item["term_id"],
                    name=item["name"],
                    is_instance=item.get("is_instance", False),
                    synonyms=tuple(item.get("synonyms", ())),
                    metadata=item.get("metadata", {}),
                )
            )
        for item in payload.get("relations", []):
            ontology.add_relation(item["subject"], item["predicate"], item["object"])
        return ontology
