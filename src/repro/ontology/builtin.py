"""Small built-in ontologies used by examples, tests and benchmarks.

These reproduce exactly the ontology terms the paper's example queries name:

* a **brain-region** ontology containing "Deep Cerebellar nuclei" (intro
  query) under a cerebellum/brain hierarchy,
* a **protein** ontology containing TP53 ("protein.TP53", intro query) and
  alpha-synuclein (Fig. 3),
* an **influenza** ontology of viral proteins and host species for the Avian
  Influenza study.

Each builder returns a fully populated :class:`~repro.ontology.model.Ontology`.
"""

from __future__ import annotations

from repro.ontology.model import INSTANCE_OF, IS_A, PART_OF, Ontology


def build_brain_region_ontology() -> Ontology:
    """A compact neuroanatomy ontology (brain -> ... -> Deep Cerebellar nuclei)."""
    ontology = Ontology("brain-regions", relation_types=(IS_A, PART_OF))
    ontology.add_concept("brain:brain", "Brain")
    ontology.add_concept("brain:hindbrain", "Hindbrain")
    ontology.add_concept("brain:cerebellum", "Cerebellum")
    ontology.add_concept("brain:cerebellar_cortex", "Cerebellar cortex")
    ontology.add_concept("brain:dcn", "Deep Cerebellar nuclei", synonyms=("DCN", "deep cerebellar nucleus"))
    ontology.add_concept("brain:dentate", "Dentate nucleus")
    ontology.add_concept("brain:interposed", "Interposed nucleus")
    ontology.add_concept("brain:fastigial", "Fastigial nucleus")
    ontology.add_concept("brain:forebrain", "Forebrain")
    ontology.add_concept("brain:cortex", "Cerebral cortex")
    ontology.add_concept("brain:basal_ganglia", "Basal ganglia")
    ontology.add_concept("brain:substantia_nigra", "Substantia nigra")

    ontology.add_relation("brain:hindbrain", PART_OF, "brain:brain")
    ontology.add_relation("brain:forebrain", PART_OF, "brain:brain")
    ontology.add_relation("brain:cerebellum", PART_OF, "brain:hindbrain")
    ontology.add_relation("brain:cerebellar_cortex", PART_OF, "brain:cerebellum")
    ontology.add_relation("brain:dcn", PART_OF, "brain:cerebellum")
    ontology.add_relation("brain:dentate", IS_A, "brain:dcn")
    ontology.add_relation("brain:interposed", IS_A, "brain:dcn")
    ontology.add_relation("brain:fastigial", IS_A, "brain:dcn")
    ontology.add_relation("brain:cortex", PART_OF, "brain:forebrain")
    ontology.add_relation("brain:basal_ganglia", PART_OF, "brain:forebrain")
    ontology.add_relation("brain:substantia_nigra", PART_OF, "brain:basal_ganglia")
    return ontology


def build_protein_ontology() -> Ontology:
    """A small protein ontology including TP53 and alpha-synuclein."""
    ontology = Ontology("proteins", relation_types=(IS_A, PART_OF, INSTANCE_OF))
    ontology.add_concept("protein:protein", "Protein")
    ontology.add_concept("protein:enzyme", "Enzyme")
    ontology.add_concept("protein:protease", "Protease", synonyms=("peptidase",))
    ontology.add_concept("protein:kinase", "Kinase")
    ontology.add_concept("protein:tf", "Transcription factor")
    ontology.add_concept("protein:tumor_suppressor", "Tumor suppressor")
    ontology.add_concept("protein:synuclein", "Synuclein")
    ontology.add_concept("protein:structural", "Structural protein")

    ontology.add_relation("protein:enzyme", IS_A, "protein:protein")
    ontology.add_relation("protein:protease", IS_A, "protein:enzyme")
    ontology.add_relation("protein:kinase", IS_A, "protein:enzyme")
    ontology.add_relation("protein:tf", IS_A, "protein:protein")
    ontology.add_relation("protein:tumor_suppressor", IS_A, "protein:protein")
    ontology.add_relation("protein:synuclein", IS_A, "protein:structural")
    ontology.add_relation("protein:structural", IS_A, "protein:protein")

    # Named instances referenced by the paper's queries.
    ontology.add_instance("protein:TP53", "TP53", concept_id="protein:tumor_suppressor")
    ontology.add_relation("protein:TP53", INSTANCE_OF, "protein:tf")
    ontology.add_instance("protein:alpha_synuclein", "alpha-synuclein", concept_id="protein:synuclein")
    ontology.add_instance("protein:trypsin", "Trypsin", concept_id="protein:protease")
    ontology.add_instance("protein:pepsin", "Pepsin", concept_id="protein:protease")
    ontology.add_instance("protein:ns3_protease", "NS3 protease", concept_id="protein:protease")
    return ontology


def build_gene_ontology_subset() -> Ontology:
    """A small Gene-Ontology-style DAG (the three GO namespaces).

    Reproduces the shape of GO: three roots (molecular function, biological
    process, cellular component), an ``is_a`` hierarchy, and ``part_of`` links
    from components into processes, with a handful of instance gene products.
    Used to exercise the OntoQuest operations and reasoning on a multi-root DAG.
    """
    ontology = Ontology("gene-ontology", relation_types=(IS_A, PART_OF, INSTANCE_OF))
    # Molecular function branch.
    ontology.add_concept("GO:0003674", "molecular_function")
    ontology.add_concept("GO:0003824", "catalytic activity")
    ontology.add_concept("GO:0016787", "hydrolase activity")
    ontology.add_concept("GO:0008233", "peptidase activity", synonyms=("protease activity",))
    ontology.add_concept("GO:0016301", "kinase activity")
    ontology.add_concept("GO:0005488", "binding")
    ontology.add_concept("GO:0003677", "DNA binding")
    ontology.add_relation("GO:0003824", IS_A, "GO:0003674")
    ontology.add_relation("GO:0005488", IS_A, "GO:0003674")
    ontology.add_relation("GO:0016787", IS_A, "GO:0003824")
    ontology.add_relation("GO:0008233", IS_A, "GO:0016787")
    ontology.add_relation("GO:0016301", IS_A, "GO:0003824")
    ontology.add_relation("GO:0003677", IS_A, "GO:0005488")
    # Biological process branch.
    ontology.add_concept("GO:0008150", "biological_process")
    ontology.add_concept("GO:0006508", "proteolysis")
    ontology.add_concept("GO:0006468", "protein phosphorylation")
    ontology.add_concept("GO:0006355", "regulation of transcription")
    ontology.add_relation("GO:0006508", IS_A, "GO:0008150")
    ontology.add_relation("GO:0006468", IS_A, "GO:0008150")
    ontology.add_relation("GO:0006355", IS_A, "GO:0008150")
    # Cellular component branch.
    ontology.add_concept("GO:0005575", "cellular_component")
    ontology.add_concept("GO:0005634", "nucleus")
    ontology.add_concept("GO:0005737", "cytoplasm")
    ontology.add_relation("GO:0005634", IS_A, "GO:0005575")
    ontology.add_relation("GO:0005737", IS_A, "GO:0005575")
    # part_of links crossing namespaces.
    ontology.add_relation("GO:0006355", PART_OF, "GO:0005634")
    # Instance gene products.
    ontology.add_instance("GO:product:trypsin", "trypsin", concept_id="GO:0008233")
    ontology.add_relation("GO:product:trypsin", INSTANCE_OF, "GO:0006508")
    ontology.add_instance("GO:product:cdk1", "CDK1", concept_id="GO:0016301")
    ontology.add_relation("GO:product:cdk1", INSTANCE_OF, "GO:0006468")
    ontology.add_instance("GO:product:tp53", "TP53", concept_id="GO:0003677")
    ontology.add_relation("GO:product:tp53", INSTANCE_OF, "GO:0006355")
    return ontology


def build_influenza_ontology() -> Ontology:
    """An influenza ontology: viral proteins, segments, and host species."""
    ontology = Ontology("influenza", relation_types=(IS_A, PART_OF, INSTANCE_OF, "encodes", "infects"))
    ontology.add_concept("flu:virus", "Influenza virus")
    ontology.add_concept("flu:type_a", "Influenza A")
    ontology.add_concept("flu:segment", "Genome segment")
    ontology.add_concept("flu:protein", "Viral protein")
    ontology.add_concept("flu:surface_protein", "Surface glycoprotein")
    ontology.add_concept("flu:polymerase", "Polymerase subunit")
    ontology.add_concept("flu:host", "Host species")
    ontology.add_concept("flu:avian_host", "Avian host")
    ontology.add_concept("flu:mammalian_host", "Mammalian host")

    ontology.add_relation("flu:type_a", IS_A, "flu:virus")
    ontology.add_relation("flu:surface_protein", IS_A, "flu:protein")
    ontology.add_relation("flu:polymerase", IS_A, "flu:protein")
    ontology.add_relation("flu:avian_host", IS_A, "flu:host")
    ontology.add_relation("flu:mammalian_host", IS_A, "flu:host")

    for term_id, label, concept in [
        ("flu:HA", "Hemagglutinin", "flu:surface_protein"),
        ("flu:NA", "Neuraminidase", "flu:surface_protein"),
        ("flu:PB1", "PB1", "flu:polymerase"),
        ("flu:PB2", "PB2", "flu:polymerase"),
        ("flu:PA", "PA", "flu:polymerase"),
        ("flu:NP", "Nucleoprotein", "flu:protein"),
        ("flu:M1", "Matrix protein 1", "flu:protein"),
        ("flu:NS1", "Non-structural protein 1", "flu:protein"),
    ]:
        ontology.add_instance(term_id, label, concept_id=concept)

    for term_id, label, concept in [
        ("flu:chicken", "Chicken", "flu:avian_host"),
        ("flu:duck", "Duck", "flu:avian_host"),
        ("flu:swine", "Swine", "flu:mammalian_host"),
        ("flu:human", "Human", "flu:mammalian_host"),
    ]:
        ontology.add_instance(term_id, label, concept_id=concept)
    return ontology
