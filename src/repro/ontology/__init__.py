"""Ontology subsystem (the role OntoQuest plays in the paper).

"In Graphitti we use OntoQuest where ontologies are modeled as graphs whose
nodes correspond to terms and edges are domain-specific quantified binary
relationships between term pairs.  An annotation only points to ontology
nodes."

This package provides the ontology graph model, the operation set the paper
lists (CI, CRI, CmRI, mCmRI, SubTree, SubTree difference), an OBO-flavoured
text format for IO, and small built-in ontologies used by the examples and
tests (a brain-region ontology containing "Deep Cerebellar nuclei", a protein
ontology containing TP53 and alpha-synuclein, and an influenza ontology).
"""

from repro.ontology.model import Ontology, Relation, Term
from repro.ontology.operations import OntologyOperations
from repro.ontology.reasoning import OntologyReasoner
from repro.ontology.obo import parse_obo, serialize_obo
from repro.ontology.builtin import (
    build_brain_region_ontology,
    build_gene_ontology_subset,
    build_influenza_ontology,
    build_protein_ontology,
)

__all__ = [
    "Ontology",
    "Term",
    "Relation",
    "OntologyOperations",
    "OntologyReasoner",
    "parse_obo",
    "serialize_obo",
    "build_brain_region_ontology",
    "build_gene_ontology_subset",
    "build_influenza_ontology",
    "build_protein_ontology",
]
