"""OBO-flavoured text serialization for ontologies.

OBO is the de-facto exchange format for the biomedical ontologies Graphitti
annotates against (GO, UBERON, brain atlases).  This module reads and writes
the small, widely used subset: ``[Term]`` stanzas with ``id``, ``name``,
``synonym``, ``is_a``, ``relationship`` and ``is_instance_of`` tags.
"""

from __future__ import annotations

from repro.errors import OntologyError
from repro.ontology.model import INSTANCE_OF, IS_A, Ontology, Term


def serialize_obo(ontology: Ontology) -> str:
    """Serialize an ontology to OBO-flavoured text."""
    lines = [
        "format-version: 1.2",
        f"ontology: {ontology.name}",
        "",
    ]
    for term in sorted(ontology, key=lambda item: item.term_id):
        lines.append("[Term]")
        lines.append(f"id: {term.term_id}")
        lines.append(f"name: {term.name}")
        for synonym in term.synonyms:
            lines.append(f'synonym: "{synonym}" EXACT []')
        if term.is_instance:
            lines.append("is_instance: true")
        for edge in sorted(
            ontology.relations_from(term.term_id), key=lambda item: (item.predicate, item.object)
        ):
            if edge.predicate == IS_A:
                lines.append(f"is_a: {edge.object}")
            elif edge.predicate == INSTANCE_OF:
                lines.append(f"is_instance_of: {edge.object}")
            else:
                lines.append(f"relationship: {edge.predicate} {edge.object}")
        lines.append("")
    return "\n".join(lines)


def parse_obo(text: str, name: str | None = None) -> Ontology:
    """Parse OBO-flavoured text into an :class:`~repro.ontology.model.Ontology`."""
    if not text or not text.strip():
        raise OntologyError("cannot parse empty OBO text")
    header_name = name
    stanzas: list[dict[str, list[str]]] = []
    current: dict[str, list[str]] | None = None
    in_term = False
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("!"):
            continue
        if line.startswith("["):
            in_term = line == "[Term]"
            if in_term:
                current = {}
                stanzas.append(current)
            else:
                current = None
            continue
        if ":" not in line:
            raise OntologyError(f"malformed OBO line: {raw_line!r}")
        key, _, value = line.partition(":")
        key = key.strip()
        value = value.strip()
        if current is None:
            if key == "ontology" and header_name is None:
                header_name = value
            continue
        current.setdefault(key, []).append(value)

    ontology = Ontology(header_name or "ontology")
    deferred_relations: list[tuple[str, str, str]] = []
    for stanza in stanzas:
        term_ids = stanza.get("id")
        if not term_ids:
            raise OntologyError("OBO [Term] stanza without an id")
        term_id = term_ids[0]
        term_name = stanza.get("name", [term_id])[0]
        synonyms = tuple(_strip_synonym(value) for value in stanza.get("synonym", []))
        is_instance = stanza.get("is_instance", ["false"])[0].lower() == "true"
        ontology.add_term(Term(term_id, term_name, is_instance=is_instance, synonyms=synonyms))
        for parent in stanza.get("is_a", []):
            deferred_relations.append((term_id, IS_A, parent.split("!")[0].strip()))
        for concept in stanza.get("is_instance_of", []):
            deferred_relations.append((term_id, INSTANCE_OF, concept.split("!")[0].strip()))
        for relationship in stanza.get("relationship", []):
            parts = relationship.split("!")[0].split()
            if len(parts) != 2:
                raise OntologyError(f"malformed relationship line: {relationship!r}")
            predicate, target = parts
            deferred_relations.append((term_id, predicate, target))

    for subject, predicate, object_ in deferred_relations:
        if predicate not in ontology.relation_types:
            ontology.declare_relation_type(predicate)
        ontology.add_relation(subject, predicate, object_)
    return ontology


def _strip_synonym(value: str) -> str:
    """Extract the quoted synonym text from an OBO synonym line."""
    if '"' in value:
        first = value.find('"')
        second = value.find('"', first + 1)
        if second > first:
            return value[first + 1 : second]
    return value
