"""The OntoQuest operation set.

Section II of the paper lists the ontology operations Graphitti relies on:

* ``CI : C -> I+`` — all instances of a concept,
* ``CRI : C x R -> I+`` — all instances of a concept by relation R,
* ``CmRI : C x R+ -> I+`` — instances of a concept restricted to a set of
  relation types,
* ``mCmRI : C+ x R+ -> I+`` — all instances reachable from any concept in a
  set using only edges from R+,
* ``SubTree(X, RI)`` — the subtree under X restricted to edge relation RI,
* ``SubTree(X, RI) - SubTree(Y, RI)`` — if Y is a descendant of X, the
  subtree under X minus the subtree under Y.

All operations are implemented on top of :class:`~repro.ontology.model.Ontology`
with optional memoisation (the cache is invalidated explicitly by the caller
when the ontology changes; Graphitti ontologies are effectively read-only
once loaded, matching OntoQuest's usage).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import OntologyError, UnknownTermError
from repro.ontology.model import INSTANCE_OF, IS_A, PART_OF, Ontology


class OntologyOperations:
    """OntoQuest-style operations over one ontology.

    Parameters
    ----------
    ontology:
        The ontology to operate on.
    cache:
        When True (default), CI results are memoised per (concept, relations)
        key.  Call :meth:`invalidate_cache` after mutating the ontology.
    """

    #: Hierarchical predicates considered when walking "down" from a concept
    #: to its sub-concepts before collecting instances.
    DEFAULT_HIERARCHY = (IS_A, PART_OF)

    def __init__(self, ontology: Ontology, cache: bool = True):
        self.ontology = ontology
        self._cache_enabled = cache
        self._ci_cache: dict[tuple[str, tuple[str, ...]], frozenset[str]] = {}

    def invalidate_cache(self) -> None:
        """Drop memoised results (call after mutating the ontology)."""
        self._ci_cache.clear()

    # -- instance-returning operations -------------------------------------------------

    def ci(self, concept_id: str) -> set[str]:
        """``CI: C -> I+`` — the set of all instances of *concept_id*.

        Instances of every sub-concept (via the default hierarchy relations)
        are included, which is the standard ontological reading of "all
        instances of a concept".
        """
        return self._instances(concept_id, self.DEFAULT_HIERARCHY)

    def cri(self, concept_id: str, relation: str) -> set[str]:
        """``CRI: C x R -> I+`` — instances of *concept_id* by relation *relation*.

        The sub-concept closure is restricted to *relation* only; instances
        remain attached via ``instance_of``.
        """
        return self._instances(concept_id, (relation,))

    def cmri(self, concept_id: str, relations: Iterable[str]) -> set[str]:
        """``CmRI: C x R+ -> I+`` — instances of a concept restricted to a set
        of relation types."""
        relation_tuple = tuple(relations)
        if not relation_tuple:
            raise OntologyError("CmRI requires at least one relation type")
        return self._instances(concept_id, relation_tuple)

    def mcmri(self, concept_ids: Iterable[str], relations: Iterable[str]) -> set[str]:
        """``mCmRI: C+ x R+ -> I+`` — all instances reachable from any concept
        in the set using only edges from the relation set."""
        relation_tuple = tuple(relations)
        concept_tuple = tuple(concept_ids)
        if not concept_tuple:
            raise OntologyError("mCmRI requires at least one concept")
        result: set[str] = set()
        for concept_id in concept_tuple:
            result.update(self._instances(concept_id, relation_tuple))
        return result

    def _instances(self, concept_id: str, relations: tuple[str, ...]) -> set[str]:
        key = (concept_id, relations)
        if self._cache_enabled and key in self._ci_cache:
            return set(self._ci_cache[key])
        concept = self.ontology.term(concept_id)
        if concept.is_instance:
            raise OntologyError(f"{concept_id!r} is an instance, not a concept")
        concepts = {concept_id} | self.ontology.descendants(concept_id, relations)
        instances: set[str] = set()
        for current in concepts:
            instances.update(self.ontology.subjects(current, INSTANCE_OF))
        if self._cache_enabled:
            self._ci_cache[key] = frozenset(instances)
        return instances

    # -- subtree operations ---------------------------------------------------------------

    def subtree(self, root_id: str, relation: str) -> set[str]:
        """``SubTree(X, RI)`` — the terms in the subtree under *root_id*
        restricted to the edge relation *relation* (root included)."""
        self.ontology.term(root_id)
        return {root_id} | self.ontology.descendants(root_id, (relation,))

    def subtree_difference(self, root_id: str, excluded_id: str, relation: str) -> set[str]:
        """``SubTree(X, RI) - SubTree(Y, RI)`` — the subtree under X minus the
        subtree under Y, valid only when Y is a descendant of X."""
        parent_tree = self.subtree(root_id, relation)
        if excluded_id not in parent_tree or excluded_id == root_id:
            raise OntologyError(
                f"{excluded_id!r} is not a proper descendant of {root_id!r} under {relation!r}"
            )
        excluded_tree = self.subtree(excluded_id, relation)
        return parent_tree - excluded_tree

    def subtree_edges(self, root_id: str, relation: str) -> list[tuple[str, str]]:
        """The ``(child, parent)`` edges of ``SubTree(root_id, relation)``."""
        members = self.subtree(root_id, relation)
        edges: list[tuple[str, str]] = []
        for member in members:
            for parent in self.ontology.objects(member, relation):
                if parent in members:
                    edges.append((member, parent))
        return sorted(edges)

    # -- term resolution helpers used by the query layer ------------------------------------

    def resolve_term(self, text: str) -> str:
        """Resolve a term id or (synonym-aware) name to a term id."""
        if text in self.ontology:
            return text
        matches = self.ontology.find_by_name(text)
        if not matches:
            raise UnknownTermError(f"ontology {self.ontology.name!r} has no term named {text!r}")
        if len(matches) > 1:
            raise OntologyError(
                f"ontology term name {text!r} is ambiguous: {[term.term_id for term in matches]!r}"
            )
        return matches[0].term_id

    def concept_and_descendants(self, text: str, relations: Iterable[str] | None = None) -> set[str]:
        """Resolve *text* and return the concept plus all hierarchical descendants.

        This is the expansion used when a query condition says "annotated
        with ontology term T": any descendant of T also satisfies it.
        """
        term_id = self.resolve_term(text)
        predicates = tuple(relations) if relations is not None else self.DEFAULT_HIERARCHY
        return {term_id} | self.ontology.descendants(term_id, predicates)
