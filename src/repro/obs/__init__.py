"""repro.obs — observability for the whole stack.

One :class:`Observability` instance per service instance bundles the three
sinks every layer records into:

* a :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  fixed-bucket latency histograms (mergeable across shards/replicas);
* a :class:`~repro.obs.tracing.Tracer` handing out context-managed spans
  with automatic parent/child linking (thread-local stack, explicit
  ``parent=`` across pool threads);
* a :class:`~repro.obs.slowlog.SlowOpLog` ring buffer capturing the full
  trace plus ``explain()`` output of any op over the threshold.

Disabled (``ObservabilityConfig(enabled=False)``) every surface degrades to
a no-op: spans are the shared :data:`NULL_SPAN`, ``snapshot()`` reports only
``{"enabled": False}``, and instrumented code paths pay one attribute check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_histogram_snapshots,
    merge_metrics,
    merge_stats,
    render_prometheus,
)
from repro.obs.slowlog import SlowOpLog
from repro.obs.tracing import NULL_SPAN, Span, Tracer, current_span, format_span

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "ObservabilityConfig",
    "SlowOpLog",
    "Span",
    "Tracer",
    "current_span",
    "format_span",
    "merge_histogram_snapshots",
    "merge_metrics",
    "merge_observability",
    "merge_stats",
    "render_prometheus",
]


def merge_observability(snapshots) -> dict:
    """Merge full :meth:`Observability.snapshot` dicts across instances.

    Counters/gauges sum and histograms add buckets (via
    :func:`merge_metrics`); slow-op-log stats sum entry counts and keep the
    first instance's threshold.  Disabled instances contribute nothing; all
    disabled yields ``{"enabled": False}``.  This is how the sharded and
    replicated facades aggregate their children's registries.
    """
    active = [snap for snap in snapshots if snap.get("enabled")]
    if not active:
        return {"enabled": False}
    merged = merge_metrics(active)
    merged["enabled"] = True
    slow = [snap["slow_ops"] for snap in active if "slow_ops" in snap]
    if slow:
        merged["slow_ops"] = {
            "capacity": sum(part["capacity"] for part in slow),
            "threshold_s": slow[0]["threshold_s"],
            "entries": sum(part["entries"] for part in slow),
            "recorded_total": sum(part["recorded_total"] for part in slow),
        }
    return merged


@dataclass(frozen=True)
class ObservabilityConfig:
    """Knobs for one service instance's observability.

    ``enabled`` gates everything; ``slow_op_threshold_s`` is the latency at
    which an op's trace + explain land in the slow-op log of
    ``slow_log_capacity`` entries.
    """

    enabled: bool = True
    slow_op_threshold_s: float = 0.25
    slow_log_capacity: int = 128


class Observability:
    """Per-instance bundle of registry + tracer + slow-op log."""

    __slots__ = ("config", "enabled", "registry", "tracer", "slow_log")

    def __init__(self, config: Optional[ObservabilityConfig] = None):
        self.config = config or ObservabilityConfig()
        self.enabled = self.config.enabled
        if self.enabled:
            self.registry = MetricsRegistry()
            self.tracer = Tracer(enabled=True, registry=self.registry)
            self.slow_log = SlowOpLog(
                capacity=self.config.slow_log_capacity,
                threshold_s=self.config.slow_op_threshold_s,
            )
        else:
            self.registry = None
            self.tracer = Tracer(enabled=False)
            self.slow_log = None

    # -- recording -------------------------------------------------------
    def span(self, name: str, parent: Optional[Span] = None):
        return self.tracer.span(name, parent=parent)

    def count(self, name: str, amount: int | float = 1) -> None:
        if self.enabled:
            self.registry.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.registry.histogram(name).observe(value)

    def is_slow(self, span: Any) -> bool:
        return (self.enabled
                and self.slow_log.is_slow(getattr(span, "duration", 0.0)))

    def record_slow(self, op: str, span: Any,
                    explain: Optional[dict] = None, **extra: Any) -> None:
        if self.enabled:
            self.slow_log.record(op, span, explain=explain, **extra)
            self.registry.counter("slow_ops").inc()

    # -- export ----------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-compatible view: registry snapshot + slow-log stats."""
        if not self.enabled:
            return {"enabled": False}
        snap = self.registry.snapshot()
        snap["enabled"] = True
        snap["slow_ops"] = self.slow_log.stats()
        return snap
