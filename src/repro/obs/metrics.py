"""Lock-cheap metrics primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the per-instance sink every layer of the stack
records into.  Three metric kinds cover the serving workloads:

* :class:`Counter` — a monotonically increasing total (queries served, WAL
  appends, slow ops);
* :class:`Gauge` — a point-in-time level (writers queued on the RW lock,
  cache entries);
* :class:`Histogram` — a fixed-bucket latency distribution with
  p50/p95/p99 extraction.  Buckets are log-spaced over the latency range a
  Python serving stack actually produces (10µs .. 10s); observation is one
  bisect plus one slock-guarded increment, and two histograms with the same
  boundaries **merge by adding bucket counts** — the property that lets
  shard and replica registries aggregate exactly the way ``statistics()``
  sums its per-shard dicts.

Everything here is process-local and deliberately dependency-free: snapshots
are plain JSON-compatible dicts, merging works on snapshots (not live
objects) so a future wire protocol can ship them as-is, and
:func:`render_prometheus` turns a snapshot into the text exposition format.

:func:`merge_stats` also lives here: the recursive numeric-leaf summing both
the sharded and the replicated aggregation paths use (previously hand-rolled
per call site).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable, Sequence

#: Default histogram bucket upper bounds, in seconds.  Log-spaced from 10µs
#: to 10s; values above the last bound land in the implicit +inf bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return self._value


class Gauge:
    """A point-in-time level that can move both ways."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value: int | float) -> None:
        self._value = value

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> int | float:
        return self._value


def _histogram_quantiles(
    counts: Sequence[int],
    boundaries: Sequence[float],
    total: int,
    minimum: float,
    maximum: float,
    quantiles: Iterable[float] = (0.5, 0.95, 0.99),
) -> dict[str, float]:
    """Quantile estimates from bucket counts (shared by live + merged views).

    Within the winning bucket the estimate interpolates linearly between the
    bucket's bounds by rank, then clamps to the observed [min, max] — so a
    single-sample histogram reports that sample exactly, and estimates never
    leave the observed range.
    """
    out: dict[str, float] = {}
    for q in quantiles:
        key = f"p{int(q * 100)}"
        if total == 0:
            out[key] = 0.0
            continue
        rank = max(1, int(q * total + 0.9999999))  # ceil without float drama
        cumulative = 0
        value = maximum
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = boundaries[index - 1] if index > 0 else 0.0
                upper = boundaries[index] if index < len(boundaries) else maximum
                fraction = (rank - cumulative) / bucket_count
                value = lower + fraction * (upper - lower)
                break
            cumulative += bucket_count
        out[key] = min(max(value, minimum), maximum)
    return out


class Histogram:
    """A fixed-bucket distribution; observe is one bisect + one increment."""

    __slots__ = ("name", "boundaries", "_counts", "_sum", "_min", "_max", "_count", "_lock")

    def __init__(self, name: str, boundaries: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.boundaries = tuple(boundaries)
        if list(self.boundaries) != sorted(set(self.boundaries)):
            raise ValueError("histogram boundaries must be strictly increasing")
        self._counts = [0] * (len(self.boundaries) + 1)  # +1: the +inf bucket
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    def snapshot(self) -> dict[str, Any]:
        """JSON-compatible view: count/sum/min/max, quantiles, bucket counts."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            total_sum = self._sum
            minimum = self._min if total else 0.0
            maximum = self._max if total else 0.0
        snap: dict[str, Any] = {
            "count": total,
            "sum": total_sum,
            "min": minimum,
            "max": maximum,
            "buckets": counts,
            "boundaries": list(self.boundaries),
        }
        snap.update(_histogram_quantiles(counts, self.boundaries, total, minimum, maximum))
        return snap


class MetricsRegistry:
    """A named collection of metrics; creation is locked, updates are per-metric.

    One registry per service instance.  Aggregation across shards / replicas
    merges **snapshots** (see :func:`merge_metrics`) so the aggregate view
    needs no access to (or locking of) the children's live objects.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(name, Counter(name))
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(name, Gauge(name))
        return metric

    def histogram(self, name: str, boundaries: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(name, Histogram(name, boundaries))
        return metric

    def snapshot(self) -> dict[str, Any]:
        """One JSON-compatible dict of every metric's current state."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: metric.value for name, metric in sorted(counters.items())},
            "gauges": {name: metric.value for name, metric in sorted(gauges.items())},
            "histograms": {
                name: metric.snapshot() for name, metric in sorted(histograms.items())
            },
        }


def merge_histogram_snapshots(snapshots: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Merge same-boundary histogram snapshots by adding bucket counts.

    The operation is associative and commutative over the integer fields
    (bucket counts, count) and over min/max; the float ``sum`` commutes up to
    rounding.  Mismatched boundaries refuse loudly — silently merging two
    different bucketings would fabricate a distribution.
    """
    if not snapshots:
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "buckets": [], "boundaries": []}
    boundaries = snapshots[0]["boundaries"]
    for snap in snapshots[1:]:
        if snap["boundaries"] != boundaries:
            raise ValueError("cannot merge histograms with different bucket boundaries")
    counts = [0] * (len(boundaries) + 1)
    total = 0
    total_sum = 0.0
    minimum = float("inf")
    maximum = float("-inf")
    for snap in snapshots:
        for index, bucket_count in enumerate(snap["buckets"]):
            counts[index] += bucket_count
        total += snap["count"]
        total_sum += snap["sum"]
        if snap["count"]:
            minimum = min(minimum, snap["min"])
            maximum = max(maximum, snap["max"])
    if not total:
        minimum = maximum = 0.0
    merged: dict[str, Any] = {
        "count": total,
        "sum": total_sum,
        "min": minimum,
        "max": maximum,
        "buckets": counts,
        "boundaries": list(boundaries),
    }
    merged.update(_histogram_quantiles(counts, boundaries, total, minimum, maximum))
    return merged


def merge_metrics(snapshots: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Merge registry snapshots: counters and gauges sum, histograms add buckets.

    This is how the sharded and replicated facades aggregate their children's
    registries — the metrics analogue of how ``statistics()`` sums per-shard
    dicts (see :func:`merge_stats`).
    """
    counters: dict[str, int | float] = {}
    gauges: dict[str, int | float] = {}
    histogram_parts: dict[str, list[dict[str, Any]]] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0) + value
        for name, hist in snap.get("histograms", {}).items():
            histogram_parts.setdefault(name, []).append(hist)
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {
            name: merge_histogram_snapshots(parts)
            for name, parts in sorted(histogram_parts.items())
        },
    }


def _prometheus_name(name: str, prefix: str) -> str:
    sanitized = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    return f"{prefix}_{sanitized}"


def render_prometheus(snapshot: dict[str, Any], prefix: str = "repro") -> str:
    """Render a registry (or merged) snapshot in Prometheus text format.

    Counters become ``<prefix>_<name>_total``, gauges plain values, and
    histograms the standard cumulative ``_bucket{le=...}`` series plus
    ``_sum`` and ``_count``.
    """
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _prometheus_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, hist in snapshot.get("histograms", {}).items():
        metric = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        boundaries = hist.get("boundaries", [])
        for index, bound in enumerate(boundaries):
            cumulative += hist["buckets"][index]
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        cumulative += hist["buckets"][len(boundaries)] if hist.get("buckets") else 0
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {hist['sum']}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def merge_stats(values: Sequence[Any]) -> Any:
    """Recursively merge parallel per-instance statistics dicts.

    Numeric leaves sum, booleans AND (every instance must agree), dicts merge
    key-wise over whichever instances carry the key, and any other leaf
    (strings, None) reports the first instance's value.  Extracted from the
    sharded scatter-gather aggregation so every aggregation path (sharded
    substrate stats, sharded service counters, replicated fleets) merges with
    the same rules — the drift this replaces was two hand-rolled copies.
    """
    head = values[0]
    if isinstance(head, dict):
        merged: dict[str, Any] = {}
        for item in values:
            for key in item:
                if key not in merged:
                    merged[key] = merge_stats([it[key] for it in values if key in it])
        return merged
    if isinstance(head, bool):
        return all(values)
    if isinstance(head, (int, float)):
        return sum(values)
    return head
