"""Span-based tracing with automatic parent/child linking.

A :class:`Span` measures one stage of an operation (parse, plan, a single
constraint evaluation, a WAL fsync, one shard of a scatter-gather).  Spans
nest: entering a span pushes it onto a thread-local stack shared by *every*
tracer in the process, so when the sharded facade's ``query`` span is open
and a shard's own service opens its ``query`` span on the same thread, the
child attaches automatically — no tracer object needs to be plumbed between
layers.  Work handed to a pool thread passes ``parent=`` explicitly, since
the thread-local stack does not cross threads.

When tracing is disabled the tracer hands out :data:`NULL_SPAN`, a shared
no-op whose ``__enter__``/``__exit__``/``set`` do nothing — the disabled
cost of an instrumented code path is one attribute check and one method
call, with no allocation.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional

_tls = threading.local()


def _stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def current_span() -> Optional["Span"]:
    """The innermost live span on this thread, if any."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


class Span:
    """One timed stage.  Use as a context manager; nesting links children."""

    __slots__ = (
        "name", "attributes", "children", "parent",
        "start", "duration", "_tracer", "_on_stack",
    )

    def __init__(self, name: str, tracer: Optional["Tracer"] = None,
                 parent: Optional["Span"] = None):
        self.name = name
        self.attributes: dict[str, Any] = {}
        self.children: list[Span] = []
        self.parent = parent
        self.start = 0.0
        self.duration = 0.0
        self._tracer = tracer
        self._on_stack = False

    def set(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def reparent(self, new_parent: "Span") -> None:
        """Move this (finished) span under *new_parent*.

        The service's query path opens its root span only after the result
        cache misses — so the parse/plan spans, which necessarily ran
        before that decision, are adopted after the fact.  Detaches from
        the old parent (if any) so the span never appears twice.
        """
        old = self.parent
        if old is not None:
            try:
                old.children.remove(self)
            except ValueError:
                pass
        self.parent = new_parent
        new_parent.children.append(self)

    def __enter__(self) -> "Span":
        if self.parent is None:
            self.parent = current_span()
        if self.parent is not None:
            # list.append is atomic under the GIL; cross-thread children
            # (scatter-gather workers) attach here without a lock.
            self.parent.children.append(self)
        stack = _stack()
        stack.append(self)
        self._on_stack = True
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self.start
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        if self._on_stack:
            stack = _stack()
            # Pop back to (and including) this span; tolerates a child that
            # leaked by never exiting rather than corrupting the stack.
            while stack:
                if stack.pop() is self:
                    break
            self._on_stack = False
        tracer = self._tracer
        if tracer is not None:
            tracer._finished(self)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible tree rooted at this span."""
        node: dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration,
        }
        if self.attributes:
            node["attributes"] = dict(self.attributes)
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node


class _NullSpan:
    """Shared no-op span handed out when tracing is disabled."""

    __slots__ = ()
    name = ""
    duration = 0.0
    parent = None

    @property
    def attributes(self) -> dict:
        return {}

    @property
    def children(self) -> list:
        return []

    def set(self, key: str, value: Any) -> None:
        pass

    def reparent(self, new_parent: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __bool__(self) -> bool:
        return False

    def to_dict(self) -> dict[str, Any]:
        return {"name": "", "duration_s": 0.0}


NULL_SPAN = _NullSpan()


class Tracer:
    """Hands out spans and records their durations into a registry.

    Each finished span's duration is observed into the histogram
    ``span.<name>`` of the attached registry (if any), so the trace stream
    doubles as the source of per-stage latency distributions.
    """

    __slots__ = ("enabled", "registry", "_histograms")

    def __init__(self, enabled: bool = True, registry=None):
        self.enabled = enabled
        self.registry = registry
        # name -> Histogram; plain-dict read on the hot path, registry
        # creation (locked) only on first sighting of a span name.
        self._histograms: dict[str, Any] = {}

    def span(self, name: str, parent: Optional[Span] = None):
        if not self.enabled:
            return NULL_SPAN
        return Span(name, tracer=self, parent=parent)

    def _finished(self, span: Span) -> None:
        registry = self.registry
        if registry is None:
            return
        histogram = self._histograms.get(span.name)
        if histogram is None:
            histogram = self._histograms[span.name] = registry.histogram(
                f"span.{span.name}")
        histogram.observe(span.duration)


def format_span(span, indent: int = 0, total: Optional[float] = None) -> str:
    """Pretty-print a span tree: one line per span, duration + % of root."""
    lines: list[str] = []
    _format_into(span if isinstance(span, dict) else span.to_dict(),
                 indent, total, lines)
    return "\n".join(lines)


def _format_into(node: dict[str, Any], indent: int,
                 total: Optional[float], lines: list[str]) -> None:
    duration = node.get("duration_s", 0.0)
    if total is None:
        total = duration or None
    pct = f"  ({duration / total * 100.0:5.1f}%)" if total else ""
    attrs = node.get("attributes") or {}
    attr_text = ""
    if attrs:
        attr_text = "  " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    lines.append(f"{'  ' * indent}{node['name']:<{max(1, 28 - 2 * indent)}}"
                 f" {duration * 1000:9.3f} ms{pct}{attr_text}")
    for child in node.get("children", []):
        _format_into(child, indent + 1, total, lines)
