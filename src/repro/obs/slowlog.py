"""Ring-buffer slow-operation log.

Holds the most recent N operations that exceeded the configured latency
threshold, each with its full span tree and (for queries) the planner's
``explain()`` output — enough to answer "why was that slow" after the fact
without re-running anything.  Bounded by construction; recording is a
single lock-guarded deque append so writers never block on readers.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Optional


class SlowOpLog:
    """Bounded, thread-safe log of slow operations."""

    def __init__(self, capacity: int = 128, threshold_s: float = 0.25):
        if capacity < 1:
            raise ValueError("slow-op log capacity must be >= 1")
        self.capacity = capacity
        self.threshold_s = threshold_s
        self._entries: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._recorded = 0

    def is_slow(self, duration_s: float) -> bool:
        return duration_s >= self.threshold_s

    def record(self, op: str, span: Any,
               explain: Optional[dict] = None, **extra: Any) -> None:
        """Record one slow op: its kind, span tree, and optional explain()."""
        entry: dict[str, Any] = {
            "op": op,
            "recorded_at": time.time(),
            "duration_s": getattr(span, "duration", 0.0),
            "trace": span.to_dict() if hasattr(span, "to_dict") else span,
        }
        if explain is not None:
            entry["explain"] = explain
        if extra:
            entry.update(extra)
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1

    def entries(self) -> list[dict[str, Any]]:
        """Newest-last copy of the retained entries."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "threshold_s": self.threshold_s,
                "entries": len(self._entries),
                "recorded_total": self._recorded,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
