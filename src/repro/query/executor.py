"""Query executor: run a plan against a Graphitti instance and collate results.

The executor walks the planned constraints, maintaining a candidate set of
annotation ids that shrinks as each per-type subquery applies.  When the
candidate set is settled it collates the surviving annotations into the
requested result form (contents, referents, or connection subgraphs), exactly
the "collating partial results from these subqueries into a set of
type-extended connection subgraphs" step the paper describes.

Under a cost-mode plan the executor is **adaptive**:

* candidate sets are big-int **bitsets** over the manager's dense
  :class:`~repro.query.idspace.AnnotationIdSpace` (AND/OR/NOT are single
  big-int ops, cardinality is one popcount) instead of ``set[str]``;
* after each step it re-picks the cheapest remaining constraint *relative to
  the current candidate count* — a constraint whose estimated match set
  dwarfs the survivors is deferred, because probing beats materializing it;
* index-backed constraints (keyword, ontology, overlap, region, type)
  switch into **semi-join probe mode** whenever the surviving candidate set
  is far below the constraint's estimated match set: each candidate is
  verified against the index in O(1)-ish instead of materializing and
  intersecting the full match set.

Static / off plans keep the original materialize-then-intersect execution,
which is what the planner benchmarks measure the adaptive pipeline against.
"""

from __future__ import annotations

from typing import Iterable

from repro.query.ast import (
    Constraint,
    KeywordConstraint,
    NotConstraint,
    OntologyConstraint,
    OrConstraint,
    OverlapConstraint,
    PathConstraint,
    Query,
    RegionConstraint,
    ReturnKind,
    TypeConstraint,
)
from repro.core.annotation import Referent
from repro.obs.tracing import NULL_SPAN
from repro.query.planner import MODE_COST, QueryPlan, QueryPlanner
from repro.query.result import QueryResult
from repro.agraph.connection import ConnectionSubgraph
from repro.errors import QueryExecutionError

#: Verifying one candidate against an index costs roughly this many times a
#: single row of a materialized match set (annotation lookup + per-referent
#: checks vs. one set insertion).  Probe mode wins when
#: ``|candidates| * PROBE_COST_FACTOR < estimated match rows``.
PROBE_COST_FACTOR = 4

#: Constraint types the executor can verify per-candidate against an index.
_PROBEABLE = (
    KeywordConstraint,
    OntologyConstraint,
    OverlapConstraint,
    RegionConstraint,
    TypeConstraint,
)


class QueryExecutor:
    """Executes query plans against a :class:`~repro.core.manager.Graphitti`."""

    def __init__(self, manager, planner: QueryPlanner | None = None, tracer=None):
        self._manager = manager
        self._planner = planner or QueryPlanner(manager=manager)
        # Optional repro.obs Tracer: when attached, each constraint
        # evaluation and the collation emit child spans of whatever span is
        # open on the calling thread (the serving layer's "execute" span).
        self._tracer = tracer

    def _span(self, name: str):
        tracer = self._tracer
        if tracer is None:
            return NULL_SPAN
        return tracer.span(name)

    # -- entry points ---------------------------------------------------------

    def execute(self, query: Query) -> QueryResult:
        """Plan and execute *query*, returning a :class:`QueryResult`."""
        plan = self._planner.plan(query)
        return self.execute_plan(plan)

    def execute_plan(self, plan: QueryPlan) -> QueryResult:
        """Execute a pre-built :class:`QueryPlan`."""
        query = plan.query
        result = QueryResult(return_kind=query.return_kind, plan_fingerprint=plan.fingerprint())
        if plan.mode == MODE_COST and getattr(self._manager, "idspace", None) is not None:
            surviving = self._run_adaptive(plan, result)
        else:
            surviving = self._run_static(plan, result)
        with self._span("collate") as span:
            span.set("survivors", len(surviving))
            self._collate(query, surviving, result)
        return result

    # -- static (materialize-and-intersect) execution -------------------------

    def _run_static(self, plan: QueryPlan, result: QueryResult) -> list[str]:
        candidates: set[str] | None = None
        for position, constraint in enumerate(plan.ordered_constraints):
            with self._span("execute.constraint") as span:
                matched = self._evaluate(constraint, candidates)
                candidates = matched if candidates is None else (candidates & matched)
                span.set("constraint", constraint.describe())
                span.set("survivors", len(candidates))
            result.record_step(constraint.describe(), len(candidates), position=position)
            if not candidates:
                break
        if candidates is None:
            return sorted(self._all_annotation_ids())
        return sorted(candidates)

    # -- adaptive (bitset + semi-join) execution ------------------------------

    def _run_adaptive(self, plan: QueryPlan, result: QueryResult) -> list[str]:
        idspace = self._manager.idspace
        estimates = plan.estimated_rows or [0] * len(plan.ordered_constraints)
        remaining: list[tuple[int, Constraint, int]] = [
            (position, constraint, estimates[position])
            for position, constraint in enumerate(plan.ordered_constraints)
        ]
        candidates: int | None = None
        while remaining:
            if candidates is None:
                # Plan order already has the smallest estimate first.
                index = 0
            else:
                count = candidates.bit_count()
                index = min(
                    range(len(remaining)),
                    key=lambda i: self._step_cost(remaining[i][1], remaining[i][2], count),
                )
            position, constraint, estimate = remaining.pop(index)
            probe = (
                candidates is not None
                and isinstance(constraint, _PROBEABLE)
                and candidates.bit_count() * PROBE_COST_FACTOR < estimate
            )
            with self._span("execute.constraint") as span:
                if probe:
                    matched_ids = self._probe(constraint, idspace.iter_ids(candidates))
                    candidates &= idspace.to_bits(matched_ids)
                    mode = "probe"
                else:
                    # Only the universe-restricted evaluators (type, NOT, OR —
                    # whose parts may be either) read the candidate set; skip
                    # the bitset -> string-set conversion for the rest.
                    consumes_candidates = isinstance(
                        constraint, (TypeConstraint, NotConstraint, OrConstraint)
                    )
                    candidate_ids = (
                        set(idspace.iter_ids(candidates))
                        if candidates is not None and consumes_candidates
                        else None
                    )
                    matched_bits = idspace.to_bits(self._evaluate(constraint, candidate_ids))
                    candidates = matched_bits if candidates is None else candidates & matched_bits
                    mode = "materialize"
                survivors = candidates.bit_count()
                span.set("constraint", constraint.describe())
                span.set("mode", mode)
                span.set("survivors", survivors)
            result.record_step(
                constraint.describe(), survivors, estimated=estimate, mode=mode, position=position
            )
            if not candidates:
                break
        if candidates is None:
            return sorted(self._all_annotation_ids())
        return sorted(idspace.iter_ids(candidates))

    @staticmethod
    def _step_cost(constraint: Constraint, estimate: int, candidate_count: int) -> int:
        """Estimated work to apply *constraint* to the current candidates."""
        if isinstance(constraint, _PROBEABLE):
            return min(estimate, candidate_count * PROBE_COST_FACTOR)
        return estimate

    # -- semi-join probes ------------------------------------------------------

    def _probe(self, constraint: Constraint, candidate_ids: Iterable[str]) -> set[str]:
        """Verify each candidate against the constraint's index directly.

        Semantics match the materializing evaluators exactly; only the
        access pattern differs (per-candidate membership checks instead of a
        full match-set materialization).
        """
        manager = self._manager
        if isinstance(constraint, KeywordConstraint):
            contents = manager.contents
            return {
                annotation_id
                for annotation_id in candidate_ids
                if contents.document_matches_keyword(
                    annotation_id, constraint.keyword, mode=constraint.mode
                )
            }
        if isinstance(constraint, OntologyConstraint):
            targets = manager._expand_ontology_term(  # noqa: SLF001 - same expansion as search_by_ontology
                constraint.term, constraint.ontology, constraint.include_descendants
            )
            # Walk the a-graph, not the in-memory annotation: referents are
            # SHARED across annotations that mark the same substructure, so a
            # term linked by another annotation's copy of the referent still
            # reaches this annotation through the shared referent node
            # (exactly what search_by_ontology's edge walk sees).
            agraph = manager.agraph
            matched: set[str] = set()
            for annotation_id in candidate_ids:
                if not targets.isdisjoint(agraph.ontology_terms_of(annotation_id)):
                    matched.add(annotation_id)
                    continue
                for referent_id in agraph.referents_of(annotation_id):
                    if not targets.isdisjoint(agraph.ontology_terms_of(referent_id)):
                        matched.add(annotation_id)
                        break
            return matched
        if isinstance(constraint, OverlapConstraint):
            return self._probe_interval(constraint, candidate_ids)
        if isinstance(constraint, RegionConstraint):
            return self._probe_region(constraint, candidate_ids)
        if isinstance(constraint, TypeConstraint):
            of_type = manager.stats_catalogue.members_of_type(constraint.data_type)
            return {annotation_id for annotation_id in candidate_ids if annotation_id in of_type}
        raise QueryExecutionError(f"constraint {type(constraint).__name__} is not probeable")

    def _probe_interval(self, constraint: OverlapConstraint, candidate_ids: Iterable[str]) -> set[str]:
        manager = self._manager
        columns = manager.columns
        refcols = manager.substructures.columns
        # A domain never interned cannot match any packed row.
        domain_ref = refcols.pool.lookup(constraint.domain)
        if domain_ref is None:
            return set()
        idspace = manager.idspace
        start, end = constraint.start, constraint.end
        matched: set[str] = set()
        for annotation_id in candidate_ids:
            slot = idspace.slot(annotation_id)
            if slot is None or not columns.is_live(slot):
                continue
            count = 0
            for rslot in columns.referent_slots(slot):
                if refcols.interval_overlaps(rslot, domain_ref, start, end):
                    count += 1
                    if count >= constraint.min_count:
                        matched.add(annotation_id)
                        break
        return matched

    def _probe_region(self, constraint: RegionConstraint, candidate_ids: Iterable[str]) -> set[str]:
        manager = self._manager
        columns = manager.columns
        refcols = manager.substructures.columns
        space_ref = refcols.pool.lookup(constraint.space)
        if space_ref is None:
            return set()
        idspace = manager.idspace
        lo, hi = constraint.lo, constraint.hi
        matched: set[str] = set()
        for annotation_id in candidate_ids:
            slot = idspace.slot(annotation_id)
            if slot is None or not columns.is_live(slot):
                continue
            count = 0
            for rslot in columns.referent_slots(slot):
                if refcols.rect_overlaps(rslot, space_ref, lo, hi):
                    count += 1
                    if count >= constraint.min_count:
                        matched.add(annotation_id)
                        break
        return matched

    # -- per-constraint evaluation --------------------------------------------

    def _evaluate(self, constraint, candidates: set[str] | None = None) -> set[str]:
        """Evaluate one constraint, materializing its match set.

        *candidates* is the set of annotation ids that survived the previous
        (more selective) subqueries.  Constraints whose natural evaluation
        restricts to a universe (type, NOT) use *candidates* when available
        -- this is where the planner's "feasible order among the subqueries"
        pays off: a selective subquery runs first and shrinks the set the
        expensive evaluation has to touch.
        """
        if isinstance(constraint, KeywordConstraint):
            return set(self._manager.search_by_keyword(constraint.keyword, mode=constraint.mode))
        if isinstance(constraint, OntologyConstraint):
            return set(
                self._manager.search_by_ontology(
                    constraint.term,
                    ontology=constraint.ontology,
                    include_descendants=constraint.include_descendants,
                )
            )
        if isinstance(constraint, OverlapConstraint):
            return self._evaluate_interval(constraint)
        if isinstance(constraint, RegionConstraint):
            return self._evaluate_region(constraint)
        if isinstance(constraint, TypeConstraint):
            return self._evaluate_type(constraint, candidates)
        if isinstance(constraint, PathConstraint):
            return self._evaluate_path(constraint)
        if isinstance(constraint, OrConstraint):
            matched: set[str] = set()
            for part in constraint.parts:
                matched |= self._evaluate(part, candidates)
            return matched
        if isinstance(constraint, NotConstraint):
            # Negation only needs to rule annotations *out of the running*:
            # when earlier subqueries already shrank the candidate set, that
            # set is the universe — materializing every annotation id again
            # would be wasted work (the executor intersects with candidates
            # right after anyway).
            if candidates is not None:
                universe = set(candidates)
            else:
                universe = set(self._all_annotation_ids())
            return universe - self._evaluate(constraint.inner, universe)
        raise QueryExecutionError(f"unknown constraint type {type(constraint).__name__}")

    def _evaluate_interval(self, constraint: OverlapConstraint) -> set[str]:
        referents = self._manager.substructures.overlapping_intervals(
            constraint.domain, constraint.start, constraint.end
        )
        return self._annotations_meeting_count(referents, constraint.min_count)

    def _evaluate_region(self, constraint: RegionConstraint) -> set[str]:
        referents = self._manager.substructures.overlapping_regions(
            constraint.space, constraint.lo, constraint.hi
        )
        return self._annotations_meeting_count(referents, constraint.min_count)

    def _annotations_meeting_count(self, referents: Iterable, min_count: int) -> set[str]:
        """Annotations with at least *min_count* of the matching referents.

        This implements the paper's "images having at least 2 regions
        annotated with T" style count constraint.  The whole referent batch is
        handed to the a-graph in one call, which walks the label-indexed
        ``annotates`` in-edges and accumulates a :class:`collections.Counter`.
        """
        counts = self._manager.agraph.annotation_counts(
            referent.referent_id for referent in referents
        )
        return {annotation_id for annotation_id, count in counts.items() if count >= min_count}

    def _evaluate_type(self, constraint: TypeConstraint, candidates: set[str] | None = None) -> set[str]:
        """Annotations with a referent of the requested data type.

        Reads the per-data-type annotation-id index the statistics catalogue
        maintains on commit/delete — O(answer), never a full annotation scan.
        Falls back to the scan for manager objects without a catalogue.
        """
        catalogue = getattr(self._manager, "stats_catalogue", None)
        if catalogue is not None:
            of_type = catalogue.members_of_type(constraint.data_type)
            if candidates is None:
                return set(of_type)
            # set.__and__ iterates the smaller operand; no copy of the index.
            return candidates & of_type
        matches: set[str] = set()
        wanted = constraint.data_type.lower()
        if candidates is None:
            scanned = self._manager.annotations()
        else:
            scanned = [self._manager.annotation(annotation_id) for annotation_id in candidates]
        for annotation in scanned:
            for referent in annotation.referents:
                if referent.ref.data_type.value == wanted or referent.ref.data_type.name.lower() == wanted:
                    matches.add(annotation.annotation_id)
                    break
        return matches

    def _evaluate_path(self, constraint: PathConstraint) -> set[str]:
        """Contents lying on a bounded a-graph path from a source to a target.

        Two multi-source bounded BFS sweeps replace the former
        |sources| x |targets| pairwise ``path()`` loop: one sweep from the
        source set, one from the target set, each depth-limited to
        ``max_length``.  A node is part of a qualifying connection exactly
        when its distance-to-nearest-source plus distance-to-nearest-target
        stays within the bound — a superset of the nodes the pairwise
        shortest-path walk used to collect (which kept only one witness path
        per pair).
        """
        sources = set(self._manager.search_by_keyword(constraint.from_keyword))
        targets = set(self._manager.search_by_keyword(constraint.to_keyword))
        if not sources or not targets:
            return set()
        agraph = self._manager.agraph
        bound = constraint.max_length
        from_sources = agraph.multi_source_distances(sources, max_depth=bound)
        from_targets = agraph.multi_source_distances(targets, max_depth=bound)
        graph = agraph.graph
        reachable: set[str] = set()
        for node, source_distance in from_sources.items():
            target_distance = from_targets.get(node)
            if target_distance is None or source_distance + target_distance > bound:
                continue
            if graph.node(node).kind == "content":
                reachable.add(node)
        return reachable

    # -- collation ------------------------------------------------------------

    def _collate(self, query: Query, surviving: list[str], result: QueryResult) -> None:
        limited = surviving if query.limit is None else surviving[: query.limit]
        if query.return_kind is ReturnKind.CONTENTS:
            result.annotation_ids = limited
            result.fragments = [self._manager.contents.get(annotation_id) for annotation_id in limited]
        elif query.return_kind is ReturnKind.REFERENTS:
            result.annotation_ids = limited
            manager = self._manager
            columns = manager.columns
            refcols = manager.substructures.columns
            referents = []
            seen = set()
            for annotation_id in limited:
                slot = manager.idspace.slot(annotation_id)
                if slot is None or not columns.is_live(slot):
                    continue
                for rslot, terms in columns.referent_entries(slot):
                    canonical = refcols.view_at(rslot)
                    if canonical is None or canonical.referent_id in seen:
                        continue
                    seen.add(canonical.referent_id)
                    referents.append(
                        Referent(
                            ref=canonical.ref,
                            ontology_terms=terms,
                            referent_id=canonical.referent_id,
                        )
                    )
            result.referents = referents
        else:  # GRAPH
            result.annotation_ids = limited
            result.subgraphs = self._build_subgraphs(limited)

    def _build_subgraphs(self, annotation_ids: list[str]) -> list[ConnectionSubgraph]:
        """Group surviving annotations into connected a-graph components.

        Each connected subgraph forms one result page, matching the paper:
        "each connected subgraph forms a result page".  Every subgraph is then
        decorated with its per-type witness metadata so the result is a
        "type-extended connection subgraph".

        Grouping asks the a-graph's incremental component index for each
        annotation's component root (O(alpha) per id) instead of running a
        BFS component sweep per result page.
        """
        agraph = self._manager.agraph
        by_component: dict = {}
        for annotation_id in annotation_ids:
            root = agraph.component_root(annotation_id)
            by_component.setdefault(root, []).append(annotation_id)
        subgraphs: list[ConnectionSubgraph] = []
        for grouped in by_component.values():
            members = sorted(grouped)
            if len(members) >= 2:
                subgraph = agraph.connect(*members)
            else:
                subgraph = ConnectionSubgraph(terminals=tuple(members), nodes=set(members))
            self._extend_with_types(subgraph, members)
            subgraphs.append(subgraph)
        return subgraphs

    def _extend_with_types(self, subgraph: ConnectionSubgraph, members: list[str]) -> None:
        """Attach per-type referents and intersections to a connection subgraph.

        This is the paper's "type-extended connection subgraph": for every data
        type present among the subgraph's annotations, record the referents of
        that type and the intersection of any co-located (overlapping) referents
        of the same type on the same object, using the SUB-X ``intersect``
        operator.

        Overlapping pairs are found with a group-by-object, sort-by-extent
        sweep (intervals and rectangles swept separately on their first
        axis) instead of testing every referent pair — O(n log n + pairs)
        instead of O(n^2) per type.
        """
        manager = self._manager
        columns = manager.columns
        refcols = manager.substructures.columns
        by_type: dict[str, list] = {}
        for annotation_id in members:
            slot = manager.idspace.slot(annotation_id)
            if slot is None or not columns.is_live(slot):
                continue
            # Canonical referent views carry everything the sweep reads
            # (extents, object id, referent id) — no row materialization.
            for rslot in columns.referent_slots(slot):
                canonical = refcols.view_at(rslot)
                if canonical is None:
                    continue
                by_type.setdefault(canonical.ref.data_type.value, []).append(canonical)
        for data_type, referents in by_type.items():
            intersections = [
                {
                    "object": left.ref.object_id,
                    "referents": [left.referent_id, right.referent_id],
                }
                for left, right in _overlapping_pairs(referents)
            ]
            subgraph.attach_type_extension(
                data_type, [referent.referent_id for referent in referents], intersections
            )

    def _all_annotation_ids(self) -> list[str]:
        return list(self._manager.annotation_ids())


def _overlapping_pairs(referents: list) -> list[tuple]:
    """Co-located same-object referent pairs with a usable intersection.

    Semantically identical to the quadratic all-pairs loop (each unordered
    pair in input order, same-object, both extents present, overlapping,
    non-None ``intersect``), found by grouping on object id and sweeping the
    extents in start order: an active extent whose end precedes the current
    start can never overlap anything later, so each pair is examined at most
    once past the pruning.
    """
    from repro.spatial.operators import if_overlap, intersect

    by_object: dict[str, tuple[list, list]] = {}
    for position, referent in enumerate(referents):
        extent = referent.ref.interval or referent.ref.rect
        if extent is None:
            continue
        intervals, rects = by_object.setdefault(referent.ref.object_id, ([], []))
        if referent.ref.interval is not None:
            intervals.append((extent.start, extent.end, position, referent, extent))
        else:
            rects.append((extent.lo[0], extent.hi[0], position, referent, extent))

    pairs: list[tuple[int, int, object, object]] = []
    for intervals, rects in by_object.values():
        for items in (intervals, rects):
            if len(items) < 2:
                continue
            items.sort(key=lambda item: (item[0], item[1]))
            active: list[tuple[float, float, int, object, object]] = []
            for start, end, position, referent, extent in items:
                active = [item for item in active if item[1] >= start]
                for _, _, other_position, other_referent, other_extent in active:
                    if if_overlap(other_extent, extent) and intersect(other_extent, extent) is not None:
                        first, second = sorted(
                            ((other_position, other_referent), (position, referent))
                        , key=lambda pair: pair[0])
                        pairs.append((first[0], second[0], first[1], second[1]))
                active.append((start, end, position, referent, extent))
    pairs.sort(key=lambda pair: (pair[0], pair[1]))
    return [(left, right) for _, _, left, right in pairs]
