"""Query executor: run a plan against a Graphitti instance and collate results.

The executor walks the planned constraints in order, maintaining a candidate
set of annotation ids that shrinks as each per-type subquery applies.  When
the candidate set is settled it collates the surviving annotations into the
requested result form (contents, referents, or connection subgraphs), exactly
the "collating partial results from these subqueries into a set of
type-extended connection subgraphs" step the paper describes.
"""

from __future__ import annotations

from typing import Iterable

from repro.query.ast import (
    KeywordConstraint,
    NotConstraint,
    OntologyConstraint,
    OrConstraint,
    OverlapConstraint,
    PathConstraint,
    Query,
    RegionConstraint,
    ReturnKind,
    TypeConstraint,
)
from repro.query.planner import QueryPlan, QueryPlanner
from repro.query.result import QueryResult
from repro.agraph.connection import ConnectionSubgraph
from repro.errors import QueryExecutionError


class QueryExecutor:
    """Executes query plans against a :class:`~repro.core.manager.Graphitti`."""

    def __init__(self, manager, planner: QueryPlanner | None = None):
        self._manager = manager
        self._planner = planner or QueryPlanner()

    # -- entry points ---------------------------------------------------------

    def execute(self, query: Query) -> QueryResult:
        """Plan and execute *query*, returning a :class:`QueryResult`."""
        plan = self._planner.plan(query)
        return self.execute_plan(plan)

    def execute_plan(self, plan: QueryPlan) -> QueryResult:
        """Execute a pre-built :class:`QueryPlan`."""
        query = plan.query
        result = QueryResult(return_kind=query.return_kind, plan_fingerprint=plan.fingerprint())
        candidates: set[str] | None = None
        for constraint in plan.ordered_constraints:
            matched = self._evaluate(constraint, candidates)
            candidates = matched if candidates is None else (candidates & matched)
            result.record_step(constraint.describe(), len(candidates))
            if not candidates:
                break
        surviving = sorted(candidates) if candidates is not None else sorted(self._all_annotation_ids())
        self._collate(query, surviving, result)
        return result

    # -- per-constraint evaluation --------------------------------------------

    def _evaluate(self, constraint, candidates: set[str] | None = None) -> set[str]:
        """Evaluate one constraint.

        *candidates* is the set of annotation ids that survived the previous
        (more selective) subqueries.  Constraints whose natural evaluation is
        a full scan (type, path) restrict their work to *candidates* when it
        is available -- this is where the planner's "feasible order among the
        subqueries" pays off: a selective keyword/ontology subquery runs first
        and shrinks the set the expensive scan has to touch.
        """
        if isinstance(constraint, KeywordConstraint):
            return set(self._manager.search_by_keyword(constraint.keyword, mode=constraint.mode))
        if isinstance(constraint, OntologyConstraint):
            return set(
                self._manager.search_by_ontology(
                    constraint.term,
                    ontology=constraint.ontology,
                    include_descendants=constraint.include_descendants,
                )
            )
        if isinstance(constraint, OverlapConstraint):
            return self._evaluate_interval(constraint)
        if isinstance(constraint, RegionConstraint):
            return self._evaluate_region(constraint)
        if isinstance(constraint, TypeConstraint):
            return self._evaluate_type(constraint, candidates)
        if isinstance(constraint, PathConstraint):
            return self._evaluate_path(constraint)
        if isinstance(constraint, OrConstraint):
            matched: set[str] = set()
            for part in constraint.parts:
                matched |= self._evaluate(part, candidates)
            return matched
        if isinstance(constraint, NotConstraint):
            # Negation only needs to rule annotations *out of the running*:
            # when earlier subqueries already shrank the candidate set, that
            # set is the universe — materializing every annotation id again
            # would be wasted work (the executor intersects with candidates
            # right after anyway).
            if candidates is not None:
                universe = set(candidates)
            else:
                universe = set(self._all_annotation_ids())
            return universe - self._evaluate(constraint.inner, universe)
        raise QueryExecutionError(f"unknown constraint type {type(constraint).__name__}")

    def _evaluate_interval(self, constraint: OverlapConstraint) -> set[str]:
        referents = self._manager.substructures.overlapping_intervals(
            constraint.domain, constraint.start, constraint.end
        )
        return self._annotations_meeting_count(referents, constraint.min_count)

    def _evaluate_region(self, constraint: RegionConstraint) -> set[str]:
        referents = self._manager.substructures.overlapping_regions(
            constraint.space, constraint.lo, constraint.hi
        )
        return self._annotations_meeting_count(referents, constraint.min_count)

    def _annotations_meeting_count(self, referents: Iterable, min_count: int) -> set[str]:
        """Annotations with at least *min_count* of the matching referents.

        This implements the paper's "images having at least 2 regions
        annotated with T" style count constraint.  The whole referent batch is
        handed to the a-graph in one call, which walks the label-indexed
        ``annotates`` in-edges and accumulates a :class:`collections.Counter`.
        """
        counts = self._manager.agraph.annotation_counts(
            referent.referent_id for referent in referents
        )
        return {annotation_id for annotation_id, count in counts.items() if count >= min_count}

    def _evaluate_type(self, constraint: TypeConstraint, candidates: set[str] | None = None) -> set[str]:
        matches: set[str] = set()
        wanted = constraint.data_type.lower()
        if candidates is None:
            scanned = self._manager.annotations()
        else:
            scanned = [self._manager.annotation(annotation_id) for annotation_id in candidates]
        for annotation in scanned:
            for referent in annotation.referents:
                if referent.ref.data_type.value == wanted or referent.ref.data_type.name.lower() == wanted:
                    matches.add(annotation.annotation_id)
                    break
        return matches

    def _evaluate_path(self, constraint: PathConstraint) -> set[str]:
        """Contents lying on a bounded a-graph path from a source to a target.

        Two multi-source bounded BFS sweeps replace the former
        |sources| x |targets| pairwise ``path()`` loop: one sweep from the
        source set, one from the target set, each depth-limited to
        ``max_length``.  A node is part of a qualifying connection exactly
        when its distance-to-nearest-source plus distance-to-nearest-target
        stays within the bound — a superset of the nodes the pairwise
        shortest-path walk used to collect (which kept only one witness path
        per pair).
        """
        sources = set(self._manager.search_by_keyword(constraint.from_keyword))
        targets = set(self._manager.search_by_keyword(constraint.to_keyword))
        if not sources or not targets:
            return set()
        agraph = self._manager.agraph
        bound = constraint.max_length
        from_sources = agraph.multi_source_distances(sources, max_depth=bound)
        from_targets = agraph.multi_source_distances(targets, max_depth=bound)
        graph = agraph.graph
        reachable: set[str] = set()
        for node, source_distance in from_sources.items():
            target_distance = from_targets.get(node)
            if target_distance is None or source_distance + target_distance > bound:
                continue
            if graph.node(node).kind == "content":
                reachable.add(node)
        return reachable

    # -- collation ------------------------------------------------------------

    def _collate(self, query: Query, surviving: list[str], result: QueryResult) -> None:
        limited = surviving if query.limit is None else surviving[: query.limit]
        if query.return_kind is ReturnKind.CONTENTS:
            result.annotation_ids = limited
            result.fragments = [self._manager.contents.get(annotation_id) for annotation_id in limited]
        elif query.return_kind is ReturnKind.REFERENTS:
            result.annotation_ids = limited
            referents = []
            seen = set()
            for annotation_id in limited:
                for referent in self._manager.annotation(annotation_id).referents:
                    if referent.referent_id not in seen:
                        seen.add(referent.referent_id)
                        referents.append(referent)
            result.referents = referents
        else:  # GRAPH
            result.annotation_ids = limited
            result.subgraphs = self._build_subgraphs(limited)

    def _build_subgraphs(self, annotation_ids: list[str]) -> list[ConnectionSubgraph]:
        """Group surviving annotations into connected a-graph components.

        Each connected subgraph forms one result page, matching the paper:
        "each connected subgraph forms a result page".  Every subgraph is then
        decorated with its per-type witness metadata so the result is a
        "type-extended connection subgraph".

        Grouping asks the a-graph's incremental component index for each
        annotation's component root (O(alpha) per id) instead of running a
        BFS component sweep per result page.
        """
        agraph = self._manager.agraph
        by_component: dict = {}
        for annotation_id in annotation_ids:
            root = agraph.component_root(annotation_id)
            by_component.setdefault(root, []).append(annotation_id)
        subgraphs: list[ConnectionSubgraph] = []
        for grouped in by_component.values():
            members = sorted(grouped)
            if len(members) >= 2:
                subgraph = agraph.connect(*members)
            else:
                subgraph = ConnectionSubgraph(terminals=tuple(members), nodes=set(members))
            self._extend_with_types(subgraph, members)
            subgraphs.append(subgraph)
        return subgraphs

    def _extend_with_types(self, subgraph: ConnectionSubgraph, members: list[str]) -> None:
        """Attach per-type referents and intersections to a connection subgraph.

        This is the paper's "type-extended connection subgraph": for every data
        type present among the subgraph's annotations, record the referents of
        that type and the intersection of any co-located (overlapping) referents
        of the same type on the same object, using the SUB-X ``intersect``
        operator.
        """
        from repro.spatial.operators import if_overlap, intersect

        by_type: dict[str, list] = {}
        for annotation_id in members:
            for referent in self._manager.annotation(annotation_id).referents:
                by_type.setdefault(referent.ref.data_type.value, []).append(referent)
        for data_type, referents in by_type.items():
            intersections = []
            for position, left in enumerate(referents):
                for right in referents[position + 1:]:
                    if left.ref.object_id != right.ref.object_id:
                        continue
                    left_extent = left.ref.interval or left.ref.rect
                    right_extent = right.ref.interval or right.ref.rect
                    if left_extent is None or right_extent is None:
                        continue
                    if if_overlap(left_extent, right_extent):
                        shared = intersect(left_extent, right_extent)
                        if shared is not None:
                            intersections.append(
                                {
                                    "object": left.ref.object_id,
                                    "referents": [left.referent_id, right.referent_id],
                                }
                            )
            subgraph.attach_type_extension(
                data_type, [referent.referent_id for referent in referents], intersections
            )

    def _all_annotation_ids(self) -> list[str]:
        return [annotation.annotation_id for annotation in self._manager.annotations()]
