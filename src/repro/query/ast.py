"""Abstract syntax tree for the Graphitti query language.

A :class:`Query` is a return specification plus a conjunction of
:class:`Constraint` objects.  Each constraint targets one kind of data
element (annotation content, ontology, 1D substructure, 2D/3D substructure, a
data type, or an a-graph path), which is exactly the per-type separation the
paper's planner exploits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class ReturnKind(enum.Enum):
    """What a query returns (the three result kinds in the paper)."""

    CONTENTS = "contents"        # (b) fragments of / whole annotation contents
    REFERENTS = "referents"      # (a) collection of heterogeneous substructures
    GRAPH = "graph"              # (c) connection subgraphs


class Target(enum.Enum):
    """Which data element a constraint is evaluated against."""

    CONTENT = "content"
    ONTOLOGY = "ontology"
    INTERVAL = "interval"
    REGION = "region"
    TYPE = "type"
    PATH = "path"
    COMPOSITE = "composite"


class Constraint:
    """Base class for query constraints."""

    target: Target

    def describe(self) -> str:
        """Human-readable one-line description (used in plan explanations)."""
        raise NotImplementedError


@dataclass
class KeywordConstraint(Constraint):
    """Annotation content contains the keyword(s)."""

    keyword: str
    mode: str = "and"
    target: Target = field(default=Target.CONTENT, init=False)

    def describe(self) -> str:
        return f"content CONTAINS {self.keyword!r}"


@dataclass
class OntologyConstraint(Constraint):
    """Annotation points at an ontology term (optionally with descendants)."""

    term: str
    ontology: str | None = None
    include_descendants: bool = True
    target: Target = field(default=Target.ONTOLOGY, init=False)

    def describe(self) -> str:
        suffix = "+desc" if self.include_descendants else ""
        where = f"@{self.ontology}" if self.ontology else ""
        return f"referent REFERS {self.term!r}{where}{suffix}"


@dataclass
class OverlapConstraint(Constraint):
    """A referent's 1D extent overlaps ``[start, end]`` in a coordinate domain."""

    domain: str
    start: float
    end: float
    min_count: int = 1
    target: Target = field(default=Target.INTERVAL, init=False)

    def describe(self) -> str:
        return f"interval OVERLAPS {self.domain}[{self.start},{self.end}] (>= {self.min_count})"


@dataclass
class RegionConstraint(Constraint):
    """A referent's 2D/3D extent overlaps a box in a coordinate space."""

    space: str
    lo: tuple[float, ...]
    hi: tuple[float, ...]
    min_count: int = 1
    target: Target = field(default=Target.REGION, init=False)

    def describe(self) -> str:
        return f"region OVERLAPS {self.space}{self.lo}..{self.hi} (>= {self.min_count})"


@dataclass
class TypeConstraint(Constraint):
    """Annotation has at least one referent of the given data type."""

    data_type: str
    target: Target = field(default=Target.TYPE, init=False)

    def describe(self) -> str:
        return f"type {self.data_type}"


@dataclass
class PathConstraint(Constraint):
    """Two annotations must be connected by a path in the a-graph."""

    from_keyword: str
    to_keyword: str
    max_length: int = 6
    target: Target = field(default=Target.PATH, init=False)

    def describe(self) -> str:
        return f"path {self.from_keyword!r} ~> {self.to_keyword!r} (<= {self.max_length})"


@dataclass
class NotConstraint(Constraint):
    """Negation: annotations that do *not* satisfy the inner constraint."""

    inner: Constraint
    target: Target = field(default=Target.COMPOSITE, init=False)

    def describe(self) -> str:
        return f"NOT ({self.inner.describe()})"


@dataclass
class OrConstraint(Constraint):
    """Disjunction: annotations satisfying at least one sub-constraint."""

    parts: tuple[Constraint, ...]
    target: Target = field(default=Target.COMPOSITE, init=False)

    def describe(self) -> str:
        return "ANY (" + " | ".join(part.describe() for part in self.parts) + ")"


@dataclass
class Query:
    """A parsed/assembled query: a return spec plus a conjunction of constraints."""

    return_kind: ReturnKind = ReturnKind.CONTENTS
    constraints: list[Constraint] = field(default_factory=list)
    limit: int | None = None

    def add(self, constraint: Constraint) -> "Query":
        """Append a constraint (returns self for chaining)."""
        self.constraints.append(constraint)
        return self

    def constraints_for(self, target: Target) -> list[Constraint]:
        """Constraints targeting one kind of data element."""
        return [constraint for constraint in self.constraints if constraint.target is target]

    def targets_present(self) -> list[Target]:
        """The distinct data-element targets this query touches."""
        seen: list[Target] = []
        for constraint in self.constraints:
            if constraint.target not in seen:
                seen.append(constraint.target)
        return seen

    def describe(self) -> str:
        """Human-readable multi-line description of the whole query."""
        lines = [f"SELECT {self.return_kind.value}", "WHERE {"]
        for constraint in self.constraints:
            lines.append(f"  {constraint.describe()}")
        lines.append("}")
        if self.limit is not None:
            lines.append(f"LIMIT {self.limit}")
        return "\n".join(lines)
