"""The Graphitti query language (GQL) and its processor.

"Queries in Graphitti are essentially graph queries that resemble SPARQL
expressions extended to handle (i) XQuery-like path expressions on a-graphs,
(ii) type-specific predicates on interval trees, (iii) XQuery fragments to
retrieve fragments of annotation.  The result of a query can be (a) a
collection of heterogeneous substructures (b) fragments of XML documents and
(c) connection subgraphs.  The query processor operates by separating
subqueries that belong to the different types of data elements, finding a
feasible order among these subqueries, and collating partial results."

This package implements GQL end to end:

* :mod:`repro.query.ast` -- the query AST (constraints + return spec),
* :mod:`repro.query.tokenizer` -- the lexer,
* :mod:`repro.query.parser` -- the recursive-descent parser,
* :mod:`repro.query.planner` -- per-type subquery separation + cost-based
  ordering (modes: off / static / cost),
* :mod:`repro.query.stats` -- the live statistics catalogue and cardinality
  estimator feeding the cost-based planner,
* :mod:`repro.query.idspace` -- the dense annotation-id interner backing the
  executor's bitset candidate sets,
* :mod:`repro.query.executor` -- adaptive constraint evaluation (semi-join
  probes, bitset narrowing) and result collation,
* :mod:`repro.query.result` -- the result model,
* :mod:`repro.query.builder` -- a programmatic query builder.
"""

from repro.query.ast import (
    Constraint,
    KeywordConstraint,
    NotConstraint,
    OntologyConstraint,
    OrConstraint,
    OverlapConstraint,
    PathConstraint,
    Query,
    RegionConstraint,
    ReturnKind,
    TypeConstraint,
)
from repro.query.builder import QueryBuilder
from repro.query.executor import QueryExecutor
from repro.query.idspace import AnnotationIdSpace
from repro.query.parser import parse_query
from repro.query.planner import QueryPlan, QueryPlanner
from repro.query.result import QueryResult
from repro.query.stats import CardinalityEstimator, StatisticsCatalogue

__all__ = [
    "Query",
    "Constraint",
    "KeywordConstraint",
    "OntologyConstraint",
    "OverlapConstraint",
    "RegionConstraint",
    "TypeConstraint",
    "PathConstraint",
    "NotConstraint",
    "OrConstraint",
    "ReturnKind",
    "QueryBuilder",
    "QueryPlanner",
    "QueryPlan",
    "QueryExecutor",
    "QueryResult",
    "AnnotationIdSpace",
    "StatisticsCatalogue",
    "CardinalityEstimator",
    "parse_query",
]
