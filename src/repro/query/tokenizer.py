"""Lexer for the Graphitti query language.

GQL is a small, line-friendly language.  The tokenizer produces a flat token
stream the parser consumes.  Tokens: keywords (uppercase bare words that match
the grammar), identifiers, quoted strings, numbers, and punctuation
(``{ } ( ) [ ] , . @ ..``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import QuerySyntaxError


class TokenType(enum.Enum):
    """Token categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    STRING = "string"
    NUMBER = "number"
    PUNCT = "punct"
    EOF = "eof"


#: Reserved words recognised as keywords (case-insensitive on input, stored
#: upper-cased).
KEYWORDS = frozenset(
    {
        "SELECT", "WHERE", "LIMIT",
        "CONTENTS", "REFERENTS", "GRAPH",
        "CONTENT", "REFERENT", "TYPE", "PATH",
        "CONTAINS", "REFERS", "OVERLAPS", "IN", "INTERVAL", "REGION",
        "WITH", "DESCENDANTS", "NODESC", "MINCOUNT", "MAXLEN", "TO", "AND", "OR",
        "NOT", "ANY",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        """True when the token is a keyword equal to any of *names*."""
        return self.type is TokenType.KEYWORD and self.value in names

    def is_punct(self, *values: str) -> bool:
        """True when the token is punctuation equal to any of *values*."""
        return self.type is TokenType.PUNCT and self.value in values


class Tokenizer:
    """Converts GQL source text into a list of :class:`Token`."""

    _TWO_CHAR = ("..",)
    _SINGLE = set("{}()[],.@")

    def __init__(self, text: str):
        self.text = text
        self.position = 0

    def tokenize(self) -> list[Token]:
        """Produce the full token list, ending with an EOF token."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.type is TokenType.EOF:
                return tokens

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self.position >= len(self.text):
            return Token(TokenType.EOF, "", self.position)
        start = self.position
        char = self.text[self.position]
        if char in ('"', "'"):
            return self._read_string(char)
        if char.isdigit() or (char == "-" and self._peek_next_is_digit()):
            return self._read_number()
        if self.text[self.position : self.position + 2] in self._TWO_CHAR:
            self.position += 2
            return Token(TokenType.PUNCT, "..", start)
        if char in self._SINGLE:
            self.position += 1
            return Token(TokenType.PUNCT, char, start)
        if char.isalpha() or char == "_":
            return self._read_word()
        raise QuerySyntaxError(f"unexpected character {char!r} at offset {self.position}")

    def _skip_whitespace_and_comments(self) -> None:
        while self.position < len(self.text):
            char = self.text[self.position]
            if char.isspace():
                self.position += 1
            elif char == "#":
                while self.position < len(self.text) and self.text[self.position] != "\n":
                    self.position += 1
            else:
                return

    def _peek_next_is_digit(self) -> bool:
        return self.position + 1 < len(self.text) and self.text[self.position + 1].isdigit()

    def _read_string(self, quote: str) -> Token:
        start = self.position
        self.position += 1
        chars = []
        while self.position < len(self.text) and self.text[self.position] != quote:
            if self.text[self.position] == "\\" and self.position + 1 < len(self.text):
                self.position += 1
            chars.append(self.text[self.position])
            self.position += 1
        if self.position >= len(self.text):
            raise QuerySyntaxError(f"unterminated string starting at offset {start}")
        self.position += 1  # closing quote
        return Token(TokenType.STRING, "".join(chars), start)

    def _read_number(self) -> Token:
        start = self.position
        if self.text[self.position] == "-":
            self.position += 1
        seen_dot = False
        while self.position < len(self.text):
            char = self.text[self.position]
            if char.isdigit():
                self.position += 1
            elif char == "." and not seen_dot and self._peek_next_is_digit():
                seen_dot = True
                self.position += 1
            else:
                break
        return Token(TokenType.NUMBER, self.text[start : self.position], start)

    def _read_word(self) -> Token:
        start = self.position
        while self.position < len(self.text):
            char = self.text[self.position]
            if char.isalnum() or char in "_:-":
                self.position += 1
            else:
                break
        word = self.text[start : self.position]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, start)
        return Token(TokenType.IDENT, word, start)


def tokenize(text: str) -> list[Token]:
    """Tokenize GQL source text."""
    return Tokenizer(text).tokenize()
