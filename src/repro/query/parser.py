"""Recursive-descent parser for the Graphitti query language.

Grammar (EBNF-ish)::

    query       = "SELECT" return_kind "WHERE" "{" constraint* "}" [ "LIMIT" NUMBER ]
    return_kind = "CONTENTS" | "REFERENTS" | "GRAPH"
    constraint  = keyword | ontology | interval | region | type | path
    keyword     = "CONTENT" "CONTAINS" STRING
    ontology    = "REFERENT" "REFERS" STRING [ "IN" IDENT ]
                  [ "WITH" "DESCENDANTS" | "NODESC" ]
    interval    = "INTERVAL" "OVERLAPS" IDENT "[" NUMBER "," NUMBER "]"
                  [ "MINCOUNT" NUMBER ]
    region      = "REGION" "OVERLAPS" IDENT "[" coords "]" ".." "[" coords "]"
                  [ "MINCOUNT" NUMBER ]
    type        = "TYPE" IDENT
    path        = "PATH" STRING "TO" STRING [ "MAXLEN" NUMBER ]
    coords      = NUMBER ("," NUMBER)*

The parser is intentionally forgiving about statement order inside the
``WHERE`` block; ordering is the planner's job, not the grammar's.
"""

from __future__ import annotations

from repro.errors import QuerySyntaxError
from repro.query.ast import (
    KeywordConstraint,
    NotConstraint,
    OntologyConstraint,
    OrConstraint,
    OverlapConstraint,
    PathConstraint,
    Query,
    RegionConstraint,
    ReturnKind,
    TypeConstraint,
)
from repro.query.tokenizer import Token, TokenType, tokenize

_RETURN_KINDS = {
    "CONTENTS": ReturnKind.CONTENTS,
    "REFERENTS": ReturnKind.REFERENTS,
    "GRAPH": ReturnKind.GRAPH,
}


class Parser:
    """Recursive-descent parser producing a :class:`Query`."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token helpers --------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _expect_keyword(self, *names: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*names):
            raise QuerySyntaxError(
                f"expected one of {names} at offset {token.position}, got {token.value!r}"
            )
        return self._advance()

    def _expect_punct(self, value: str) -> Token:
        token = self._peek()
        if not token.is_punct(value):
            raise QuerySyntaxError(
                f"expected {value!r} at offset {token.position}, got {token.value!r}"
            )
        return self._advance()

    def _expect(self, token_type: TokenType) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise QuerySyntaxError(
                f"expected {token_type.value} at offset {token.position}, got {token.value!r}"
            )
        return self._advance()

    def _number(self) -> float:
        token = self._expect(TokenType.NUMBER)
        value = float(token.value)
        return value

    # -- grammar --------------------------------------------------------------

    def parse(self) -> Query:
        """Parse the token stream into a :class:`Query`."""
        self._expect_keyword("SELECT")
        kind_token = self._expect_keyword("CONTENTS", "REFERENTS", "GRAPH")
        query = Query(return_kind=_RETURN_KINDS[kind_token.value])
        self._expect_keyword("WHERE")
        self._expect_punct("{")
        while not self._peek().is_punct("}"):
            if self._peek().type is TokenType.EOF:
                raise QuerySyntaxError("unterminated WHERE block")
            query.add(self._parse_constraint())
        self._expect_punct("}")
        if self._peek().is_keyword("LIMIT"):
            self._advance()
            query.limit = int(self._number())
        if self._peek().type is not TokenType.EOF:
            token = self._peek()
            raise QuerySyntaxError(f"trailing tokens after query at offset {token.position}")
        return query

    def _parse_constraint(self):
        token = self._peek()
        if token.is_keyword("CONTENT"):
            return self._parse_keyword()
        if token.is_keyword("REFERENT"):
            return self._parse_ontology()
        if token.is_keyword("INTERVAL"):
            return self._parse_interval()
        if token.is_keyword("REGION"):
            return self._parse_region()
        if token.is_keyword("TYPE"):
            return self._parse_type()
        if token.is_keyword("PATH"):
            return self._parse_path()
        if token.is_keyword("NOT"):
            return self._parse_not()
        if token.is_keyword("ANY"):
            return self._parse_any()
        raise QuerySyntaxError(
            f"unexpected token {token.value!r} at offset {token.position} in WHERE block"
        )

    def _parse_not(self) -> NotConstraint:
        self._expect_keyword("NOT")
        self._expect_punct("{")
        inner = self._parse_constraint()
        self._expect_punct("}")
        return NotConstraint(inner)

    def _parse_any(self) -> OrConstraint:
        self._expect_keyword("ANY")
        self._expect_punct("{")
        parts = []
        while not self._peek().is_punct("}"):
            if self._peek().type is TokenType.EOF:
                raise QuerySyntaxError("unterminated ANY block")
            parts.append(self._parse_constraint())
        self._expect_punct("}")
        if len(parts) < 2:
            raise QuerySyntaxError("ANY block requires at least two constraints")
        return OrConstraint(tuple(parts))

    def _parse_keyword(self) -> KeywordConstraint:
        self._expect_keyword("CONTENT")
        self._expect_keyword("CONTAINS")
        keyword = self._expect(TokenType.STRING).value
        return KeywordConstraint(keyword=keyword)

    def _parse_ontology(self) -> OntologyConstraint:
        self._expect_keyword("REFERENT")
        self._expect_keyword("REFERS")
        term = self._expect(TokenType.STRING).value
        ontology = None
        include_descendants = True
        if self._peek().is_keyword("IN"):
            self._advance()
            ontology = self._expect(TokenType.IDENT).value
        if self._peek().is_keyword("WITH"):
            self._advance()
            self._expect_keyword("DESCENDANTS")
            include_descendants = True
        elif self._peek().is_keyword("NODESC"):
            self._advance()
            include_descendants = False
        return OntologyConstraint(term=term, ontology=ontology, include_descendants=include_descendants)

    def _parse_interval(self) -> OverlapConstraint:
        self._expect_keyword("INTERVAL")
        self._expect_keyword("OVERLAPS")
        domain = self._expect(TokenType.IDENT).value
        self._expect_punct("[")
        start = self._number()
        self._expect_punct(",")
        end = self._number()
        self._expect_punct("]")
        min_count = 1
        if self._peek().is_keyword("MINCOUNT"):
            self._advance()
            min_count = int(self._number())
        return OverlapConstraint(domain=domain, start=start, end=end, min_count=min_count)

    def _parse_region(self) -> RegionConstraint:
        self._expect_keyword("REGION")
        self._expect_keyword("OVERLAPS")
        space = self._expect(TokenType.IDENT).value
        lo = self._parse_coords()
        self._expect_punct("..")
        hi = self._parse_coords()
        if len(lo) != len(hi):
            raise QuerySyntaxError("region corners must have equal dimensionality")
        min_count = 1
        if self._peek().is_keyword("MINCOUNT"):
            self._advance()
            min_count = int(self._number())
        return RegionConstraint(space=space, lo=lo, hi=hi, min_count=min_count)

    def _parse_coords(self) -> tuple[float, ...]:
        self._expect_punct("[")
        coords = [self._number()]
        while self._peek().is_punct(","):
            self._advance()
            coords.append(self._number())
        self._expect_punct("]")
        return tuple(coords)

    def _parse_type(self) -> TypeConstraint:
        self._expect_keyword("TYPE")
        data_type = self._expect(TokenType.IDENT).value
        return TypeConstraint(data_type=data_type)

    def _parse_path(self) -> PathConstraint:
        self._expect_keyword("PATH")
        source = self._expect(TokenType.STRING).value
        self._expect_keyword("TO")
        target = self._expect(TokenType.STRING).value
        max_length = 6
        if self._peek().is_keyword("MAXLEN"):
            self._advance()
            max_length = int(self._number())
        return PathConstraint(from_keyword=source, to_keyword=target, max_length=max_length)


def parse_query(text: str) -> Query:
    """Tokenize and parse GQL source text into a :class:`Query`."""
    return Parser(tokenize(text)).parse()
