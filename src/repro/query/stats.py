"""Live statistics catalogue and cardinality estimation for query planning.

The paper's query processor "find[s] a feasible order among these
subqueries"; finding a *good* order needs to know how big each subquery's
match set is.  The :class:`StatisticsCatalogue` maintains the counts that
question needs, incrementally, as annotations commit and delete:

* per-data-type annotation-id sets (doubling as the O(answer) evaluation
  index for ``TYPE`` constraints),
* per-ontology-term annotation counts,
* the live annotation total.

The remaining statistics are read live from substrates that already maintain
them incrementally: per-term document frequencies from the inverted keyword
index, per-domain/per-space extent summaries from the
:class:`~repro.core.substructure_store.SubstructureStore`, and size/degree
aggregates from the a-graph.

:class:`CardinalityEstimator` turns those statistics into per-constraint
row estimates the cost-based planner orders by and the adaptive executor
uses to decide between materializing a constraint's match set and
semi-join-probing the surviving candidates against the index.
"""

from __future__ import annotations

from typing import Any

from repro.datatypes.base import DataType
from repro.query.ast import (
    Constraint,
    KeywordConstraint,
    NotConstraint,
    OntologyConstraint,
    OrConstraint,
    OverlapConstraint,
    PathConstraint,
    RegionConstraint,
    TypeConstraint,
)

_EMPTY: frozenset[str] = frozenset()


def canonical_type(data_type: str) -> str:
    """Resolve a type name ('dna', 'DNA', 'dna_sequence') to its enum value."""
    wanted = data_type.lower()
    try:
        return DataType(wanted).value
    except ValueError:
        pass
    try:
        return DataType[wanted.upper()].value
    except KeyError:
        return wanted


class StatisticsCatalogue:
    """Incrementally maintained per-type and per-term annotation statistics.

    Fed by ``Graphitti.commit()`` / ``delete_annotation()`` (and the
    persistence layer's ``wire_annotation``, so snapshot load and WAL
    recovery rebuild it record by record).  :meth:`rebuild` recomputes
    everything from scratch; tests assert the incremental state equals it
    across the full durability lifecycle.
    """

    def __init__(self) -> None:
        self._annotation_total = 0
        # DataType.value -> ids of annotations with >= 1 referent of that type
        self._by_type: dict[str, set[str]] = {}
        # ontology term -> number of annotations pointing at it (content or referent)
        self._term_counts: dict[str, int] = {}

    # -- incremental maintenance ----------------------------------------------

    def on_commit(self, annotation) -> None:
        """Account a newly committed annotation."""
        annotation_id = annotation.annotation_id
        self._annotation_total += 1
        for value in {referent.ref.data_type.value for referent in annotation.referents}:
            self._by_type.setdefault(value, set()).add(annotation_id)
        for term in annotation.ontology_terms():
            self._term_counts[term] = self._term_counts.get(term, 0) + 1

    def on_delete(self, annotation) -> None:
        """Remove a deleted annotation's contribution."""
        annotation_id = annotation.annotation_id
        self._annotation_total -= 1
        for value in {referent.ref.data_type.value for referent in annotation.referents}:
            members = self._by_type.get(value)
            if members is not None:
                members.discard(annotation_id)
                if not members:
                    del self._by_type[value]
        for term in annotation.ontology_terms():
            remaining = self._term_counts.get(term, 0) - 1
            if remaining > 0:
                self._term_counts[term] = remaining
            else:
                self._term_counts.pop(term, None)

    def on_update(self, annotation, old_types: set[str], old_terms: set[str]) -> None:
        """Delta-adjust for an in-place update (the live total is unchanged).

        *old_types* / *old_terms* are the annotation's pre-update referent
        type values and ontology terms; only the symmetric differences touch
        the catalogue, so an update that edits a title costs nothing here.
        """
        annotation_id = annotation.annotation_id
        new_types = {referent.ref.data_type.value for referent in annotation.referents}
        for value in old_types - new_types:
            members = self._by_type.get(value)
            if members is not None:
                members.discard(annotation_id)
                if not members:
                    del self._by_type[value]
        for value in new_types - old_types:
            self._by_type.setdefault(value, set()).add(annotation_id)
        new_terms = set(annotation.ontology_terms())
        for term in old_terms - new_terms:
            remaining = self._term_counts.get(term, 0) - 1
            if remaining > 0:
                self._term_counts[term] = remaining
            else:
                self._term_counts.pop(term, None)
        for term in new_terms - old_terms:
            self._term_counts[term] = self._term_counts.get(term, 0) + 1

    def rebuild(self, manager) -> None:
        """Recompute the catalogue from *manager*'s committed annotations.

        Reads type values and ontology terms straight off the columnar store
        (packed per-row spans) — no annotation objects are materialized.
        """
        self._annotation_total = 0
        self._by_type = {}
        self._term_counts = {}
        columns = manager.columns
        refcols = manager.substructures.columns
        for annotation_id in manager.annotation_ids():
            slot = manager.idspace.slot(annotation_id)
            if slot is None or not columns.is_live(slot):
                continue  # pragma: no cover - order and columns stay in sync
            types, terms = columns.stat_row(slot, refcols)
            self._annotation_total += 1
            for value in types:
                self._by_type.setdefault(value, set()).add(annotation_id)
            for term in terms:
                self._term_counts[term] = self._term_counts.get(term, 0) + 1

    # -- reads ----------------------------------------------------------------

    @property
    def annotation_total(self) -> int:
        """Number of live annotations."""
        return self._annotation_total

    def annotations_of_type(self, data_type: str) -> frozenset[str]:
        """Ids of annotations with at least one referent of *data_type*.

        This is the ``TYPE`` constraint's evaluation index: O(answer) reads
        instead of the former full annotation scan.  Returns a defensive
        copy; hot paths that only need membership tests or intersections
        should use :meth:`members_of_type` instead.
        """
        members = self._by_type.get(canonical_type(data_type))
        return frozenset(members) if members is not None else _EMPTY

    def members_of_type(self, data_type: str) -> frozenset[str] | set[str]:
        """The live id set for *data_type* — O(1), no copy.

        Callers must treat the returned set as read-only: it is the
        catalogue's own index, mutated by commit/delete.
        """
        return self._by_type.get(canonical_type(data_type), _EMPTY)

    def type_count(self, data_type: str) -> int:
        """Number of annotations with a referent of *data_type* (exact)."""
        members = self._by_type.get(canonical_type(data_type))
        return len(members) if members is not None else 0

    def term_annotation_count(self, term: str) -> int:
        """Number of annotations pointing at ontology *term* (exact)."""
        return self._term_counts.get(term, 0)

    def counts(self) -> dict[str, Any]:
        """A comparable snapshot of every incrementally maintained count.

        Two catalogues over the same logical state (e.g. the live one and a
        :meth:`rebuild` from scratch) return equal dicts.
        """
        return {
            "annotations": self._annotation_total,
            "by_type": {value: len(members) for value, members in sorted(self._by_type.items())},
            "ontology_terms": dict(sorted(self._term_counts.items())),
        }

    def summary(self) -> dict[str, Any]:
        """Compact summary merged into ``Graphitti.statistics()``."""
        return {
            "annotations": self._annotation_total,
            "annotations_by_type": {
                value: len(members) for value, members in sorted(self._by_type.items())
            },
            "distinct_ontology_terms": len(self._term_counts),
        }


class CardinalityEstimator:
    """Per-constraint row estimates from the live statistics.

    Estimates are *planning* inputs, not answers: each one bounds how many
    annotations a constraint's match set could hold given the catalogue, the
    inverted index's document frequencies, the substructure store's extent
    summaries, and the a-graph aggregates.  They only need to be good enough
    to rank constraints and to decide probe vs. materialize.
    """

    def __init__(self, manager):
        self._manager = manager

    def estimate(self, constraint: Constraint) -> int:
        """Estimated number of annotations matching *constraint*."""
        manager = self._manager
        total = manager.annotation_count
        if isinstance(constraint, KeywordConstraint):
            return min(
                manager.contents.keyword_document_frequency(
                    constraint.keyword, mode=constraint.mode
                ),
                total,
            )
        if isinstance(constraint, TypeConstraint):
            return manager.stats_catalogue.type_count(constraint.data_type)
        if isinstance(constraint, OntologyConstraint):
            terms = manager._expand_ontology_term(  # noqa: SLF001 - planner-side expansion
                constraint.term, constraint.ontology, constraint.include_descendants
            )
            catalogue = manager.stats_catalogue
            return min(sum(catalogue.term_annotation_count(term) for term in terms), total)
        if isinstance(constraint, OverlapConstraint):
            return self._estimate_interval(constraint, total)
        if isinstance(constraint, RegionConstraint):
            return self._estimate_region(constraint, total)
        if isinstance(constraint, PathConstraint):
            # Bounded by the smaller endpoint set; the BFS sweeps cannot
            # produce more content nodes than reachable annotations.
            frequency = min(
                manager.contents.keyword_document_frequency(constraint.from_keyword),
                manager.contents.keyword_document_frequency(constraint.to_keyword),
            )
            # Path evaluation touches a neighborhood, not just the endpoints;
            # scale by the a-graph's mean degree as a reach factor.
            graph = manager.agraph
            degree = (2 * graph.edge_count / graph.node_count) if graph.node_count else 1.0
            return min(int(frequency * max(degree, 1.0)), total)
        if isinstance(constraint, OrConstraint):
            return min(sum(self.estimate(part) for part in constraint.parts), total)
        if isinstance(constraint, NotConstraint):
            return max(total - self.estimate(constraint.inner), 0)
        return total

    def _estimate_interval(self, constraint: OverlapConstraint, total: int) -> int:
        store = self._manager.substructures
        summary = store.interval_summary(constraint.domain)
        bounds = store.interval_bounds(constraint.domain)
        if summary is None or summary.count == 0 or bounds is None:
            return 0
        lo, hi = bounds
        if constraint.end < lo or constraint.start > hi:
            return 0
        span = max(hi - lo, 1e-9)
        # Uniformity assumption: an indexed interval of mean length m overlaps
        # the window [s, e] when its start falls in [s - m, e].
        fraction = min(1.0, ((constraint.end - constraint.start) + summary.mean_measure()) / span)
        matched_referents = summary.count * fraction
        return max(1, min(int(matched_referents), total))

    def _estimate_region(self, constraint: RegionConstraint, total: int) -> int:
        store = self._manager.substructures
        summary = store.region_summary(constraint.space)
        bounds = store.region_bounds(constraint.space)
        if summary is None or summary.count == 0 or bounds is None:
            return 0
        bounds_lo, bounds_hi = bounds
        dimension = len(bounds_lo)
        if len(constraint.lo) != dimension:
            return 0
        fraction = 1.0
        mean_edge = summary.mean_measure() ** (1.0 / dimension)
        for axis in range(dimension):
            if constraint.hi[axis] < bounds_lo[axis] or constraint.lo[axis] > bounds_hi[axis]:
                return 0
            span = max(bounds_hi[axis] - bounds_lo[axis], 1e-9)
            extent = constraint.hi[axis] - constraint.lo[axis]
            fraction *= min(1.0, (extent + mean_edge) / span)
        matched_referents = summary.count * fraction
        return max(1, min(int(matched_referents), total))
