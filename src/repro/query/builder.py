"""Programmatic query builder.

For callers who prefer not to write GQL text, :class:`QueryBuilder` assembles
the same :class:`~repro.query.ast.Query` AST fluently.  The example scripts use
it so the queries read like the paper's prose.
"""

from __future__ import annotations

from typing import Sequence

from repro.query.ast import (
    Constraint,
    KeywordConstraint,
    NotConstraint,
    OntologyConstraint,
    OrConstraint,
    OverlapConstraint,
    PathConstraint,
    Query,
    RegionConstraint,
    ReturnKind,
    TypeConstraint,
)


class QueryBuilder:
    """Fluent builder for :class:`~repro.query.ast.Query`."""

    def __init__(self, return_kind: ReturnKind = ReturnKind.CONTENTS):
        self._query = Query(return_kind=return_kind)

    @classmethod
    def contents(cls) -> "QueryBuilder":
        """Start a query returning annotation contents."""
        return cls(ReturnKind.CONTENTS)

    @classmethod
    def referents(cls) -> "QueryBuilder":
        """Start a query returning heterogeneous substructures."""
        return cls(ReturnKind.REFERENTS)

    @classmethod
    def graph(cls) -> "QueryBuilder":
        """Start a query returning connection subgraphs."""
        return cls(ReturnKind.GRAPH)

    def contains(self, keyword: str, mode: str = "and") -> "QueryBuilder":
        """Add a content keyword constraint."""
        self._query.add(KeywordConstraint(keyword=keyword, mode=mode))
        return self

    def refers(self, term: str, ontology: str | None = None, include_descendants: bool = True) -> "QueryBuilder":
        """Add an ontology-reference constraint."""
        self._query.add(
            OntologyConstraint(term=term, ontology=ontology, include_descendants=include_descendants)
        )
        return self

    def overlaps_interval(self, domain: str, start: float, end: float, min_count: int = 1) -> "QueryBuilder":
        """Add a 1D overlap constraint."""
        self._query.add(OverlapConstraint(domain=domain, start=start, end=end, min_count=min_count))
        return self

    def overlaps_region(
        self,
        space: str,
        lo: Sequence[float],
        hi: Sequence[float],
        min_count: int = 1,
    ) -> "QueryBuilder":
        """Add a 2D/3D overlap constraint."""
        self._query.add(
            RegionConstraint(space=space, lo=tuple(lo), hi=tuple(hi), min_count=min_count)
        )
        return self

    def of_type(self, data_type: str) -> "QueryBuilder":
        """Add a data-type constraint."""
        self._query.add(TypeConstraint(data_type=data_type))
        return self

    def path(self, from_keyword: str, to_keyword: str, max_length: int = 6) -> "QueryBuilder":
        """Add an a-graph path constraint."""
        self._query.add(PathConstraint(from_keyword=from_keyword, to_keyword=to_keyword, max_length=max_length))
        return self

    def exclude(self, constraint: Constraint) -> "QueryBuilder":
        """Add a negated constraint (annotations NOT matching *constraint*)."""
        self._query.add(NotConstraint(constraint))
        return self

    def any_of(self, *constraints: Constraint) -> "QueryBuilder":
        """Add a disjunction: annotations matching at least one *constraint*."""
        if len(constraints) < 2:
            raise ValueError("any_of() requires at least two constraints")
        self._query.add(OrConstraint(tuple(constraints)))
        return self

    def limit(self, count: int) -> "QueryBuilder":
        """Cap the number of results."""
        self._query.limit = count
        return self

    def build(self) -> Query:
        """Return the assembled :class:`~repro.query.ast.Query`."""
        return self._query
