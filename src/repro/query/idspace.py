"""Dense annotation-id interning and big-int bitset candidate sets.

The query executor narrows a *candidate set* of annotation ids constraint by
constraint.  Hash sets of string ids make every intersection pay per-element
hashing; interning each annotation id into a dense integer slot lets the
executor represent candidate sets as plain Python ``int`` bitmaps instead,
where AND/OR/NOT are single big-int operations and cardinality is one
``int.bit_count()`` call.  Ids convert back to strings only at collation.

Slots freed by :meth:`AnnotationIdSpace.release` are recycled so the bitmaps
stay dense across delete-heavy workloads, and :attr:`live_mask` always equals
the bitset of every live annotation (the NOT-constraint universe).

**Slot-reuse contract:** a bitset is only meaningful at the mutation epoch it
was computed at — after a release, the next ``intern`` may hand the same slot
to a different annotation.  Audited for the mutation-lifecycle PR: every
bitset in the codebase is built and consumed inside one ``QueryExecutor``
execution (under the serving layer's read lock), the statistics catalogue's
TYPE index and cached query results hold *string* ids, and memoized plans
hold no bitsets — so no bitset survives across an epoch.  An in-place
``update_annotation`` deliberately keeps its slot (no release/intern), which
is what makes update cheaper than delete+recommit here.  The
delete→commit→query aliasing property test (``test_property_mutation``) pins
this.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class AnnotationIdSpace:
    """A bidirectional annotation-id <-> dense-slot interner."""

    def __init__(self) -> None:
        self._slot_of: dict[str, int] = {}
        self._id_at: list[str | None] = []
        self._free: list[int] = []
        #: Bitset with one bit set per live (interned, not released) slot.
        self.live_mask: int = 0

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, annotation_id: str) -> bool:
        return annotation_id in self._slot_of

    def intern(self, annotation_id: str) -> int:
        """Assign (or return) the dense slot for *annotation_id*."""
        slot = self._slot_of.get(annotation_id)
        if slot is not None:
            return slot
        if self._free:
            slot = self._free.pop()
            self._id_at[slot] = annotation_id
        else:
            slot = len(self._id_at)
            self._id_at.append(annotation_id)
        self._slot_of[annotation_id] = slot
        self.live_mask |= 1 << slot
        return slot

    def release(self, annotation_id: str) -> bool:
        """Free the slot for *annotation_id*; returns True when it was interned."""
        slot = self._slot_of.pop(annotation_id, None)
        if slot is None:
            return False
        self._id_at[slot] = None
        self._free.append(slot)
        self.live_mask &= ~(1 << slot)
        return True

    def slot(self, annotation_id: str) -> int | None:
        """The slot for *annotation_id*, or None when not interned."""
        return self._slot_of.get(annotation_id)

    def id_at(self, slot: int) -> str | None:
        """The annotation id occupying *slot* (None for freed slots)."""
        if 0 <= slot < len(self._id_at):
            return self._id_at[slot]
        return None

    # -- bitset conversion -----------------------------------------------------

    def to_bits(self, annotation_ids: Iterable[str]) -> int:
        """Bitset of every *interned* id in the iterable (unknown ids dropped)."""
        bits = 0
        slot_of = self._slot_of
        for annotation_id in annotation_ids:
            slot = slot_of.get(annotation_id)
            if slot is not None:
                bits |= 1 << slot
        return bits

    def iter_ids(self, bits: int) -> Iterator[str]:
        """Iterate the annotation ids of every set bit (lowest slot first)."""
        id_at = self._id_at
        while bits:
            low = bits & -bits
            slot = low.bit_length() - 1
            bits ^= low
            annotation_id = id_at[slot]
            if annotation_id is not None:
                yield annotation_id

    def ids(self, bits: int) -> list[str]:
        """The annotation ids of every set bit, as a list."""
        return list(self.iter_ids(bits))

    @staticmethod
    def count(bits: int) -> int:
        """Population count of a candidate bitset."""
        return bits.bit_count()
