"""Query result model.

A :class:`QueryResult` holds the collated output of a query in whichever of
the three forms the paper describes: annotation contents, heterogeneous
substructures (referents), or connection subgraphs.  It also records which
annotations survived each subquery step, so callers (and the planner
benchmarks) can inspect how the candidate set shrank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.agraph.connection import ConnectionSubgraph
from repro.query.ast import ReturnKind


@dataclass
class QueryResult:
    """The collated result of executing a query plan."""

    return_kind: ReturnKind
    annotation_ids: list[str] = field(default_factory=list)
    referents: list[Any] = field(default_factory=list)
    subgraphs: list[ConnectionSubgraph] = field(default_factory=list)
    #: Per-step execution detail: constraint label, surviving candidates,
    #: the planner's estimated rows (None outside cost mode), how the step
    #: ran ("materialize" or "probe" — the adaptive semi-join path), and the
    #: constraint's plan position.  ``steps`` is derived from this.
    step_details: list[dict[str, Any]] = field(default_factory=list)
    fragments: list[Any] = field(default_factory=list)
    #: Fingerprint of the plan that produced this result (see
    #: :meth:`repro.query.planner.QueryPlan.fingerprint`); the serving layer
    #: uses it as part of the result-cache key.
    plan_fingerprint: str = ""
    #: Set by the network sharded service when the merge ran without every
    #: shard (opt-in partial results while a worker is dead or restarting).
    #: A degraded result is complete for the shards listed as present but may
    #: be missing any row owned by ``missing_shards``.
    degraded: bool = False
    #: Shard indices that did not contribute to a degraded merge.
    missing_shards: list[int] = field(default_factory=list)

    def copy(self) -> "QueryResult":
        """An independent shallow copy (fresh page lists, shared elements).

        The serving layer's result cache hands copies to every caller so a
        client that consumes its result in place (pops ids, truncates pages,
        rewrites step details) can never corrupt the cached entry another
        reader is about to receive.  Elements (fragments, referents,
        subgraphs) are shared and must still be treated as read-only.
        """
        return QueryResult(
            return_kind=self.return_kind,
            annotation_ids=list(self.annotation_ids),
            referents=list(self.referents),
            subgraphs=list(self.subgraphs),
            step_details=[dict(detail) for detail in self.step_details],
            fragments=list(self.fragments),
            plan_fingerprint=self.plan_fingerprint,
            degraded=self.degraded,
            missing_shards=list(self.missing_shards),
        )

    @property
    def count(self) -> int:
        """Number of primary results (shape depends on the return kind)."""
        if self.return_kind is ReturnKind.GRAPH:
            return len(self.subgraphs)
        if self.return_kind is ReturnKind.REFERENTS:
            return len(self.referents)
        return len(self.annotation_ids)

    def is_empty(self) -> bool:
        """True when the query produced no primary results."""
        return self.count == 0

    def record_step(
        self,
        label: str,
        survivors: int,
        estimated: int | None = None,
        mode: str = "materialize",
        position: int | None = None,
    ) -> None:
        """Record the number of annotation candidates after a subquery step.

        *position* is the constraint's index in the plan's ordered list (the
        adaptive executor may execute steps out of plan order).
        """
        self.step_details.append(
            {
                "label": label,
                "survivors": survivors,
                "estimated": estimated,
                "mode": mode,
                "position": position,
            }
        )

    @property
    def steps(self) -> list[tuple[str, int]]:
        """``(label, surviving candidates)`` per executed step (derived)."""
        return [(detail["label"], detail["survivors"]) for detail in self.step_details]

    def actual_rows(self) -> dict[int, int]:
        """Plan position -> surviving candidates, for ``QueryPlan.explain``."""
        return {
            detail["position"]: detail["survivors"]
            for detail in self.step_details
            if detail.get("position") is not None
        }

    def explain_steps(self) -> str:
        """Human-readable trace of candidate-set sizes per subquery step."""
        lines = []
        for detail in self.step_details:
            line = f"  after {detail['label']}: {detail['survivors']} candidates"
            if detail.get("estimated") is not None:
                line += f" (est~{detail['estimated']}, {detail['mode']})"
            lines.append(line)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "return_kind": self.return_kind.value,
            "count": self.count,
            "plan_fingerprint": self.plan_fingerprint,
            "annotation_ids": list(self.annotation_ids),
            "referent_keys": [
                referent.referent_id if hasattr(referent, "referent_id") else str(referent)
                for referent in self.referents
            ],
            "subgraphs": [subgraph.to_dict() for subgraph in self.subgraphs],
            "steps": list(self.steps),
            "step_details": [dict(detail) for detail in self.step_details],
            "degraded": self.degraded,
            "missing_shards": list(self.missing_shards),
        }
