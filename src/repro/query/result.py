"""Query result model.

A :class:`QueryResult` holds the collated output of a query in whichever of
the three forms the paper describes: annotation contents, heterogeneous
substructures (referents), or connection subgraphs.  It also records which
annotations survived each subquery step, so callers (and the planner
benchmarks) can inspect how the candidate set shrank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.agraph.connection import ConnectionSubgraph
from repro.query.ast import ReturnKind


@dataclass
class QueryResult:
    """The collated result of executing a query plan."""

    return_kind: ReturnKind
    annotation_ids: list[str] = field(default_factory=list)
    referents: list[Any] = field(default_factory=list)
    subgraphs: list[ConnectionSubgraph] = field(default_factory=list)
    steps: list[tuple[str, int]] = field(default_factory=list)
    fragments: list[Any] = field(default_factory=list)
    #: Fingerprint of the plan that produced this result (see
    #: :meth:`repro.query.planner.QueryPlan.fingerprint`); the serving layer
    #: uses it as part of the result-cache key.
    plan_fingerprint: str = ""

    @property
    def count(self) -> int:
        """Number of primary results (shape depends on the return kind)."""
        if self.return_kind is ReturnKind.GRAPH:
            return len(self.subgraphs)
        if self.return_kind is ReturnKind.REFERENTS:
            return len(self.referents)
        return len(self.annotation_ids)

    def is_empty(self) -> bool:
        """True when the query produced no primary results."""
        return self.count == 0

    def record_step(self, label: str, survivors: int) -> None:
        """Record the number of annotation candidates after a subquery step."""
        self.steps.append((label, survivors))

    def explain_steps(self) -> str:
        """Human-readable trace of candidate-set sizes per subquery step."""
        return "\n".join(f"  after {label}: {count} candidates" for label, count in self.steps)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "return_kind": self.return_kind.value,
            "count": self.count,
            "plan_fingerprint": self.plan_fingerprint,
            "annotation_ids": list(self.annotation_ids),
            "referent_keys": [
                referent.referent_id if hasattr(referent, "referent_id") else str(referent)
                for referent in self.referents
            ],
            "subgraphs": [subgraph.to_dict() for subgraph in self.subgraphs],
            "steps": list(self.steps),
        }
