"""Query planner: per-type subquery separation and cost-based ordering.

"The query processor operates by separating subqueries that belong to the
different types of data elements, finding a feasible order among these
subqueries, and collating partial results."

The planner groups the query's constraints by the data element they target
(content, ontology, 1D substructure, 2D/3D substructure, type, path), then
orders them for execution.  Three ordering modes exist:

* ``cost`` (default when a manager is available) — each constraint gets a
  cardinality estimate from the live :class:`~repro.query.stats.StatisticsCatalogue`
  and the constraints run smallest-estimate first; the adaptive executor
  then re-orders the remainder after every step and switches index-backed
  constraints into semi-join probe mode when the surviving candidate set is
  far smaller than a constraint's estimated match set.  On corpora below
  :data:`SMALL_CORPUS_THRESHOLD` annotations the implicit default falls
  back to ``static`` per plan — the estimate pass costs more than ordering
  can win at that scale (an explicit ``mode="cost"`` disables the
  fallback).
* ``static`` — the pre-statistics behaviour: a hard-coded per-class
  selectivity constant table (kept as the benchmark baseline and as the
  fallback when no manager is attached).
* ``off`` — declaration order (the naive baseline).

The result is a :class:`QueryPlan`: an ordered list of constraints plus the
grouping and (in cost mode) the per-constraint row estimates, which the
executor runs step by step.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.query.ast import (
    Constraint,
    KeywordConstraint,
    NotConstraint,
    OntologyConstraint,
    OrConstraint,
    OverlapConstraint,
    PathConstraint,
    Query,
    RegionConstraint,
    Target,
    TypeConstraint,
)

#: Lower score == more selective == scheduled earlier.  The pre-statistics
#: guess table: kept as the ``static`` planning mode (the measured baseline
#: the cost-based planner is benchmarked against) and as the tie-breaker
#: between equal cardinality estimates.
_SELECTIVITY: dict[type, int] = {
    KeywordConstraint: 10,
    OntologyConstraint: 20,
    OverlapConstraint: 15,
    RegionConstraint: 15,
    PathConstraint: 30,
    OrConstraint: 45,
    TypeConstraint: 60,
    NotConstraint: 90,   # negation restricts the surviving candidates; last
}

#: Planner modes.
MODE_OFF = "off"
MODE_STATIC = "static"
MODE_COST = "cost"

#: Below this live corpus size (annotations in the statistics catalogue) the
#: implicitly chosen cost mode falls back to the static table: on a small
#: corpus every constraint's candidate set is small, the orders rarely
#: differ, and the per-plan estimate pass (a catalogue probe per constraint)
#: costs more than any ordering win repays.  An *explicit* ``mode="cost"``
#: is honored regardless — the override exists for exactly the callers
#: (tests, benchmarks) that want the estimate pass on any corpus.
SMALL_CORPUS_THRESHOLD = 3000


@dataclass
class QueryPlan:
    """An ordered execution plan for a query.

    Attributes
    ----------
    query:
        The query being planned.
    ordered_constraints:
        Constraints in planned execution order (most selective first).
    groups:
        Constraints grouped by the data element they target (the per-type
        subqueries).
    ordering_enabled:
        Whether any ordering was applied (False reproduces the naive
        declaration-order execution used as the PERF-6 baseline).
    mode:
        The planning mode that produced this plan (off / static / cost).
    estimated_rows:
        Cost mode only: the catalogue's cardinality estimate per constraint,
        aligned with ``ordered_constraints``.
    """

    query: Query
    ordered_constraints: list[Constraint]
    groups: dict[Target, list[Constraint]] = field(default_factory=dict)
    ordering_enabled: bool = True
    mode: str = MODE_STATIC
    estimated_rows: list[int] | None = None
    _fingerprint: str | None = field(default=None, repr=False, compare=False)

    def explain(self, actual_rows: dict[int, int] | None = None) -> str:
        """Human-readable plan explanation (estimated vs. actual rows).

        *actual_rows* maps plan positions to surviving candidate counts —
        pass :meth:`QueryResult.actual_rows
        <repro.query.result.QueryResult.actual_rows>` after executing to see
        ``est~`` against ``act=``.  Actuals live on the result, not the
        plan: plans are memoized and shared across concurrent executions.
        """
        ordering = f"on ({self.mode})" if self.ordering_enabled else "off"
        lines = [f"PLAN (return {self.query.return_kind.value}, ordering={ordering}):"]
        for position, constraint in enumerate(self.ordered_constraints, start=1):
            line = f"  {position}. [{constraint.target.value}] {constraint.describe()}"
            annotations = []
            if self.estimated_rows is not None:
                annotations.append(f"est~{self.estimated_rows[position - 1]}")
            if actual_rows is not None and position - 1 in actual_rows:
                annotations.append(f"act={actual_rows[position - 1]}")
            if annotations:
                line += f"  ({', '.join(annotations)})"
            lines.append(line)
        return "\n".join(lines)

    def subquery_count(self) -> int:
        """Number of distinct per-type subqueries."""
        return len(self.groups)

    def fingerprint(self) -> str:
        """A stable digest of the plan's semantics.

        Two queries share a fingerprint exactly when they produce the same
        return kind and the same ordered constraint sequence under the same
        planner mode — so the fingerprint reflects the order the cost-based
        planner actually chose, and (together with the normalized query
        text) is a sound cache key for query results: a stats-driven re-plan
        that picks a different order changes the fingerprint and naturally
        misses the old cache entries, while a re-plan with the same order
        relies on the cache's epoch tagging.  Computed once per plan (the
        executor stamps it on every result, so it is on the execution path).
        ``estimated_rows`` and ``actual_rows`` are observational — they do
        not change which annotations a plan returns — and are excluded.
        """
        if self._fingerprint is not None:
            return self._fingerprint
        digest = hashlib.sha256()
        digest.update(self.query.return_kind.value.encode())
        digest.update(f"|mode={self.mode}".encode())
        for constraint in self.ordered_constraints:
            digest.update(b"|")
            digest.update(constraint.target.value.encode())
            digest.update(b":")
            digest.update(constraint.describe().encode())
        self._fingerprint = digest.hexdigest()[:16]
        return self._fingerprint


class QueryPlanner:
    """Builds a :class:`QueryPlan` from a :class:`Query`.

    Parameters
    ----------
    enable_ordering:
        False forces declaration-order planning (the naive baseline).
    manager:
        The :class:`~repro.core.manager.Graphitti` whose statistics catalogue
        feeds cardinality estimates.  Without one, cost mode degrades to the
        static constant table.
    mode:
        Explicit mode override (``"off"``, ``"static"``, ``"cost"``); by
        default ordering uses cost mode when a manager is attached and
        static otherwise.
    """

    def __init__(self, enable_ordering: bool = True, manager=None, mode: str | None = None):
        self._explicit_mode = mode is not None
        if mode is None:
            mode = (MODE_COST if manager is not None else MODE_STATIC) if enable_ordering else MODE_OFF
        if mode not in (MODE_OFF, MODE_STATIC, MODE_COST):
            raise ValueError(f"unknown planner mode {mode!r}")
        if mode == MODE_COST and manager is None:
            mode = MODE_STATIC
        self.mode = mode
        self.enable_ordering = mode != MODE_OFF
        self._manager = manager

    def effective_mode(self) -> str:
        """The mode the next plan will use, small-corpus fallback applied.

        Per-plan, not per-planner: the catalogue's annotation total is live,
        so a corpus that grows past :data:`SMALL_CORPUS_THRESHOLD` starts
        getting cost-based plans without anyone reconstructing the planner.
        """
        if self.mode == MODE_COST and not self._explicit_mode:
            if self._manager.stats_catalogue.annotation_total < SMALL_CORPUS_THRESHOLD:
                return MODE_STATIC
        return self.mode

    def plan(self, query: Query) -> QueryPlan:
        """Produce an execution plan for *query*."""
        groups: dict[Target, list[Constraint]] = {}
        for constraint in query.constraints:
            groups.setdefault(constraint.target, []).append(constraint)

        mode = self.effective_mode()
        estimated_rows: list[int] | None = None
        if mode == MODE_COST:
            from repro.query.stats import CardinalityEstimator

            estimator = CardinalityEstimator(self._manager)
            estimates = {id(constraint): estimator.estimate(constraint) for constraint in query.constraints}
            ordered = sorted(
                query.constraints,
                key=lambda constraint: (
                    estimates[id(constraint)],
                    _SELECTIVITY.get(type(constraint), 50),
                    constraint.describe(),
                ),
            )
            estimated_rows = [estimates[id(constraint)] for constraint in ordered]
        elif mode == MODE_STATIC:
            ordered = sorted(
                query.constraints,
                key=lambda constraint: (_SELECTIVITY.get(type(constraint), 50), constraint.describe()),
            )
        else:
            ordered = list(query.constraints)

        return QueryPlan(
            query=query,
            ordered_constraints=ordered,
            groups=groups,
            ordering_enabled=self.enable_ordering,
            mode=mode,
            estimated_rows=estimated_rows,
        )

    @staticmethod
    def estimated_cost(query: Query) -> int:
        """A crude additive cost estimate (sum of per-constraint selectivity)."""
        return sum(_SELECTIVITY.get(type(constraint), 50) for constraint in query.constraints)
