"""Query planner: per-type subquery separation and feasible ordering.

"The query processor operates by separating subqueries that belong to the
different types of data elements, finding a feasible order among these
subqueries, and collating partial results."

The planner groups the query's constraints by the data element they target
(content, ontology, 1D substructure, 2D/3D substructure, type, path), then
orders the groups by a static selectivity estimate so the most selective
subquery runs first and shrinks the candidate set the others filter.  The
result is a :class:`QueryPlan`: an ordered list of constraints plus the
grouping, which the executor runs step by step.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.query.ast import (
    Constraint,
    KeywordConstraint,
    NotConstraint,
    OntologyConstraint,
    OrConstraint,
    OverlapConstraint,
    PathConstraint,
    Query,
    RegionConstraint,
    Target,
    TypeConstraint,
)

#: Lower score == more selective == scheduled earlier.  These reflect the
#: rough selectivity order the paper's design implies: an exact keyword or a
#: spatial window is far more selective than "has a referent of type X".
#: Path constraints cost two bounded multi-source BFS sweeps over the indexed
#: adjacency (not a pairwise BFS per endpoint combination), so they sit just
#: behind the index-backed lookups.
_SELECTIVITY: dict[type, int] = {
    KeywordConstraint: 10,
    OntologyConstraint: 20,
    OverlapConstraint: 15,
    RegionConstraint: 15,
    PathConstraint: 30,
    OrConstraint: 45,
    TypeConstraint: 60,
    NotConstraint: 90,   # negation restricts the surviving candidates; last
}


@dataclass
class QueryPlan:
    """An ordered execution plan for a query.

    Attributes
    ----------
    query:
        The query being planned.
    ordered_constraints:
        Constraints in execution order (most selective first).
    groups:
        Constraints grouped by the data element they target (the per-type
        subqueries).
    ordering_enabled:
        Whether selectivity ordering was applied (False reproduces the naive
        declaration-order execution used as the PERF-6 baseline).
    """

    query: Query
    ordered_constraints: list[Constraint]
    groups: dict[Target, list[Constraint]] = field(default_factory=dict)
    ordering_enabled: bool = True
    _fingerprint: str | None = field(default=None, repr=False, compare=False)

    def explain(self) -> str:
        """Human-readable plan explanation."""
        lines = [f"PLAN (return {self.query.return_kind.value}, ordering={'on' if self.ordering_enabled else 'off'}):"]
        for position, constraint in enumerate(self.ordered_constraints, start=1):
            lines.append(f"  {position}. [{constraint.target.value}] {constraint.describe()}")
        return "\n".join(lines)

    def subquery_count(self) -> int:
        """Number of distinct per-type subqueries."""
        return len(self.groups)

    def fingerprint(self) -> str:
        """A stable digest of the plan's semantics.

        Two queries share a fingerprint exactly when they produce the same
        return kind and the same ordered constraint sequence under the same
        planner configuration — which makes the fingerprint (together with the
        normalized query text) a sound cache key for query results: any
        planner change that alters execution changes the fingerprint and
        naturally misses the old cache entries.  Computed once per plan (the
        executor stamps it on every result, so it is on the execution path).
        """
        if self._fingerprint is not None:
            return self._fingerprint
        digest = hashlib.sha256()
        digest.update(self.query.return_kind.value.encode())
        digest.update(b"|ordering=1" if self.ordering_enabled else b"|ordering=0")
        for constraint in self.ordered_constraints:
            digest.update(b"|")
            digest.update(constraint.target.value.encode())
            digest.update(b":")
            digest.update(constraint.describe().encode())
        self._fingerprint = digest.hexdigest()[:16]
        return self._fingerprint


class QueryPlanner:
    """Builds a :class:`QueryPlan` from a :class:`Query`."""

    def __init__(self, enable_ordering: bool = True):
        self.enable_ordering = enable_ordering

    def plan(self, query: Query) -> QueryPlan:
        """Produce an execution plan for *query*."""
        groups: dict[Target, list[Constraint]] = {}
        for constraint in query.constraints:
            groups.setdefault(constraint.target, []).append(constraint)

        if self.enable_ordering:
            ordered = sorted(
                query.constraints,
                key=lambda constraint: (_SELECTIVITY.get(type(constraint), 50), constraint.describe()),
            )
        else:
            ordered = list(query.constraints)

        return QueryPlan(
            query=query,
            ordered_constraints=ordered,
            groups=groups,
            ordering_enabled=self.enable_ordering,
        )

    @staticmethod
    def estimated_cost(query: Query) -> int:
        """A crude additive cost estimate (sum of per-constraint selectivity)."""
        return sum(_SELECTIVITY.get(type(constraint), 50) for constraint in query.constraints)
