"""Derivation relationships and coordinate transforms between data objects.

A *derived* object (a cropped subsequence, a cropped image) is produced from a
*source* object by a coordinate transform.  A :class:`Derivation` records that
relationship and can map a source substructure into the derived object's
coordinate frame (returning ``None`` when the substructure falls outside the
derived region).  This is the "view" through which the paper's references
describe annotation propagation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import GraphittiError
from repro.spatial.interval import Interval
from repro.spatial.rect import Rect


class DerivationKind(enum.Enum):
    """Supported derivation transforms."""

    SUBSEQUENCE = "subsequence"   # derived = source[start:end], 1D crop+shift
    IMAGE_CROP = "image_crop"     # derived = source region, 2D/3D crop+shift
    IDENTITY = "identity"         # derived mirrors source (e.g. a renamed view)


@dataclass
class Derivation:
    """A derivation from *source_id* to *derived_id*.

    Parameters
    ----------
    source_id, derived_id:
        Object ids of the source and derived data objects.
    kind:
        The transform kind.
    source_domain, derived_domain:
        Coordinate domain/space names on each side (for 1D: domains; for 2D:
        coordinate-space names).
    window:
        The source region the derived object covers: ``(start, end)`` for a
        subsequence, or ``(lo_tuple, hi_tuple)`` for an image crop.  ``None``
        for identity derivations (the whole object).
    """

    source_id: str
    derived_id: str
    kind: DerivationKind
    source_domain: str
    derived_domain: str
    window: tuple | None = None

    def __post_init__(self) -> None:
        if self.kind in (DerivationKind.SUBSEQUENCE, DerivationKind.IMAGE_CROP) and self.window is None:
            raise GraphittiError(f"{self.kind.value} derivation requires a window")

    # -- 1D -------------------------------------------------------------------

    def map_interval(self, interval: Interval) -> Interval | None:
        """Map a source interval into the derived coordinate frame."""
        if self.kind is DerivationKind.IDENTITY:
            return Interval(interval.start, interval.end, domain=self.derived_domain)
        if self.kind is not DerivationKind.SUBSEQUENCE:
            raise GraphittiError("map_interval is only valid for 1D derivations")
        start, end = self.window
        clipped = interval.intersection(Interval(start, end, domain=interval.domain))
        if clipped is None:
            return None
        return Interval(clipped.start - start, clipped.end - start, domain=self.derived_domain)

    # -- 2D/3D ----------------------------------------------------------------

    def map_rect(self, rect: Rect) -> Rect | None:
        """Map a source rectangle into the derived coordinate frame."""
        if self.kind is DerivationKind.IDENTITY:
            return Rect(rect.lo, rect.hi, space=self.derived_domain)
        if self.kind is not DerivationKind.IMAGE_CROP:
            raise GraphittiError("map_rect is only valid for 2D/3D derivations")
        lo, hi = self.window
        window = Rect(tuple(lo), tuple(hi), space=rect.space)
        clipped = rect.intersection(window)
        if clipped is None:
            return None
        new_lo = tuple(value - origin for value, origin in zip(clipped.lo, lo))
        new_hi = tuple(value - origin for value, origin in zip(clipped.hi, lo))
        return Rect(new_lo, new_hi, space=self.derived_domain)

    def covers_interval(self, interval: Interval) -> bool:
        """True when the source interval overlaps the derived window (1D)."""
        return self.map_interval(interval) is not None

    def covers_rect(self, rect: Rect) -> bool:
        """True when the source rect overlaps the derived window (2D/3D)."""
        return self.map_rect(rect) is not None
