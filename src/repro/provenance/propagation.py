"""Forward annotation propagation and backward deletion propagation.

Given a :class:`~repro.provenance.derivation.Derivation` from a source object
to a derived object, :class:`AnnotationPropagator` copies every source
annotation whose referent on the source falls within the derived window onto
the derived object, remapping the referent's coordinates into the derived
frame and recording the lineage in the ledger.  Deletion propagation walks the
ledger the other way: deleting a source annotation cascades to the propagated
copies derived from it.
"""

from __future__ import annotations

from repro.datatypes.base import DataType, SubstructureRef
from repro.errors import GraphittiError
from repro.provenance.derivation import Derivation, DerivationKind
from repro.provenance.ledger import ProvenanceLedger


class AnnotationPropagator:
    """Propagates annotations across derivations over a Graphitti instance."""

    def __init__(self, manager, ledger: ProvenanceLedger | None = None):
        self._manager = manager
        self.ledger = ledger if ledger is not None else ProvenanceLedger()
        self._derivations: dict[tuple[str, str], Derivation] = {}
        # Record existing annotations as roots so lineage queries work.
        for annotation in manager.annotations():
            if annotation.annotation_id not in self.ledger:
                self.ledger.record(annotation.annotation_id)

    def register_derivation(self, derivation: Derivation) -> None:
        """Register a source -> derived derivation."""
        self._derivations[(derivation.source_id, derivation.derived_id)] = derivation

    def derivations(self) -> list[Derivation]:
        """Every registered derivation."""
        return list(self._derivations.values())

    # -- forward propagation --------------------------------------------------

    def propagate(self, source_id: str, derived_id: str, creator: str = "propagation") -> list[str]:
        """Propagate source annotations onto the derived object.

        For each annotation on *source_id* whose referent maps into the derived
        window, a new annotation is committed on *derived_id* carrying the same
        content keywords/body/ontology terms and the remapped referent.  The
        lineage is recorded.  Returns the ids of the created annotations.
        """
        key = (source_id, derived_id)
        if key not in self._derivations:
            raise GraphittiError(f"no derivation {source_id!r} -> {derived_id!r} registered")
        derivation = self._derivations[key]
        created: list[str] = []
        for annotation in list(self._manager.annotations()):
            for referent in annotation.referents:
                if referent.ref.object_id != source_id:
                    continue
                mapped_ref = self._map_referent(referent.ref, derived_id, derivation)
                if mapped_ref is None:
                    continue
                new_id = self._commit_propagated(annotation, mapped_ref, referent.ontology_terms, creator)
                self.ledger.record(
                    new_id,
                    operation="propagate",
                    parents=(annotation.annotation_id,),
                    detail=f"{source_id}->{derived_id}",
                )
                created.append(new_id)
        return created

    def _map_referent(self, ref: SubstructureRef, derived_id: str, derivation: Derivation) -> SubstructureRef | None:
        if ref.interval is not None:
            mapped = derivation.map_interval(ref.interval)
            if mapped is None:
                return None
            return SubstructureRef(
                object_id=derived_id,
                data_type=ref.data_type,
                descriptor={"start": int(mapped.start), "end": int(mapped.end), "propagated_from": ref.object_id},
                interval=mapped,
                label=ref.label,
            )
        if ref.rect is not None:
            mapped = derivation.map_rect(ref.rect)
            if mapped is None:
                return None
            return SubstructureRef(
                object_id=derived_id,
                data_type=ref.data_type,
                descriptor={"lo": list(mapped.lo), "hi": list(mapped.hi), "propagated_from": ref.object_id},
                rect=mapped,
                label=ref.label,
            )
        return None

    def _commit_propagated(self, source_annotation, mapped_ref, ontology_terms, creator: str) -> str:
        content = source_annotation.content
        new_id = f"{source_annotation.annotation_id}~{mapped_ref.object_id}"
        suffix = 0
        while new_id in {a.annotation_id for a in self._manager.annotations()}:
            suffix += 1
            new_id = f"{source_annotation.annotation_id}~{mapped_ref.object_id}#{suffix}"
        builder = self._manager.new_annotation(
            new_id,
            title=content.dublin_core.title,
            creator=creator,
            keywords=content.keywords(),
            body=content.body,
        )
        builder.add_referent(mapped_ref, ontology_terms=ontology_terms)
        for term in content.ontology_terms:
            builder.refer_ontology(term)
        builder.commit()
        return new_id

    # -- backward deletion propagation ----------------------------------------

    def propagate_deletion(self, annotation_id: str, apply: bool = False) -> list[str]:
        """Compute (and optionally apply) the deletion-propagation set.

        Returns every annotation derived (transitively) from *annotation_id*.
        When *apply* is True, those annotations and *annotation_id* itself are
        deleted from the manager, oldest-derived last.  This is the paper's
        "propagation of deletions ... through views".
        """
        descendants = self.ledger.descendants(annotation_id)
        to_delete = [annotation_id] + sorted(descendants)
        if apply:
            # Delete descendants first, then the source, so shared referents
            # are released in dependency order.
            for target in sorted(descendants) + [annotation_id]:
                try:
                    self._manager.delete_annotation(target)
                except Exception:  # pragma: no cover - already gone
                    pass
        return to_delete
