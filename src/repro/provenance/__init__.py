"""Annotation provenance and propagation (paper extension).

The paper's introduction frames annotation as "superimposing information on an
existing database", and its references cover *propagation of annotations and
deletions through views* ([3] Buneman et al.) and *intensional associations
between data and metadata* ([8] Srivastava & Velegrakis).  Graphitti itself
demonstrates annotation and query; this package implements the propagation
machinery those references describe as a coherent extension:

* :mod:`repro.provenance.derivation` -- how a derived data object relates to a
  source (a subsequence crop, an image crop) and the coordinate transform
  between them,
* :mod:`repro.provenance.ledger` -- a provenance ledger recording each
  annotation's lineage,
* :mod:`repro.provenance.propagation` -- propagation of annotations from a
  source object to a derived object (forward) and propagation of deletions
  from a source annotation to its derived copies (backward).
"""

from repro.provenance.derivation import Derivation, DerivationKind
from repro.provenance.ledger import ProvenanceLedger, ProvenanceRecord
from repro.provenance.propagation import AnnotationPropagator

__all__ = [
    "Derivation",
    "DerivationKind",
    "ProvenanceLedger",
    "ProvenanceRecord",
    "AnnotationPropagator",
]
