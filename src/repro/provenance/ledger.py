"""A provenance ledger recording annotation lineage.

Every annotation created by propagation records a :class:`ProvenanceRecord`
naming its parent annotation(s) and the operation that produced it.  The
ledger answers lineage queries: ancestors (where did this come from?),
descendants (what was derived from this?), and roots (original annotations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class ProvenanceRecord:
    """One lineage record for an annotation."""

    annotation_id: str
    operation: str = "original"
    parents: tuple[str, ...] = ()
    detail: str = ""


class ProvenanceLedger:
    """Records and queries annotation lineage."""

    def __init__(self) -> None:
        self._records: dict[str, ProvenanceRecord] = {}
        self._children: dict[str, set[str]] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, annotation_id: str) -> bool:
        return annotation_id in self._records

    def record(
        self,
        annotation_id: str,
        operation: str = "original",
        parents: tuple[str, ...] = (),
        detail: str = "",
    ) -> ProvenanceRecord:
        """Add (or overwrite) a provenance record."""
        record = ProvenanceRecord(annotation_id, operation=operation, parents=tuple(parents), detail=detail)
        self._records[annotation_id] = record
        for parent in parents:
            self._children.setdefault(parent, set()).add(annotation_id)
        return record

    def get(self, annotation_id: str) -> ProvenanceRecord | None:
        """The record for *annotation_id* (None when unrecorded)."""
        return self._records.get(annotation_id)

    def parents(self, annotation_id: str) -> tuple[str, ...]:
        """Direct parents of *annotation_id*."""
        record = self._records.get(annotation_id)
        return record.parents if record is not None else ()

    def children(self, annotation_id: str) -> set[str]:
        """Direct children (propagated copies) of *annotation_id*."""
        return set(self._children.get(annotation_id, set()))

    def ancestors(self, annotation_id: str) -> set[str]:
        """Transitive parents of *annotation_id*."""
        seen: set[str] = set()
        frontier = list(self.parents(annotation_id))
        while frontier:
            current = frontier.pop()
            if current not in seen:
                seen.add(current)
                frontier.extend(self.parents(current))
        return seen

    def descendants(self, annotation_id: str) -> set[str]:
        """Transitive children of *annotation_id* (deletion propagation set)."""
        seen: set[str] = set()
        frontier = list(self.children(annotation_id))
        while frontier:
            current = frontier.pop()
            if current not in seen:
                seen.add(current)
                frontier.extend(self.children(current))
        return seen

    def roots(self) -> list[str]:
        """Annotations with no recorded parents (original annotations)."""
        return sorted(
            annotation_id
            for annotation_id, record in self._records.items()
            if not record.parents
        )

    def lineage(self, annotation_id: str) -> list[str]:
        """The full lineage path from a root down to *annotation_id*."""
        chain = [annotation_id]
        current = annotation_id
        while True:
            parents = self.parents(current)
            if not parents:
                break
            current = parents[0]
            chain.append(current)
        chain.reverse()
        return chain

    def records(self) -> Iterator[ProvenanceRecord]:
        """Iterate over every record."""
        return iter(self._records.values())
