"""XML text parsing and serialization for the annotation store.

A self-contained recursive-descent parser for the XML subset annotation
contents use (elements, attributes, character data, comments, CDATA,
processing instructions are skipped).  The serializer produces
pretty-printed, properly escaped XML text that round-trips through the
parser.
"""

from __future__ import annotations

from repro.errors import XmlParseError
from repro.xmlstore.document import XmlDocument, XmlElement

_ESCAPES = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
    '"': "&quot;",
    "'": "&apos;",
}

_UNESCAPES = {value: key for key, value in _ESCAPES.items()}


def escape_text(text: str) -> str:
    """Escape character data for inclusion in XML text."""
    result = text
    for raw, escaped in _ESCAPES.items():
        result = result.replace(raw, escaped)
    return result


def unescape_text(text: str) -> str:
    """Reverse :func:`escape_text` (also handles numeric character references)."""
    result = text
    for escaped, raw in _UNESCAPES.items():
        result = result.replace(escaped, raw)
    return result


class _Parser:
    """Recursive-descent parser over the raw XML text."""

    def __init__(self, text: str):
        self.text = text
        self.position = 0

    def error(self, message: str) -> XmlParseError:
        line = self.text.count("\n", 0, self.position) + 1
        return XmlParseError(f"{message} (line {line}, offset {self.position})")

    def at_end(self) -> bool:
        return self.position >= len(self.text)

    def peek(self, count: int = 1) -> str:
        return self.text[self.position : self.position + count]

    def advance(self, count: int = 1) -> str:
        value = self.text[self.position : self.position + count]
        self.position += count
        return value

    def skip_whitespace(self) -> None:
        while not self.at_end() and self.text[self.position].isspace():
            self.position += 1

    def skip_prolog_and_comments(self) -> None:
        while True:
            self.skip_whitespace()
            if self.peek(2) == "<?":
                end = self.text.find("?>", self.position)
                if end == -1:
                    raise self.error("unterminated processing instruction")
                self.position = end + 2
                continue
            if self.peek(4) == "<!--":
                end = self.text.find("-->", self.position)
                if end == -1:
                    raise self.error("unterminated comment")
                self.position = end + 3
                continue
            if self.peek(2) == "<!":
                end = self.text.find(">", self.position)
                if end == -1:
                    raise self.error("unterminated declaration")
                self.position = end + 1
                continue
            return

    def parse_document(self) -> XmlElement:
        self.skip_prolog_and_comments()
        if self.at_end() or self.peek() != "<":
            raise self.error("expected root element")
        root = self.parse_element()
        self.skip_prolog_and_comments()
        if not self.at_end():
            raise self.error("trailing content after root element")
        return root

    def parse_name(self) -> str:
        start = self.position
        while not self.at_end():
            char = self.text[self.position]
            if char.isalnum() or char in "_-.:":
                self.position += 1
            else:
                break
        if start == self.position:
            raise self.error("expected a name")
        return self.text[start : self.position]

    def parse_attributes(self) -> dict[str, str]:
        attributes: dict[str, str] = {}
        while True:
            self.skip_whitespace()
            if self.at_end():
                raise self.error("unterminated start tag")
            if self.peek() in (">", "/"):
                return attributes
            name = self.parse_name()
            self.skip_whitespace()
            if self.peek() != "=":
                raise self.error(f"expected '=' after attribute {name!r}")
            self.advance()
            self.skip_whitespace()
            quote = self.peek()
            if quote not in ('"', "'"):
                raise self.error(f"attribute {name!r} value must be quoted")
            self.advance()
            end = self.text.find(quote, self.position)
            if end == -1:
                raise self.error(f"unterminated value for attribute {name!r}")
            value = self.text[self.position : end]
            self.position = end + 1
            attributes[name] = unescape_text(value)

    def parse_element(self) -> XmlElement:
        if self.advance() != "<":
            raise self.error("expected '<'")
        tag = self.parse_name()
        attributes = self.parse_attributes()
        element = XmlElement(tag, attributes=attributes)
        self.skip_whitespace()
        if self.peek(2) == "/>":
            self.advance(2)
            return element
        if self.advance() != ">":
            raise self.error(f"malformed start tag for <{tag}>")
        text_parts: list[str] = []
        while True:
            if self.at_end():
                raise self.error(f"unterminated element <{tag}>")
            if self.peek(4) == "<!--":
                end = self.text.find("-->", self.position)
                if end == -1:
                    raise self.error("unterminated comment")
                self.position = end + 3
                continue
            if self.peek(9) == "<![CDATA[":
                end = self.text.find("]]>", self.position)
                if end == -1:
                    raise self.error("unterminated CDATA section")
                text_parts.append(self.text[self.position + 9 : end])
                self.position = end + 3
                continue
            if self.peek(2) == "</":
                self.advance(2)
                closing = self.parse_name()
                if closing != tag:
                    raise self.error(f"mismatched end tag </{closing}> for <{tag}>")
                self.skip_whitespace()
                if self.advance() != ">":
                    raise self.error(f"malformed end tag </{closing}>")
                element.text = unescape_text("".join(text_parts)).strip()
                return element
            if self.peek() == "<":
                element.append(self.parse_element())
                continue
            start = self.position
            next_tag = self.text.find("<", self.position)
            if next_tag == -1:
                raise self.error(f"unterminated element <{tag}>")
            text_parts.append(self.text[start:next_tag])
            self.position = next_tag


def parse_xml(text: str, doc_id: str | None = None) -> XmlDocument:
    """Parse XML *text* into an :class:`~repro.xmlstore.document.XmlDocument`."""
    if not text or not text.strip():
        raise XmlParseError("cannot parse empty XML text")
    root = _Parser(text).parse_document()
    return XmlDocument(root, doc_id=doc_id)


def _serialize_element(element: XmlElement, indent: int, pretty: bool) -> str:
    pad = "  " * indent if pretty else ""
    newline = "\n" if pretty else ""
    attributes = "".join(
        f' {name}="{escape_text(value)}"' for name, value in element.attributes.items()
    )
    text = escape_text(element.text) if element.text else ""
    if not element.children and not text:
        return f"{pad}<{element.tag}{attributes}/>{newline}"
    if not element.children:
        return f"{pad}<{element.tag}{attributes}>{text}</{element.tag}>{newline}"
    parts = [f"{pad}<{element.tag}{attributes}>"]
    if text:
        parts.append(text)
    parts.append(newline)
    for child in element.children:
        parts.append(_serialize_element(child, indent + 1, pretty))
    parts.append(f"{pad}</{element.tag}>{newline}")
    return "".join(parts)


def serialize_xml(document: XmlDocument | XmlElement, pretty: bool = True, declaration: bool = True) -> str:
    """Serialize a document or element subtree to XML text."""
    root = document.root if isinstance(document, XmlDocument) else document
    header = '<?xml version="1.0" encoding="UTF-8"?>\n' if declaration else ""
    return header + _serialize_element(root, 0, pretty)
