"""The XML annotation-content store.

"The annotation content produced by Graphitti is an XML document whose
elements consist of Dublin core attributes and other user-defined tags.  The
collection of all annotations constitutes a database of XML documents.  The
collection-searching operations is performed using standard XQuery."

This package provides:

* :mod:`repro.xmlstore.document` -- a lightweight XML element/document model,
* :mod:`repro.xmlstore.parser` -- text parsing and serialization,
* :mod:`repro.xmlstore.xpath` -- an XPath-subset evaluator,
* :mod:`repro.xmlstore.flwor` -- a FLWOR-lite (XQuery-style) query engine,
* :mod:`repro.xmlstore.text_index` -- an inverted keyword index,
* :mod:`repro.xmlstore.collection` -- the document collection tying it together.
"""

from repro.xmlstore.document import XmlDocument, XmlElement
from repro.xmlstore.parser import parse_xml, serialize_xml
from repro.xmlstore.xpath import XPath, evaluate_xpath
from repro.xmlstore.flwor import FlworQuery
from repro.xmlstore.text_index import InvertedIndex, tokenize
from repro.xmlstore.collection import DocumentCollection

__all__ = [
    "XmlDocument",
    "XmlElement",
    "parse_xml",
    "serialize_xml",
    "XPath",
    "evaluate_xpath",
    "FlworQuery",
    "InvertedIndex",
    "tokenize",
    "DocumentCollection",
]
