"""The annotation-content document collection.

"The collection of all annotations constitutes a database of XML documents."
The :class:`DocumentCollection` stores those documents, keeps an inverted
keyword index over their text, and exposes the search operations Graphitti's
query processor needs: keyword search (candidate-then-verify for phrases),
XPath selection across the collection, and FLWOR-lite queries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.errors import XmlStoreError
from repro.analysis.annotations import requires_write_lock
from repro.xmlstore.document import XmlDocument, XmlElement
from repro.xmlstore.flwor import FlworQuery
from repro.xmlstore.parser import parse_xml, serialize_xml
from repro.xmlstore.text_index import InvertedIndex
from repro.xmlstore.xpath import XPath


class DocumentCollection:
    """A keyed collection of XML documents with a keyword index."""

    def __init__(self, name: str = "annotations", indexed: bool = True):
        self.name = name
        self._documents: dict[str, XmlDocument] = {}
        self._index: InvertedIndex | None = InvertedIndex() if indexed else None
        # Documents stored with ``defer_index=True`` whose text has not been
        # fed to the inverted index yet (an ordered set of doc ids).
        self._pending_index: dict[str, None] = {}
        # Documents whose stored body is stale after an in-place update: the
        # index already reflects the edit (exact text delta), but the XML
        # regenerates lazily — doc id -> zero-arg regenerator.  The write
        # path never pays document rendering; the first *reader* of the
        # document does, once.
        self._stale: dict[str, Callable[[], XmlDocument]] = {}
        # Exact searchable text of documents registered via :meth:`add_lazy`
        # whose trees were never materialized: keyword verification reads
        # this string instead of rendering the document.  Entries drop on
        # materialization or when an in-place edit changes the text.
        self._lazy_text: dict[str, str] = {}
        self._next_serial = 1

    # -- container protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def __iter__(self) -> Iterator[XmlDocument]:
        self._materialize_all()
        return iter(self._documents.values())

    # -- lazy materialization ---------------------------------------------------

    def _materialize(self, doc_id: str) -> None:
        """Regenerate one stale document before a reader sees it."""
        regenerator = self._stale.pop(doc_id, None)
        if regenerator is not None:
            document = regenerator()
            document.doc_id = doc_id
            self._documents[doc_id] = document
            self._lazy_text.pop(doc_id, None)

    def _materialize_all(self) -> None:
        """Regenerate every stale document (bulk readers call this first)."""
        while self._stale:
            doc_id, regenerator = self._stale.popitem()
            document = regenerator()
            document.doc_id = doc_id
            self._documents[doc_id] = document
            self._lazy_text.pop(doc_id, None)

    @property
    def stale_document_count(self) -> int:
        """Number of stored documents pending lazy regeneration."""
        return len(self._stale)

    @requires_write_lock
    def materialize_documents(self) -> None:
        """Drain every pending lazy regeneration now (a quiesce point)."""
        self._materialize_all()

    @property
    def indexed(self) -> bool:
        """Whether an inverted keyword index is maintained."""
        return self._index is not None

    def document_ids(self) -> tuple[str, ...]:
        """Ids of every stored document, in insertion order."""
        return tuple(self._documents)

    # -- mutation ------------------------------------------------------------------

    def add(self, document: XmlDocument, doc_id: str | None = None, defer_index: bool = False) -> str:
        """Store a document and return its id.

        The id is taken from (in priority order) the *doc_id* argument, the
        document's own ``doc_id``, or a generated serial id.

        With ``defer_index=True`` the document is stored immediately but its
        keyword indexing (text extraction + tokenization, the dominant cost of
        an add) is queued and performed lazily by :meth:`flush_index` — which
        every index reader calls first, so searches never see a stale index.
        Bulk ingest paths use this to amortize indexing out of the commit loop.
        """
        identifier = doc_id or document.doc_id or self._generate_id()
        if identifier in self._documents:
            raise XmlStoreError(f"document id {identifier!r} already present in {self.name!r}")
        document.doc_id = identifier
        self._documents[identifier] = document
        if self._index is not None:
            if defer_index:
                self._pending_index[identifier] = None
            else:
                self._index.add_document(identifier, self._searchable_text(document))
        return identifier

    def add_lazy(
        self, doc_id: str, searchable_text: str, regenerate: Callable[[], XmlDocument]
    ) -> str:
        """Register a document WITHOUT materializing its tree.

        The caller supplies the document's exact searchable text (the same
        string :meth:`_searchable_text` would extract) and a zero-arg
        regenerator producing the tree on demand.  The inverted index is fed
        from the text immediately; keyword verification also reads the cached
        text, so a lazily-registered document that is never read never builds
        a tree at all.  Recovery uses this to register every annotation
        content document from the snapshot dump — cold-start cost and RSS
        scale with the index, not with the XML object graph.
        """
        if doc_id in self._documents:
            raise XmlStoreError(f"document id {doc_id!r} already present in {self.name!r}")
        # Placeholder entry: every reader materializes (via ``_stale``)
        # before touching the stored value.
        self._documents[doc_id] = None
        self._stale[doc_id] = regenerate
        self._lazy_text[doc_id] = searchable_text
        if self._index is not None:
            self._index.add_document(doc_id, searchable_text)
        return doc_id

    @property
    def lazy_document_count(self) -> int:
        """Documents registered lazily whose trees were never built."""
        return len(self._lazy_text)

    @property
    def pending_index_count(self) -> int:
        """Number of stored documents whose indexing is still deferred."""
        return len(self._pending_index)

    @requires_write_lock
    def flush_index(self) -> int:
        """Index every deferred document now; returns how many were indexed.

        Reading paths (keyword search, save/export) call this before touching
        the inverted index, so deferral is invisible to queries.
        """
        if self._index is None or not self._pending_index:
            return 0
        pending, self._pending_index = self._pending_index, {}
        for identifier in pending:
            self._materialize(identifier)  # index the *latest* body
            document = self._documents.get(identifier)
            if document is not None:
                self._index.add_document(identifier, self._searchable_text(document))
        return len(pending)

    def add_xml(self, text: str, doc_id: str | None = None) -> str:
        """Parse XML text and store the resulting document."""
        return self.add(parse_xml(text), doc_id=doc_id)

    def replace(self, doc_id: str, document: XmlDocument) -> None:
        """Replace a stored document under the same id (alias of :meth:`update`)."""
        self.update(doc_id, document)

    def update(self, doc_id: str, document: XmlDocument) -> None:
        """Replace a stored document with *delta* index maintenance.

        Unlike :meth:`replace` (which re-feeds the whole text through
        ``add_document``), this hands the new text to
        :meth:`InvertedIndex.update_document`, so only the postings whose
        terms actually changed are touched — the inverted-index half of the
        mutation lifecycle's delta maintenance.  A document whose indexing is
        still deferred keeps its pending entry: the eventual flush reads the
        *stored* document, which is now the new one, so the deferral stays
        invisible to searches.
        """
        if doc_id not in self._documents:
            raise XmlStoreError(f"no document {doc_id!r} in collection {self.name!r}")
        self._stale.pop(doc_id, None)  # superseded before it was ever read
        self._lazy_text.pop(doc_id, None)
        document.doc_id = doc_id
        self._documents[doc_id] = document
        if self._index is not None and doc_id not in self._pending_index:
            self._index.update_document(doc_id, self._searchable_text(document))

    def update_delta(
        self,
        doc_id: str,
        regenerate: Callable[[], XmlDocument],
        removed_parts: list[str],
        added_parts: list[str],
    ) -> None:
        """In-place document update paying only the *delta*, at write time.

        The fast half of :meth:`update`, and the document-store leg of the
        mutation lifecycle:

        * the inverted index adjusts immediately and exactly from the text
          parts the edit removed/added (:meth:`InvertedIndex.apply_text_delta`
          — O(edit), not O(document));
        * the stored XML is merely marked stale with a *regenerator*; the
          first reader of the document (keyword verification, XPath, export,
          snapshot) materializes it once.  A write-heavy churn stream never
          pays document rendering for bodies nobody reads in between.

        The caller is trusted to hand exact parts — the manager's update
        path derives them from the same rendering rules ``to_document``
        uses, and the property tests pin the live index against a
        from-scratch rebuild.  A document whose *initial* indexing is still
        deferred only swaps its regenerator: the pending flush reads the
        regenerated (latest) body anyway.
        """
        if doc_id not in self._documents:
            raise XmlStoreError(f"no document {doc_id!r} in collection {self.name!r}")
        self._stale[doc_id] = regenerate
        self._lazy_text.pop(doc_id, None)  # text changed; recompute on next verify
        if self._index is None or doc_id in self._pending_index:
            return
        self._index.apply_text_delta(doc_id, removed_parts, added_parts)

    def remove(self, doc_id: str) -> None:
        """Remove a document (raises when absent)."""
        if doc_id not in self._documents:
            raise XmlStoreError(f"no document {doc_id!r} in collection {self.name!r}")
        self._stale.pop(doc_id, None)
        self._lazy_text.pop(doc_id, None)
        del self._documents[doc_id]
        if doc_id in self._pending_index:
            del self._pending_index[doc_id]  # never reached the index
        elif self._index is not None:
            self._index.remove_document(doc_id)

    def _generate_id(self) -> str:
        while True:
            identifier = f"{self.name}-{self._next_serial:06d}"
            self._next_serial += 1
            if identifier not in self._documents:
                return identifier

    @staticmethod
    def _searchable_text(document: XmlDocument) -> str:
        """Text + attribute values, so keyword search also sees attributes."""
        parts = [document.text_content()]
        for element in document.iter():
            parts.extend(element.attributes.values())
        return " ".join(parts)

    # -- retrieval ------------------------------------------------------------------

    def get(self, doc_id: str) -> XmlDocument:
        """The stored document with id *doc_id* (raises when absent)."""
        self._materialize(doc_id)
        try:
            return self._documents[doc_id]
        except KeyError:
            raise XmlStoreError(f"no document {doc_id!r} in collection {self.name!r}") from None

    def document_dict(self, doc_id: str) -> dict[str, Any]:
        """``to_dict`` of the latest body WITHOUT retaining a lazy tree.

        Snapshot dumps use this: a lazily-registered or stale document is
        regenerated, serialized and dropped, so snapshotting a large recovered
        instance does not pin every annotation tree into memory.
        """
        if doc_id not in self._documents:
            raise XmlStoreError(f"no document {doc_id!r} in collection {self.name!r}")
        regenerator = self._stale.get(doc_id)
        if regenerator is not None:
            document = regenerator()
            document.doc_id = doc_id
            return document.to_dict()
        return self._documents[doc_id].to_dict()

    def search_keyword(self, keyword: str, mode: str = "and") -> list[str]:
        """Document ids whose content contains the keyword(s).

        Uses the inverted index for candidate generation when available, then
        verifies each candidate against the raw text (so multi-word phrases
        behave like substring search, matching the paper's "'protease' should
        be a substring" condition).
        """
        phrase = keyword.strip().lower()
        if not phrase:
            return []
        if self._index is not None:
            self.flush_index()
            candidates = self._index.search(keyword, mode=mode)
        else:
            candidates = set(self._documents)
        if mode == "or":
            return sorted(candidates)
        matches = []
        for doc_id in candidates:
            if self._verify_text(doc_id, phrase):
                matches.append(doc_id)
        return sorted(matches)

    def _verify_text(self, doc_id: str, phrase: str) -> bool:
        """Phrase-verify *doc_id* against its latest searchable text.

        Lazily-registered documents verify against the cached text string
        without ever building the tree; everything else materializes the
        latest body first (the pre-lazy behavior).
        """
        text = self._lazy_text.get(doc_id)
        if text is None:
            self._materialize(doc_id)  # verify against the latest body
            text = self._searchable_text(self._documents[doc_id])
        text = text.lower()
        return phrase in text or all(token in text for token in phrase.split())

    def document_matches_keyword(self, doc_id: str, keyword: str, mode: str = "and") -> bool:
        """Membership probe: would *doc_id* appear in ``search_keyword``?

        Exactly the candidate-then-verify semantics of :meth:`search_keyword`
        restricted to one document, so the adaptive query executor can verify
        a surviving candidate in O(query tokens) instead of materializing the
        keyword's whole match set.
        """
        phrase = keyword.strip().lower()
        if not phrase or doc_id not in self._documents:
            return False
        if self._index is not None:
            self.flush_index()
            if not self._index.document_contains(doc_id, keyword, mode=mode):
                return False
            if mode == "or":
                return True
        elif mode == "or":
            # Mirrors search_keyword's index-free OR path (every document).
            return True
        return self._verify_text(doc_id, phrase)

    def keyword_document_frequency(self, keyword: str, mode: str = "and") -> int:
        """Estimated number of documents matching *keyword* (planner input).

        AND takes the rarest token's document frequency (an upper bound on
        the intersection), OR sums the frequencies (an upper bound on the
        union).  Documents whose indexing is still deferred are not counted —
        the estimate is a planning input, not an answer, and reading the
        index without forcing a flush keeps this callable from any thread.
        """
        if self._index is None:
            return len(self._documents)
        from repro.xmlstore.text_index import tokenize

        tokens = tokenize(keyword)
        if not tokens:
            return 0
        frequencies = [self._index.document_frequency(token) for token in tokens]
        if mode == "or":
            return min(sum(frequencies), len(self._documents))
        return min(frequencies)

    def scan_keyword(self, keyword: str) -> list[str]:
        """Index-free keyword search (full scan); baseline for benchmarks."""
        self._materialize_all()
        phrase = keyword.strip().lower()
        matches = []
        for doc_id, document in self._documents.items():
            text = self._searchable_text(document).lower()
            if phrase in text or all(token in text for token in phrase.split()):
                matches.append(doc_id)
        return sorted(matches)

    def select(self, xpath: str) -> list[tuple[str, Any]]:
        """Evaluate an XPath-subset expression against every document.

        Returns ``(doc_id, node_or_value)`` pairs.
        """
        self._materialize_all()
        compiled = XPath(xpath)
        results: list[tuple[str, Any]] = []
        for doc_id, document in self._documents.items():
            for node in compiled.evaluate(document):
                results.append((doc_id, node))
        return results

    def query(self) -> FlworQuery:
        """Start a FLWOR-lite query over the whole collection."""
        self._materialize_all()
        return FlworQuery(self._documents.values())

    def filter_documents(self, predicate: Callable[[XmlDocument], bool]) -> list[XmlDocument]:
        """Documents satisfying an arbitrary predicate."""
        self._materialize_all()
        return [document for document in self._documents.values() if predicate(document)]

    def fragments(self, xpath: str) -> list[XmlElement]:
        """All element fragments matching *xpath* across the collection."""
        return [node for _, node in self.select(xpath) if isinstance(node, XmlElement)]

    # -- persistence -------------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the collection to a JSON file."""
        self._materialize_all()
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "name": self.name,
            "indexed": self.indexed,
            "documents": {doc_id: document.to_dict() for doc_id, document in self._documents.items()},
        }
        with target.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        return target

    @classmethod
    def load(cls, path: str | Path) -> "DocumentCollection":
        """Read a collection previously written with :meth:`save`."""
        source = Path(path)
        if not source.exists():
            raise XmlStoreError(f"collection snapshot {source} does not exist")
        with source.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        collection = cls(name=payload.get("name", "annotations"), indexed=payload.get("indexed", True))
        for doc_id, document_payload in payload.get("documents", {}).items():
            collection.add(XmlDocument.from_dict(document_payload), doc_id=doc_id)
        return collection

    def export_xml(self, doc_id: str) -> str:
        """Serialize one stored document back to XML text."""
        return serialize_xml(self.get(doc_id))

    def to_corpus_xml(self) -> str:
        """Serialize the whole collection as one ``<corpus>`` XML document.

        The paper notes "the collection of all annotations constitutes a
        database of XML documents"; this renders that database as a single
        corpus document that :meth:`from_corpus_xml` can read back.
        """
        self._materialize_all()
        root = XmlElement("corpus", attributes={"name": self.name})
        for doc_id in self._documents:
            document = self._documents[doc_id]
            wrapper = root.add("document", id=doc_id)
            wrapper.append(document.root.copy())
        return serialize_xml(XmlDocument(root, doc_id=self.name))

    @classmethod
    def from_corpus_xml(cls, text: str, indexed: bool = True) -> "DocumentCollection":
        """Reconstruct a collection from :meth:`to_corpus_xml` output."""
        document = parse_xml(text)
        if document.root.tag != "corpus":
            raise XmlStoreError("expected a <corpus> root element")
        collection = cls(name=document.root.get("name", "annotations"), indexed=indexed)
        for wrapper in document.root.find_all("document"):
            doc_id = wrapper.get("id")
            children = wrapper.children
            if not children:
                raise XmlStoreError(f"corpus <document id={doc_id!r}> is empty")
            inner = children[0].copy()
            collection.add(XmlDocument(inner, doc_id=doc_id), doc_id=doc_id)
        return collection
