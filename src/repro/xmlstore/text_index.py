"""Inverted keyword index over annotation contents.

Keyword conditions ("the annotation content contains 'protease'") are the
most common predicate in Graphitti queries.  The inverted index maps each
token to the set of document ids containing it, so keyword searches avoid
scanning every XML document.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable, Iterator

_TOKEN_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9_.\-]*")

#: Minimal English stop-word list; annotation text is mostly technical terms.
STOP_WORDS = frozenset(
    {
        "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has",
        "in", "is", "it", "its", "of", "on", "that", "the", "to", "was",
        "were", "will", "with",
    }
)


def tokenize(text: str, drop_stop_words: bool = True) -> list[str]:
    """Split *text* into lower-cased tokens.

    Tokens keep internal dots, dashes and underscores so identifiers like
    ``protein.TP53`` survive as single searchable terms (and are *also*
    indexed by their dot-separated parts by :class:`InvertedIndex`).
    """
    tokens = [token.lower() for token in _TOKEN_RE.findall(text or "")]
    if drop_stop_words:
        tokens = [token for token in tokens if token not in STOP_WORDS]
    return tokens


def _expand_token(token: str) -> set[str]:
    """A token plus its dot/dash separated sub-terms."""
    expansion = {token}
    for separator in (".", "-", "_"):
        if separator in token:
            expansion.update(part for part in token.split(separator) if part)
    return expansion


class InvertedIndex:
    """Token -> document-id inverted index with term-frequency counts."""

    def __init__(self) -> None:
        self._postings: dict[str, dict[str, int]] = {}
        self._doc_lengths: dict[str, int] = {}
        # doc id -> the terms indexed for that document, so removal walks the
        # document's own postings instead of the whole vocabulary.
        self._doc_terms: dict[str, tuple[str, ...]] = {}

    def __len__(self) -> int:
        return len(self._doc_lengths)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_lengths

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct indexed tokens."""
        return len(self._postings)

    def add_document(self, doc_id: str, text: str) -> None:
        """Index (or re-index) a document's text."""
        if doc_id in self._doc_lengths:
            self.remove_document(doc_id)
        tokens = tokenize(text)
        counts = Counter()
        for token in tokens:
            for term in _expand_token(token):
                counts[term] += 1
        for term, count in counts.items():
            self._postings.setdefault(term, {})[doc_id] = count
        self._doc_lengths[doc_id] = len(tokens)
        self._doc_terms[doc_id] = tuple(counts)

    def remove_document(self, doc_id: str) -> None:
        """Remove a document from the index (no-op when absent).

        O(terms in the document): the reverse map names exactly the postings
        lists holding the document, so the vocabulary is never scanned.
        """
        if doc_id not in self._doc_lengths:
            return
        for term in self._doc_terms.pop(doc_id, ()):
            postings = self._postings.get(term)
            if postings is None:
                continue
            postings.pop(doc_id, None)
            if not postings:
                del self._postings[term]
        del self._doc_lengths[doc_id]

    def search(self, query: str, mode: str = "and") -> set[str]:
        """Document ids matching the query keywords.

        ``mode='and'`` (default) requires every query token; ``mode='or'``
        requires at least one.
        """
        tokens = tokenize(query)
        if not tokens:
            return set()
        postings_per_token = [self._lookup(token) for token in tokens]
        if mode == "and":
            result = postings_per_token[0]
            for postings in postings_per_token[1:]:
                result &= postings
            return result
        if mode == "or":
            result = set()
            for postings in postings_per_token:
                result |= postings
            return result
        raise ValueError(f"unknown search mode {mode!r}")

    def search_phrase_documents(self, phrase: str) -> set[str]:
        """Conservative phrase search: documents containing every phrase token.

        Exact adjacency is not tracked by the index; callers that need true
        phrase semantics re-check the raw text of the candidates (this is the
        standard candidate-then-verify pattern and is what
        :class:`~repro.xmlstore.collection.DocumentCollection` does).
        """
        return self.search(phrase, mode="and")

    def document_contains(self, doc_id: str, query: str, mode: str = "and") -> bool:
        """Membership probe: would *doc_id* appear in ``search(query, mode)``?

        One postings-dict lookup per query token — the semi-join building
        block the adaptive query executor uses to verify a surviving
        candidate against the index instead of materializing the full match
        set.
        """
        tokens = tokenize(query)
        if not tokens:
            return False
        if mode == "and":
            return all(doc_id in self._postings.get(token, ()) for token in tokens)
        if mode == "or":
            return any(doc_id in self._postings.get(token, ()) for token in tokens)
        raise ValueError(f"unknown search mode {mode!r}")

    def term_frequency(self, term: str, doc_id: str) -> int:
        """Occurrences of *term* in *doc_id* (0 when absent)."""
        return self._postings.get(term.lower(), {}).get(doc_id, 0)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing *term*."""
        return len(self._postings.get(term.lower(), ()))

    def terms(self) -> Iterator[str]:
        """Iterate over the indexed vocabulary."""
        return iter(self._postings)

    def document_ids(self) -> Iterable[str]:
        """Ids of every indexed document."""
        return self._doc_lengths.keys()

    def _lookup(self, token: str) -> set[str]:
        return set(self._postings.get(token, ()))
