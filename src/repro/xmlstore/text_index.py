"""Inverted keyword index over annotation contents.

Keyword conditions ("the annotation content contains 'protease'") are the
most common predicate in Graphitti queries.  The inverted index maps each
token to the set of document ids containing it, so keyword searches avoid
scanning every XML document.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable, Iterator

_TOKEN_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9_.\-]*")

#: Minimal English stop-word list; annotation text is mostly technical terms.
STOP_WORDS = frozenset(
    {
        "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has",
        "in", "is", "it", "its", "of", "on", "that", "the", "to", "was",
        "were", "will", "with",
    }
)


def tokenize(text: str, drop_stop_words: bool = True) -> list[str]:
    """Split *text* into lower-cased tokens.

    Tokens keep internal dots, dashes and underscores so identifiers like
    ``protein.TP53`` survive as single searchable terms (and are *also*
    indexed by their dot-separated parts by :class:`InvertedIndex`).
    """
    tokens = [token.lower() for token in _TOKEN_RE.findall(text or "")]
    if drop_stop_words:
        tokens = [token for token in tokens if token not in STOP_WORDS]
    return tokens


def _expand_token(token: str) -> set[str]:
    """A token plus its dot/dash separated sub-terms."""
    expansion = {token}
    for separator in (".", "-", "_"):
        if separator in token:
            expansion.update(part for part in token.split(separator) if part)
    return expansion


class InvertedIndex:
    """Token -> document-id inverted index with term-frequency counts."""

    def __init__(self) -> None:
        self._postings: dict[str, dict[str, int]] = {}
        self._doc_lengths: dict[str, int] = {}
        # doc id -> the terms indexed for that document, so removal walks the
        # document's own postings instead of the whole vocabulary.
        self._doc_terms: dict[str, tuple[str, ...]] = {}

    def __len__(self) -> int:
        return len(self._doc_lengths)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_lengths

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct indexed tokens."""
        return len(self._postings)

    def add_document(self, doc_id: str, text: str) -> None:
        """Index (or re-index) a document's text."""
        if doc_id in self._doc_lengths:
            self.remove_document(doc_id)
        tokens = tokenize(text)
        counts = Counter()
        for token in tokens:
            for term in _expand_token(token):
                counts[term] += 1
        for term, count in counts.items():
            self._postings.setdefault(term, {})[doc_id] = count
        self._doc_lengths[doc_id] = len(tokens)
        self._doc_terms[doc_id] = tuple(counts)

    def update_document(self, doc_id: str, text: str) -> tuple[int, int]:
        """Re-index a document's text by *term diff*; returns ``(touched, dropped)``.

        Where :meth:`add_document` on an already-indexed id removes every old
        posting and re-inserts every new one, this walks the document's own
        reverse map (:attr:`_doc_terms`) against the new term counts and only
        touches postings that actually changed: terms no longer present are
        dropped, terms with a new count are rewritten, and unchanged terms —
        the overwhelming majority under a small edit — are never visited.
        ``touched`` counts postings written, ``dropped`` postings removed; an
        unindexed id falls back to a plain :meth:`add_document`.
        """
        if doc_id not in self._doc_lengths:
            self.add_document(doc_id, text)
            return (len(self._doc_terms.get(doc_id, ())), 0)
        tokens = tokenize(text)
        counts = Counter()
        for token in tokens:
            for term in _expand_token(token):
                counts[term] += 1
        touched = dropped = 0
        for term in self._doc_terms.get(doc_id, ()):
            if term in counts:
                continue
            postings = self._postings.get(term)
            if postings is None:
                continue
            postings.pop(doc_id, None)
            if not postings:
                del self._postings[term]
            dropped += 1
        for term, count in counts.items():
            postings = self._postings.setdefault(term, {})
            if postings.get(doc_id) != count:
                postings[doc_id] = count
                touched += 1
        self._doc_lengths[doc_id] = len(tokens)
        self._doc_terms[doc_id] = tuple(counts)
        return (touched, dropped)

    def apply_text_delta(
        self,
        doc_id: str,
        removed_parts: Iterable[str],
        added_parts: Iterable[str],
    ) -> tuple[int, int]:
        """Adjust a document's postings by an **exact text-part delta**.

        The searchable text of a document is a space-joined sequence of parts
        (text nodes and attribute values), so its token multiset is additive
        over parts.  A caller that knows exactly which parts an edit removed
        and added (the mutation lifecycle's update path does) can hand them
        here, and only the terms whose counts actually change are touched —
        an O(edit) re-index instead of an O(document) one.  The document must
        already be indexed; counts are floored at zero so an inexact caller
        degrades to a slightly-overcounted index rather than a corrupt one.
        Returns ``(touched, dropped)`` posting counts.
        """
        if doc_id not in self._doc_lengths:
            raise KeyError(f"document {doc_id!r} is not indexed")
        removed_tokens = [token for part in removed_parts for token in tokenize(part)]
        added_tokens = [token for part in added_parts for token in tokenize(part)]
        delta: Counter = Counter()
        for token in added_tokens:
            for term in _expand_token(token):
                delta[term] += 1
        for token in removed_tokens:
            for term in _expand_token(token):
                delta[term] -= 1
        touched = dropped = 0
        current_terms = set(self._doc_terms.get(doc_id, ()))
        for term, change in delta.items():
            if change == 0:
                continue
            postings = self._postings.setdefault(term, {})
            count = postings.get(doc_id, 0) + change
            if count > 0:
                postings[doc_id] = count
                current_terms.add(term)
                touched += 1
            else:
                postings.pop(doc_id, None)
                if not postings:
                    del self._postings[term]
                current_terms.discard(term)
                dropped += 1
        self._doc_terms[doc_id] = tuple(current_terms)
        self._doc_lengths[doc_id] = max(
            0, self._doc_lengths[doc_id] + len(added_tokens) - len(removed_tokens)
        )
        return (touched, dropped)

    def remove_document(self, doc_id: str) -> None:
        """Remove a document from the index (no-op when absent).

        O(terms in the document): the reverse map names exactly the postings
        lists holding the document, so the vocabulary is never scanned.
        """
        if doc_id not in self._doc_lengths:
            return
        for term in self._doc_terms.pop(doc_id, ()):
            postings = self._postings.get(term)
            if postings is None:
                continue
            postings.pop(doc_id, None)
            if not postings:
                del self._postings[term]
        del self._doc_lengths[doc_id]

    def search(self, query: str, mode: str = "and") -> set[str]:
        """Document ids matching the query keywords.

        ``mode='and'`` (default) requires every query token; ``mode='or'``
        requires at least one.
        """
        tokens = tokenize(query)
        if not tokens:
            return set()
        postings_per_token = [self._lookup(token) for token in tokens]
        if mode == "and":
            result = postings_per_token[0]
            for postings in postings_per_token[1:]:
                result &= postings
            return result
        if mode == "or":
            result = set()
            for postings in postings_per_token:
                result |= postings
            return result
        raise ValueError(f"unknown search mode {mode!r}")

    def search_phrase_documents(self, phrase: str) -> set[str]:
        """Conservative phrase search: documents containing every phrase token.

        Exact adjacency is not tracked by the index; callers that need true
        phrase semantics re-check the raw text of the candidates (this is the
        standard candidate-then-verify pattern and is what
        :class:`~repro.xmlstore.collection.DocumentCollection` does).
        """
        return self.search(phrase, mode="and")

    def document_contains(self, doc_id: str, query: str, mode: str = "and") -> bool:
        """Membership probe: would *doc_id* appear in ``search(query, mode)``?

        One postings-dict lookup per query token — the semi-join building
        block the adaptive query executor uses to verify a surviving
        candidate against the index instead of materializing the full match
        set.
        """
        tokens = tokenize(query)
        if not tokens:
            return False
        if mode == "and":
            return all(doc_id in self._postings.get(token, ()) for token in tokens)
        if mode == "or":
            return any(doc_id in self._postings.get(token, ()) for token in tokens)
        raise ValueError(f"unknown search mode {mode!r}")

    def term_frequency(self, term: str, doc_id: str) -> int:
        """Occurrences of *term* in *doc_id* (0 when absent)."""
        return self._postings.get(term.lower(), {}).get(doc_id, 0)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing *term*."""
        return len(self._postings.get(term.lower(), ()))

    def terms(self) -> Iterator[str]:
        """Iterate over the indexed vocabulary."""
        return iter(self._postings)

    def document_ids(self) -> Iterable[str]:
        """Ids of every indexed document."""
        return self._doc_lengths.keys()

    def _lookup(self, token: str) -> set[str]:
        return set(self._postings.get(token, ()))
