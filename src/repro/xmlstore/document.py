"""Lightweight XML element/document model.

Annotation contents in Graphitti are XML documents combining Dublin Core
elements with user-defined tags.  This module provides a small tree model
(:class:`XmlElement`, :class:`XmlDocument`) that is independent of
:mod:`xml.etree` so the XPath-subset evaluator and the FLWOR engine can walk
parent links, document order, and text content without adapters.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import XmlStoreError


class XmlElement:
    """One XML element: tag, attributes, text, and ordered children.

    Elements keep a reference to their parent so upward navigation (``..`` in
    XPath, ancestor checks in the query layer) is O(1).
    """

    __slots__ = ("tag", "attributes", "text", "_children", "parent")

    def __init__(
        self,
        tag: str,
        attributes: Mapping[str, str] | None = None,
        text: str = "",
    ):
        if not tag or not isinstance(tag, str):
            raise XmlStoreError("element tag must be a non-empty string")
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.text = text
        self._children: list["XmlElement"] = []
        self.parent: "XmlElement | None" = None

    # -- tree construction --------------------------------------------------

    def append(self, child: "XmlElement") -> "XmlElement":
        """Append *child* and return it (for chaining)."""
        if child.parent is not None:
            raise XmlStoreError(f"element <{child.tag}> already has a parent")
        child.parent = self
        self._children.append(child)
        return child

    def add(self, tag: str, text: str = "", **attributes: str) -> "XmlElement":
        """Create a child element and return it."""
        child = XmlElement(tag, attributes={k: str(v) for k, v in attributes.items()}, text=text)
        return self.append(child)

    def remove(self, child: "XmlElement") -> None:
        """Remove a direct child."""
        try:
            self._children.remove(child)
        except ValueError:
            raise XmlStoreError(f"<{child.tag}> is not a child of <{self.tag}>") from None
        child.parent = None

    # -- navigation -----------------------------------------------------------

    @property
    def children(self) -> tuple["XmlElement", ...]:
        """Direct child elements, in document order."""
        return tuple(self._children)

    def __iter__(self) -> Iterator["XmlElement"]:
        return iter(self._children)

    def __len__(self) -> int:
        return len(self._children)

    def iter(self) -> Iterator["XmlElement"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self._children:
            yield from child.iter()

    def find(self, tag: str) -> "XmlElement | None":
        """First direct child with the given tag, or ``None``."""
        for child in self._children:
            if child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> list["XmlElement"]:
        """All direct children with the given tag."""
        return [child for child in self._children if child.tag == tag]

    def descendants(self, tag: str | None = None) -> Iterator["XmlElement"]:
        """All descendants (excluding self), optionally filtered by tag."""
        for child in self._children:
            if tag is None or child.tag == tag:
                yield child
            yield from child.descendants(tag)

    def ancestors(self) -> Iterator["XmlElement"]:
        """All ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "XmlElement":
        """The topmost ancestor (self when unattached)."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def path(self) -> str:
        """Slash-separated tag path from the root to this element."""
        tags = [self.tag]
        tags.extend(ancestor.tag for ancestor in self.ancestors())
        return "/" + "/".join(reversed(tags))

    # -- content ----------------------------------------------------------------

    def get(self, attribute: str, default: str | None = None) -> str | None:
        """Attribute value or *default*."""
        return self.attributes.get(attribute, default)

    def set(self, attribute: str, value: Any) -> None:
        """Set an attribute (values are stringified)."""
        self.attributes[attribute] = str(value)

    def text_content(self) -> str:
        """Concatenated text of this element and every descendant."""
        parts = [self.text] if self.text else []
        for child in self._children:
            content = child.text_content()
            if content:
                parts.append(content)
        return " ".join(parts)

    def child_text(self, tag: str, default: str = "") -> str:
        """Text of the first direct child with *tag* (or *default*)."""
        child = self.find(tag)
        return child.text if child is not None else default

    # -- comparison / serialization ------------------------------------------------

    def equals(self, other: "XmlElement") -> bool:
        """Deep structural equality (tag, attributes, text, children)."""
        if self.tag != other.tag or self.attributes != other.attributes:
            return False
        if (self.text or "").strip() != (other.text or "").strip():
            return False
        if len(self._children) != len(other._children):
            return False
        return all(mine.equals(theirs) for mine, theirs in zip(self._children, other._children))

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation of the subtree."""
        return {
            "tag": self.tag,
            "attributes": dict(self.attributes),
            "text": self.text,
            "children": [child.to_dict() for child in self._children],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "XmlElement":
        """Reconstruct a subtree from :meth:`to_dict` output."""
        element = cls(payload["tag"], attributes=payload.get("attributes", {}), text=payload.get("text", ""))
        for child_payload in payload.get("children", []):
            element.append(cls.from_dict(child_payload))
        return element

    def copy(self) -> "XmlElement":
        """Deep copy of the subtree (detached from any parent)."""
        clone = XmlElement(self.tag, attributes=dict(self.attributes), text=self.text)
        for child in self._children:
            clone.append(child.copy())
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XmlElement {self.tag} attrs={len(self.attributes)} children={len(self._children)}>"


class XmlDocument:
    """An XML document: a root element plus a document identifier."""

    def __init__(self, root: XmlElement, doc_id: str | None = None):
        self.root = root
        self.doc_id = doc_id

    def iter(self) -> Iterator[XmlElement]:
        """Depth-first iteration over every element."""
        return self.root.iter()

    def text_content(self) -> str:
        """Concatenated text of the whole document."""
        return self.root.text_content()

    def find_elements(self, tag: str) -> list[XmlElement]:
        """Every element (at any depth) with the given tag."""
        return [element for element in self.root.iter() if element.tag == tag]

    def element_count(self) -> int:
        """Number of elements in the document."""
        return sum(1 for _ in self.root.iter())

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {"doc_id": self.doc_id, "root": self.root.to_dict()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "XmlDocument":
        """Reconstruct from :meth:`to_dict` output."""
        return cls(root=XmlElement.from_dict(payload["root"]), doc_id=payload.get("doc_id"))

    def copy(self) -> "XmlDocument":
        """Deep copy of the document."""
        return XmlDocument(self.root.copy(), doc_id=self.doc_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XmlDocument {self.doc_id or '?'} root={self.root.tag}>"
