"""XPath-subset evaluator for annotation content documents.

The paper searches the annotation collection "using standard XQuery"; the
path-navigation core of that is XPath.  The subset implemented here covers
what Graphitti queries need:

* absolute and relative location paths: ``/annotation/dc:subject``,
* the descendant-or-self shorthand ``//keyword``,
* wildcards ``*``,
* attribute access ``@name`` as the final step,
* predicates on steps: positional (``[2]``), attribute equality
  (``[@lang='en']``), child-text equality (``[title='x']``), and
  ``contains(., 'text')`` / ``contains(@attr, 'text')``,
* the ``text()`` node selector as the final step.

Evaluation returns a list of :class:`~repro.xmlstore.document.XmlElement`
or, for ``@attr`` / ``text()`` terminal steps, a list of strings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import XPathError
from repro.xmlstore.document import XmlDocument, XmlElement

_STEP_RE = re.compile(r"^(?P<axis>//|/)?(?P<name>@?[\w:.\-*]+|text\(\))(?P<predicates>(\[[^\]]*\])*)$")
_PREDICATE_RE = re.compile(r"\[([^\]]*)\]")


@dataclass(frozen=True)
class _Step:
    """One parsed location step."""

    descendant: bool
    name: str
    predicates: tuple[str, ...] = field(default_factory=tuple)

    @property
    def is_attribute(self) -> bool:
        return self.name.startswith("@")

    @property
    def is_text(self) -> bool:
        return self.name == "text()"


class XPath:
    """A compiled XPath-subset expression."""

    def __init__(self, expression: str):
        if not expression or not expression.strip():
            raise XPathError("empty XPath expression")
        self.expression = expression.strip()
        self.absolute = self.expression.startswith("/")
        self._steps = self._compile(self.expression)

    @staticmethod
    def _split_steps(expression: str) -> list[str]:
        """Split on '/' while keeping '//' attached to the following step and
        ignoring slashes inside predicate brackets."""
        steps: list[str] = []
        current = ""
        depth = 0
        index = 0
        while index < len(expression):
            char = expression[index]
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            if char == "/" and depth == 0:
                if expression[index : index + 2] == "//":
                    if current:
                        steps.append(current)
                    current = "//"
                    index += 2
                    continue
                if current:
                    steps.append(current)
                current = "/"
                index += 1
                continue
            current += char
            index += 1
        if current:
            steps.append(current)
        return steps

    def _compile(self, expression: str) -> tuple[_Step, ...]:
        raw_steps = self._split_steps(expression)
        steps: list[_Step] = []
        for raw in raw_steps:
            if raw in ("/", "//"):
                raise XPathError(f"malformed path {expression!r}")
            match = _STEP_RE.match(raw)
            if match is None:
                raise XPathError(f"unsupported location step {raw!r} in {expression!r}")
            descendant = match.group("axis") == "//"
            name = match.group("name")
            predicates = tuple(_PREDICATE_RE.findall(match.group("predicates") or ""))
            steps.append(_Step(descendant=descendant, name=name, predicates=predicates))
        if not steps:
            raise XPathError(f"no steps in XPath {expression!r}")
        for step in steps[:-1]:
            if step.is_attribute or step.is_text:
                raise XPathError("@attribute and text() selectors must be the final step")
        return tuple(steps)

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, context: XmlDocument | XmlElement) -> list[Any]:
        """Evaluate against a document or element and return matching nodes."""
        root = context.root if isinstance(context, XmlDocument) else context
        if self.absolute:
            current: list[XmlElement] = [root.root() if isinstance(context, XmlElement) else root]
            # An absolute path's first step names the root element itself.
            first = self._steps[0]
            if not first.is_attribute and not first.is_text:
                current = [
                    node
                    for node in self._initial_candidates(current, first)
                    if self._step_matches(node, first)
                ]
                remaining = self._steps[1:]
            else:
                remaining = self._steps
        else:
            current = [root]
            remaining = self._steps
        for step in remaining:
            if step.is_attribute or step.is_text:
                return self._terminal_values(current, step)
            next_nodes: list[XmlElement] = []
            for node in current:
                candidates = list(node.descendants()) if step.descendant else list(node.children)
                next_nodes.extend(
                    candidate for candidate in candidates if self._step_matches(candidate, step)
                )
            current = next_nodes
        return current

    def _initial_candidates(self, roots: list[XmlElement], step: _Step) -> list[XmlElement]:
        if step.descendant:
            candidates: list[XmlElement] = []
            for root in roots:
                candidates.append(root)
                candidates.extend(root.descendants())
            return candidates
        return roots

    def _terminal_values(self, nodes: Sequence[XmlElement], step: _Step) -> list[Any]:
        values: list[Any] = []
        for node in nodes:
            candidates = list(node.descendants()) if step.descendant else [node]
            for candidate in candidates:
                if step.is_text:
                    if candidate.text:
                        values.append(candidate.text)
                else:
                    attribute = step.name[1:]
                    if attribute in candidate.attributes:
                        values.append(candidate.attributes[attribute])
        return values

    def _step_matches(self, element: XmlElement, step: _Step) -> bool:
        if step.name != "*" and element.tag != step.name:
            return False
        for predicate in step.predicates:
            if not self._predicate_matches(element, predicate.strip()):
                return False
        return True

    def _predicate_matches(self, element: XmlElement, predicate: str) -> bool:
        if not predicate:
            raise XPathError("empty predicate")
        if predicate.isdigit():
            parent = element.parent
            siblings = (
                [sibling for sibling in parent.children if sibling.tag == element.tag]
                if parent is not None
                else [element]
            )
            return siblings.index(element) + 1 == int(predicate)
        contains_match = re.match(
            r"contains\(\s*(\.|@[\w:.\-]+)\s*,\s*'([^']*)'\s*\)", predicate
        )
        if contains_match is not None:
            target, needle = contains_match.groups()
            if target == ".":
                haystack = element.text_content()
            else:
                haystack = element.attributes.get(target[1:], "")
            return needle.lower() in haystack.lower()
        equality_match = re.match(r"(@?[\w:.\-]+)\s*=\s*'([^']*)'", predicate)
        if equality_match is not None:
            target, expected = equality_match.groups()
            if target.startswith("@"):
                return element.attributes.get(target[1:]) == expected
            child = element.find(target)
            return child is not None and child.text == expected
        existence_match = re.match(r"^(@?[\w:.\-]+)$", predicate)
        if existence_match is not None:
            target = existence_match.group(1)
            if target.startswith("@"):
                return target[1:] in element.attributes
            return element.find(target) is not None
        raise XPathError(f"unsupported predicate [{predicate}]")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XPath({self.expression!r})"


def evaluate_xpath(expression: str, context: XmlDocument | XmlElement) -> list[Any]:
    """Compile and evaluate an XPath-subset expression in one call."""
    return XPath(expression).evaluate(context)
