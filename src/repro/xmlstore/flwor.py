"""FLWOR-lite query engine over the annotation document collection.

XQuery's core construct is the FLWOR expression (``for``-``let``-``where``-
``order by``-``return``).  Graphitti only needs a pragmatic subset of it to
search annotation contents and extract fragments, so this module provides a
fluent builder with exactly those clauses:

``FlworQuery(collection).for_each("//referent").where(...).order_by(...).select(...)``

The bindings flowing through the pipeline are :class:`Binding` objects
pairing the document with the element bound by the ``for`` clause, so
``where`` and ``select`` callbacks can look at either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from repro.errors import XmlStoreError
from repro.xmlstore.document import XmlDocument, XmlElement
from repro.xmlstore.xpath import XPath


@dataclass
class Binding:
    """One tuple in the FLWOR pipeline: a document plus a bound item."""

    document: XmlDocument
    item: Any
    lets: dict[str, Any]

    def let(self, name: str) -> Any:
        """Value bound by a previous ``let`` clause."""
        try:
            return self.lets[name]
        except KeyError:
            raise XmlStoreError(f"no let-binding named {name!r}") from None


class FlworQuery:
    """A FLWOR-lite query over a sequence of documents.

    The query is lazy and immutable: every clause returns a new query object
    and nothing is evaluated until :meth:`execute`, :meth:`first` or
    iteration.
    """

    def __init__(self, documents: Iterable[XmlDocument]):
        self._documents = list(documents)
        self._for_path: XPath | None = None
        self._lets: list[tuple[str, Callable[[Binding], Any]]] = []
        self._wheres: list[Callable[[Binding], bool]] = []
        self._order: list[tuple[Callable[[Binding], Any], bool]] = []
        self._select: Callable[[Binding], Any] | None = None

    def _clone(self) -> "FlworQuery":
        clone = FlworQuery(self._documents)
        clone._for_path = self._for_path
        clone._lets = list(self._lets)
        clone._wheres = list(self._wheres)
        clone._order = list(self._order)
        clone._select = self._select
        return clone

    # -- clauses ---------------------------------------------------------------

    def for_each(self, xpath: str) -> "FlworQuery":
        """``for $x in collection()//path`` — bind each node matching *xpath*.

        Without a ``for_each`` clause the query binds each document once
        (item = the document root).
        """
        clone = self._clone()
        clone._for_path = XPath(xpath)
        return clone

    def let(self, name: str, fn: Callable[[Binding], Any]) -> "FlworQuery":
        """``let $name := fn(binding)`` — add a named derived value."""
        clone = self._clone()
        clone._lets.append((name, fn))
        return clone

    def where(self, fn: Callable[[Binding], bool]) -> "FlworQuery":
        """``where fn(binding)`` — keep bindings for which *fn* is true."""
        clone = self._clone()
        clone._wheres.append(fn)
        return clone

    def where_contains(self, keyword: str) -> "FlworQuery":
        """Shorthand: keep bindings whose bound item's text contains *keyword*."""
        lowered = keyword.lower()

        def check(binding: Binding) -> bool:
            item = binding.item
            if isinstance(item, XmlElement):
                return lowered in item.text_content().lower()
            if isinstance(item, XmlDocument):
                return lowered in item.text_content().lower()
            return lowered in str(item).lower()

        return self.where(check)

    def where_path_equals(self, xpath: str, expected: str) -> "FlworQuery":
        """Shorthand: keep bindings where *xpath* (relative to the bound
        element) yields a value equal to *expected*."""
        compiled = XPath(xpath)

        def check(binding: Binding) -> bool:
            context = binding.item if isinstance(binding.item, (XmlElement, XmlDocument)) else binding.document
            values = compiled.evaluate(context)
            for value in values:
                text = value.text if isinstance(value, XmlElement) else str(value)
                if text == expected:
                    return True
            return False

        return self.where(check)

    def order_by(self, fn: Callable[[Binding], Any], descending: bool = False) -> "FlworQuery":
        """``order by fn(binding)``."""
        clone = self._clone()
        clone._order.append((fn, descending))
        return clone

    def select(self, fn: Callable[[Binding], Any]) -> "FlworQuery":
        """``return fn(binding)`` — shape the output of each binding."""
        clone = self._clone()
        clone._select = fn
        return clone

    def select_path(self, xpath: str) -> "FlworQuery":
        """Shorthand ``return``: evaluate *xpath* relative to the bound item."""
        compiled = XPath(xpath)

        def project(binding: Binding) -> Any:
            context = binding.item if isinstance(binding.item, (XmlElement, XmlDocument)) else binding.document
            return compiled.evaluate(context)

        return self.select(project)

    # -- evaluation ---------------------------------------------------------------

    def _bindings(self) -> Iterator[Binding]:
        for document in self._documents:
            if self._for_path is None:
                items: list[Any] = [document.root]
            else:
                items = self._for_path.evaluate(document)
            for item in items:
                binding = Binding(document=document, item=item, lets={})
                for name, fn in self._lets:
                    binding.lets[name] = fn(binding)
                if all(where(binding) for where in self._wheres):
                    yield binding

    def execute(self) -> list[Any]:
        """Run the query and return the projected results."""
        bindings = list(self._bindings())
        for key_fn, descending in reversed(self._order):
            bindings.sort(key=key_fn, reverse=descending)
        if self._select is None:
            return [binding.item for binding in bindings]
        return [self._select(binding) for binding in bindings]

    def bindings(self) -> list[Binding]:
        """Run the query but return the raw bindings (document + item)."""
        bindings = list(self._bindings())
        for key_fn, descending in reversed(self._order):
            bindings.sort(key=key_fn, reverse=descending)
        return bindings

    def first(self) -> Any | None:
        """First projected result or ``None``."""
        results = self.execute()
        return results[0] if results else None

    def count(self) -> int:
        """Number of bindings surviving the ``where`` clauses."""
        return len(list(self._bindings()))

    def __iter__(self) -> Iterator[Any]:
        return iter(self.execute())
