"""Command-line interface for Graphitti.

Run as ``python -m repro <command>``.  The CLI drives the same workflows the
paper's GUI does — build a study, inspect it, administer it, and query it —
against a persisted instance snapshot.

Commands
--------
``build {influenza,neuroscience} PATH``
    Build a paper scenario and save it to PATH.
``stats PATH``
    Print instance statistics.
``admin PATH``
    Print the administrative report (integrity, economy, orphans, activity).
``query PATH GQL``
    Run a GQL query and print the result.
``update PATH ANNOTATION_ID [--title/--body/--keywords/...]``
    Update a committed annotation in place (delta index maintenance).
``delete-object PATH OBJECT_ID [--no-cascade]``
    Retire a data object, cascading through its annotations.
``scenarios``
    List the built-in scenarios.
``serve ROOT``
    Open (or recover) a durable served instance at ROOT, drive it with a
    concurrent mixed read/write workload, checkpoint, and print the
    serving-layer statistics.  ``--shards N`` serves hash-routed shards;
    ``--replicas N`` adds WAL-shipping read replicas (composable with
    ``--shards``).
``promote ROOT``
    Fenced failover for a replicated ROOT: fence the primary, drain the
    followers from its WAL, promote the most-caught-up one (or ``--target``)
    under a bumped term.  ``--assume-primary-dead`` runs the crash drill
    (the primary directory is only read, never opened live).
``metrics ROOT``
    Open the instance at ROOT (single, sharded or replicated — the topology
    is detected like ``serve`` does) and print its merged observability
    snapshot as JSON or Prometheus text.  ``--exercise N`` first runs the
    reader query mix N times so a cold instance has distributions to show.
``compact ROOT``
    Compact the column storage of a served root (single, sharded or
    replicated): rewrite the annotation/referent heaps dropping tombstoned
    rows, checkpoint, and prune superseded WAL segments.  Prints before/after
    storage gauges (``--json`` for the full report).
``trace ROOT GQL``
    Run one query and pretty-print its span tree — parse, plan, per-
    constraint execution, cache behavior, and (sharded) one child span per
    shard under the scatter stage.  ``--warm`` runs the query once first so
    the traced run shows the cached path.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.core.persistence import load_instance, save_instance
from repro.errors import GraphittiError, ServiceError
from repro.workloads import build_influenza_instance, build_neuroscience_instance

_SCENARIOS = {
    "influenza": build_influenza_instance,
    "neuroscience": build_neuroscience_instance,
}


def _cmd_scenarios(args: argparse.Namespace) -> int:
    print("Available scenarios:")
    for name in _SCENARIOS:
        print(f"  {name}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    if args.scenario not in _SCENARIOS:
        print(f"unknown scenario {args.scenario!r}", file=sys.stderr)
        return 2
    instance = _SCENARIOS[args.scenario]()
    path = save_instance(instance, args.path)
    print(f"built {args.scenario} scenario ({instance.annotation_count} annotations) -> {path}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    instance = load_instance(args.path)
    for key, value in instance.statistics().items():
        print(f"{key}: {value}")
    return 0


def _cmd_admin(args: argparse.Namespace) -> int:
    instance = load_instance(args.path)
    admin = instance.administrator()
    print(admin.check_integrity().summary())
    print("\nindex economy:")
    for key, value in admin.index_economy().items():
        print(f"  {key}: {value}")
    print("\norphan objects:", admin.orphan_objects() or "(none)")
    print("\nleaderboard:")
    for object_id, count in admin.annotation_leaderboard():
        print(f"  {object_id}: {count}")
    print("\ncreator activity:")
    for creator, count in sorted(admin.creator_activity().items()):
        print(f"  {creator}: {count}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.workloads.reporting import study_report

    instance = load_instance(args.path)
    print(study_report(instance))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    instance = load_instance(args.path)
    try:
        explanation = instance.explain(args.gql)
    except GraphittiError as exc:
        print(f"query error: {exc}", file=sys.stderr)
        return 1
    print(explanation["plan"])
    print(f"\nsubqueries: {explanation['subqueries']}")
    print(f"estimated cost: {explanation['estimated_cost']}")
    print(f"targets: {', '.join(explanation['targets'])}")
    return 0


def _cmd_shard_worker(args: argparse.Namespace) -> int:
    from repro.net.server import run_worker
    from repro.obs import ObservabilityConfig
    from repro.service import ServiceConfig

    config = ServiceConfig(
        durability=args.durability,
        checkpoint_interval=args.checkpoint_interval,
        cache_capacity=args.cache_capacity,
        observability=ObservabilityConfig(enabled=not args.no_obs),
    )
    run_worker(
        args.root,
        args.shard_index,
        host=args.host,
        port=args.port,
        config=config,
        max_inflight=args.max_inflight,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import GraphittiService, ServiceConfig
    from repro.workloads.service_scenario import run_service_workload, seed_service_objects

    config = ServiceConfig(
        durability=args.durability,
        checkpoint_interval=args.checkpoint_interval,
        cache_capacity=args.cache_capacity,
    )
    factory = _SCENARIOS[args.scenario] if args.scenario else None
    # A previously sharded root fixes the topology: serving it unsharded
    # (the --shards default) would open a fresh empty instance NEXT TO the
    # shard directories and look like data loss.
    from repro.shard import read_manifest

    manifest = read_manifest(args.root) if Path(args.root).exists() else None
    sharded_root = manifest is not None or any(Path(args.root).glob("shard-*"))
    replicated_root = (Path(args.root) / "replication.json").exists()
    if args.net:
        from repro.net import NetworkShardedGraphittiService

        if args.scenario:
            print(
                "note: --scenario is ignored for network-sharded roots",
                file=sys.stderr,
            )
        service = NetworkShardedGraphittiService.open(
            args.root,
            shards=args.shards,
            config=config,
            port_base=args.port_base,
            max_inflight=args.max_inflight,
            heartbeat_interval_s=args.heartbeat_interval,
        )
        status = service.network_status()
        workers = ", ".join(
            f"shard {row['shard']}@{row['host']}:{row['port']}"
            + (f" pid {row['pid']}" if row.get("pid") else "")
            for row in status["workers"]
        )
        print(f"serving {status['shards']} shard worker process(es) over TCP: {workers}")
        if service.recovery_info is not None:
            info = service.recovery_info
            print(
                f"recovered {info['shards']}-shard instance at {args.root}: "
                f"replayed {info['replayed']} WAL record(s), "
                f"{info['torn_tails']} torn tail(s) dropped"
            )
    elif (args.shards is not None and args.shards > 1) or sharded_root:
        from repro.shard import ShardedGraphittiService

        if args.scenario:
            print(
                "note: --scenario is ignored for sharded roots (scenario instances "
                "are single-manager; sharded roots start empty)",
                file=sys.stderr,
            )
        service = ShardedGraphittiService.open(
            args.root, shards=args.shards, config=config, replicas=args.replicas
        )
        if service.recovery_info is not None:
            info = service.recovery_info
            print(
                f"recovered {info['shards']}-shard instance at {args.root}: "
                f"replayed {info['replayed']} WAL record(s), "
                f"{info['torn_tails']} torn tail(s) dropped"
            )
        else:
            print(f"opened fresh {service.shard_count}-shard instance at {args.root}")
    elif args.replicas is not None or replicated_root:
        from repro.replica import ReplicatedGraphittiService

        service = ReplicatedGraphittiService.open(
            args.root, replicas=args.replicas, config=config, manager_factory=factory
        )
        rep = service.replication_stats()
        print(
            f"opened replicated instance at {args.root}: term {rep['term']}, "
            f"primary {rep['primary']}, {len(rep['followers'])} follower(s)"
        )
    else:
        service = GraphittiService.open(args.root, config=config, manager_factory=factory)
        if service.recovery_info is not None:
            info = service.recovery_info
            print(
                f"recovered instance at {args.root}: snapshot={info['snapshot']}, "
                f"replayed {info['replayed']} WAL record(s)"
                + (", torn tail dropped" if info["torn_tail"] else "")
            )
            if args.scenario:
                print(
                    f"note: --scenario {args.scenario} ignored — the root already holds "
                    "state (scenarios only seed fresh instances)",
                    file=sys.stderr,
                )
        else:
            print(f"opened fresh instance at {args.root}")
    object_ids = seed_service_objects(service)
    summary = run_service_workload(
        service,
        object_ids,
        readers=args.readers,
        writers=args.writers,
        queries_per_reader=args.queries,
        commits_per_writer=args.commits,
    )
    # No explicit checkpoint here: close() below checkpoints once.
    print(
        f"workload: {summary['queries']} queries, {summary['commits']} commits "
        f"({summary['bulk_commits']} bulk batches), {summary['deletes']} deletes"
    )
    if summary.get("backpressure_waits"):
        print(f"backpressure: writers waited {summary['backpressure_waits']} time(s)")
    cache = summary["cache"]
    print(
        f"cache: {cache['hits']} hits / {cache['misses']} misses "
        f"(hit rate {cache['hit_rate']:.1%}), {cache['invalidations']} invalidations"
    )
    stats = service.statistics()
    print(f"annotations served: {stats['annotations']}, mutation epoch: {stats['mutation_epoch']}")
    print(f"checkpoints: {stats['service']['checkpoints']}")
    if "sharding" in stats:
        per_shard = ", ".join(
            str(row["annotations"]) for row in stats["sharding"]["per_shard"]
        )
        print(
            f"shards: {stats['sharding']['shards']} "
            f"({stats['sharding']['routing']}); annotations per shard: {per_shard}"
        )
    if "replication" in stats:
        rep = stats["replication"]
        followers = ", ".join(
            f"{row['name']}@{row['applied_seq']}" for row in rep["followers"]
        )
        print(
            f"replication: term {rep['term']}, primary {rep['primary']}, "
            f"followers [{followers}]"
        )
        reads = rep["reads"]
        print(
            f"reads served: {reads['replica']} replica, {reads['primary']} primary, "
            f"{reads['degraded']} degraded ({reads['retries']} staleness retries)"
        )
    service.close()
    if summary["errors"]:
        for error in summary["errors"]:
            print(f"workload error: {error}", file=sys.stderr)
        return 1
    return 0


def _open_service_for_root(root: str | Path, config=None, net: bool = False):
    """Open the service at *root* with the same topology detection as serve.

    A ``shards.json`` manifest (or ``shard-*`` directories) opens sharded; a
    ``replication.json`` opens replicated; otherwise a single service.  With
    ``net=True`` a sharded root is served by worker processes over TCP.
    """
    from repro.service import GraphittiService
    from repro.shard import ShardedGraphittiService, read_manifest

    root_path = Path(root)
    manifest = read_manifest(root_path) if root_path.exists() else None
    if manifest is not None or any(root_path.glob("shard-*")):
        if net:
            from repro.net import NetworkShardedGraphittiService

            return NetworkShardedGraphittiService.open(root_path, config=config)
        return ShardedGraphittiService.open(root_path, config=config)
    if net:
        raise ServiceError(f"--net requires a sharded root; {root} is not sharded")
    if (root_path / "replication.json").exists():
        from repro.replica import ReplicatedGraphittiService

        return ReplicatedGraphittiService.open(root_path, config=config)
    return GraphittiService.open(root_path, config=config)


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.obs import render_prometheus

    # Only pass net= when requested: test doubles wrap the opener with the
    # historical (root, config) signature.
    opener_kwargs = {"net": True} if getattr(args, "net", False) else {}
    service = _open_service_for_root(args.root, **opener_kwargs)
    try:
        if args.exercise:
            from repro.workloads.service_scenario import READER_QUERIES

            for _ in range(args.exercise):
                for text in READER_QUERIES:
                    service.query(text)
        snapshot = service.metrics()
        if not snapshot.get("enabled"):
            print("observability is disabled for this service", file=sys.stderr)
            return 1
        if args.format == "prometheus":
            print(render_prometheus(snapshot), end="")
        else:
            print(json.dumps(snapshot, indent=2, sort_keys=True, default=str))
    finally:
        service.close()
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    import json

    service = _open_service_for_root(args.root)
    try:
        report = service.compact()
    finally:
        service.close()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
        return 0
    shard_reports = report.get("shards", [report])
    for index, shard_report in enumerate(shard_reports):
        if shard_report is None:
            continue
        label = f"shard {index}: " if "shards" in report else ""
        before = shard_report.get("before", {}).get("annotations", {})
        after = shard_report.get("after", {}).get("annotations", {})
        wal = shard_report.get("wal", {})
        print(
            f"{label}annotations {after.get('live_slots', 0)} live / "
            f"{after.get('tombstone_slots', 0)} tombstoned; "
            f"heap {before.get('heap_dead_ints', 0)} dead ints -> "
            f"{after.get('heap_dead_ints', 0)}, "
            f"blobs {before.get('blob_dead_bytes', 0)} dead bytes -> "
            f"{after.get('blob_dead_bytes', 0)}; "
            f"wal segments sealed={wal.get('sealed_segments', 0)} "
            f"active_bytes={wal.get('active_bytes', 0)}"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import format_span

    service = _open_service_for_root(args.root)
    try:
        if not service.obs.enabled:
            print("observability is disabled for this service", file=sys.stderr)
            return 1
        if args.warm:
            try:
                service.query(args.gql)
            except GraphittiError as exc:
                print(f"query error: {exc}", file=sys.stderr)
                return 1
        # A wrapper span captures the query's whole tree without touching
        # the service internals: the query's root span parents to it via
        # the thread-local span stack.
        with service.obs.tracer.span("trace") as capture:
            try:
                result = service.query(args.gql)
            except GraphittiError as exc:
                print(f"query error: {exc}", file=sys.stderr)
                return 1
        print(f"result count: {result.count}")
        print()
        if capture.children:
            for child in capture.children:
                print(format_span(child))
        else:
            # A result-cache hit is deliberately span-free (it is the
            # latency floor the overhead gate protects).
            print("(served from the result cache — no spans recorded)")
        slow = service.slow_ops()
        if slow:
            newest = slow[-1]
            print(
                f"\nslow-op log: {len(slow)} entr{'y' if len(slow) == 1 else 'ies'} "
                f"(newest: {newest['op']} at {newest['duration_s'] * 1000:.1f} ms)"
            )
    finally:
        service.close()
    return 0


def _cmd_promote(args: argparse.Namespace) -> int:
    from repro.replica import ReplicatedGraphittiService, ReplicationConfig

    root = Path(args.root)
    manual = ReplicationConfig(auto_ship=False, auto_failover=False)
    if (root / "shards.json").exists() or any(root.glob("shard-*")):
        from repro.shard import ShardedGraphittiService

        if args.shard is None:
            print("sharded root: pass --shard to pick which shard fails over",
                  file=sys.stderr)
            return 2
        service = ShardedGraphittiService.open(root)
        try:
            shard = service.shards[args.shard]
        except IndexError:
            print(f"no shard {args.shard} (topology has {service.shard_count})",
                  file=sys.stderr)
            service.close()
            return 2
        if not hasattr(shard, "promote"):
            print(f"shard {args.shard} is not replicated; nothing to promote",
                  file=sys.stderr)
            service.close()
            return 2
        report = shard.promote(args.target)
        service.close()
    else:
        service = ReplicatedGraphittiService.recover(
            root, replication=manual, assume_primary_dead=args.assume_primary_dead
        )
        report = service.promote(args.target)
        service.close()
    print(
        f"promoted {report['primary']} (term {report['term']}, "
        f"caught up to seq {report['promoted_at_seq']}); "
        f"fenced {report['demoted']}"
    )
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    instance = load_instance(args.path)
    changes: dict = {}
    if args.title is not None:
        changes["title"] = args.title
    if args.creator is not None:
        changes["creator"] = args.creator
    if args.body is not None:
        changes["body"] = args.body
    if args.keywords is not None:
        changes["keywords"] = [part.strip() for part in args.keywords.split(",") if part.strip()]
    if args.ontology_terms is not None:
        changes["ontology_terms"] = [
            part.strip() for part in args.ontology_terms.split(",") if part.strip()
        ]
    if args.remove_referent:
        changes["remove_referents"] = list(args.remove_referent)
    if args.move_referent:
        moves = {}
        for referent_id, start, end in args.move_referent:
            moves[referent_id] = {"start": float(start), "end": float(end)}
        changes["move_referents"] = moves
    if not changes:
        print("nothing to update (pass at least one change flag)", file=sys.stderr)
        return 2
    instance.update_annotation(args.annotation_id, changes)
    save_instance(instance, args.path)
    print(f"updated {args.annotation_id} ({', '.join(sorted(changes))}) -> {args.path}")
    return 0


def _cmd_delete_object(args: argparse.Namespace) -> int:
    from repro.core.persistence import hydrate_catalogue

    instance = load_instance(args.path)
    # Snapshot loads are catalogue-only; give every metadata row its registry
    # placeholder so the delete can validate and unregister it.
    hydrate_catalogue(instance)
    cascaded = instance.delete_object(args.object_id, cascade=not args.no_cascade)
    save_instance(instance, args.path)
    print(
        f"deleted object {args.object_id} "
        f"(cascaded {len(cascaded)} annotation(s)) -> {args.path}"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    instance = load_instance(args.path)
    try:
        result = instance.query(args.gql)
    except GraphittiError as exc:
        print(f"query error: {exc}", file=sys.stderr)
        return 1
    print(f"return kind: {result.return_kind.value}")
    print(f"result count: {result.count}")
    if result.annotation_ids:
        print("annotations:", ", ".join(result.annotation_ids))
    if result.subgraphs:
        for index, subgraph in enumerate(result.subgraphs, start=1):
            print(f"  subgraph {index}: {subgraph.node_count} nodes, {subgraph.edge_count} edges")
    if result.steps:
        print("plan trace:")
        print(result.explain_steps())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import driver as analysis_driver
    from repro.analysis.report import render_human, render_json

    findings, suppressed = analysis_driver.run_lint(args.paths or None)
    if args.json:
        print(render_json(findings, suppressed))
    else:
        print(render_human(findings, suppressed))
    gating = findings if args.strict else [
        finding for finding in findings if finding.rule != "stale-pragma"
    ]
    return 1 if gating else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro", description="Graphitti command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    p_scen = sub.add_parser("scenarios", help="list built-in scenarios")
    p_scen.set_defaults(func=_cmd_scenarios)

    p_build = sub.add_parser("build", help="build a scenario and save it")
    p_build.add_argument("scenario", choices=sorted(_SCENARIOS))
    p_build.add_argument("path")
    p_build.set_defaults(func=_cmd_build)

    p_stats = sub.add_parser("stats", help="print instance statistics")
    p_stats.add_argument("path")
    p_stats.set_defaults(func=_cmd_stats)

    p_admin = sub.add_parser("admin", help="print the administrative report")
    p_admin.add_argument("path")
    p_admin.set_defaults(func=_cmd_admin)

    p_report = sub.add_parser("report", help="print a Markdown study report")
    p_report.add_argument("path")
    p_report.set_defaults(func=_cmd_report)

    p_query = sub.add_parser("query", help="run a GQL query")
    p_query.add_argument("path")
    p_query.add_argument("gql")
    p_query.set_defaults(func=_cmd_query)

    p_update = sub.add_parser(
        "update", help="update a committed annotation in place (delta index maintenance)"
    )
    p_update.add_argument("path")
    p_update.add_argument("annotation_id")
    p_update.add_argument("--title", default=None)
    p_update.add_argument("--creator", default=None)
    p_update.add_argument("--body", default=None)
    p_update.add_argument("--keywords", default=None, help="comma-separated replacement keywords")
    p_update.add_argument("--ontology-terms", default=None,
                          help="comma-separated replacement content-level ontology terms")
    p_update.add_argument("--remove-referent", action="append", default=[],
                          metavar="REFERENT_ID", help="detach a referent (repeatable)")
    p_update.add_argument("--move-referent", action="append", default=[], nargs=3,
                          metavar=("REFERENT_ID", "START", "END"),
                          help="move a 1D referent's extent in place (repeatable)")
    p_update.set_defaults(func=_cmd_update)

    p_delobj = sub.add_parser(
        "delete-object", help="retire a data object, cascading through its annotations"
    )
    p_delobj.add_argument("path")
    p_delobj.add_argument("object_id")
    p_delobj.add_argument("--no-cascade", action="store_true",
                          help="refuse instead of cascading when annotations still reference it")
    p_delobj.set_defaults(func=_cmd_delete_object)

    p_explain = sub.add_parser("explain", help="show a query plan without executing")
    p_explain.add_argument("path")
    p_explain.add_argument("gql")
    p_explain.set_defaults(func=_cmd_explain)

    p_serve = sub.add_parser(
        "serve", help="open/recover a durable served instance and drive a mixed workload"
    )
    p_serve.add_argument("root", help="directory holding snapshot.json + wal.jsonl")
    p_serve.add_argument("--shards", type=int, default=None,
                         help="serve N hash-routed shards under ROOT (scatter-gather queries). "
                              "A previously sharded root fixes N: reopening adopts its manifest "
                              "and a conflicting value is an error")
    p_serve.add_argument("--replicas", type=int, default=None,
                         help="attach N WAL-shipping read replicas (per shard when "
                              "combined with --shards); reads route to followers under "
                              "bounded staleness. A previously replicated root adopts "
                              "its manifest topology")
    p_serve.add_argument("--scenario", choices=sorted(_SCENARIOS), default=None,
                         help="seed a fresh instance from a paper scenario")
    p_serve.add_argument("--readers", type=int, default=4)
    p_serve.add_argument("--writers", type=int, default=2)
    p_serve.add_argument("--queries", type=int, default=200, help="queries per reader")
    p_serve.add_argument("--commits", type=int, default=40, help="commits per writer")
    p_serve.add_argument("--durability", choices=["always", "batch", "never"], default="always")
    p_serve.add_argument("--checkpoint-interval", type=int, default=0,
                         help="mutations between automatic checkpoints (0 = manual)")
    p_serve.add_argument("--cache-capacity", type=int, default=256)
    p_serve.add_argument("--net", action="store_true",
                         help="serve each shard from its own worker process over TCP")
    p_serve.add_argument("--port-base", type=int, default=None,
                         help="with --net: first worker port (shard i gets port-base+i); "
                              "default ephemeral")
    p_serve.add_argument("--heartbeat-interval", type=float, default=0.5,
                         help="with --net: seconds between supervisor heartbeat probes")
    p_serve.add_argument("--max-inflight", type=int, default=64,
                         help="with --net: per-shard write-window size before backpressure")
    p_serve.set_defaults(func=_cmd_serve)

    p_worker = sub.add_parser(
        "shard-worker",
        help="run one shard worker process (normally spawned by serve --net)",
    )
    p_worker.add_argument("root", help="this shard's directory (snapshot.json + wal.jsonl)")
    p_worker.add_argument("--shard-index", type=int, required=True)
    p_worker.add_argument("--host", default="127.0.0.1")
    p_worker.add_argument("--port", type=int, default=0,
                          help="listen port; 0 picks an ephemeral port (announced in net.json)")
    p_worker.add_argument("--max-inflight", type=int, default=64)
    p_worker.add_argument("--durability", choices=["always", "batch", "never"], default="always")
    p_worker.add_argument("--checkpoint-interval", type=int, default=0)
    p_worker.add_argument("--cache-capacity", type=int, default=256)
    p_worker.add_argument("--no-obs", action="store_true",
                          help="disable the worker's observability layer")
    p_worker.set_defaults(func=_cmd_shard_worker)

    p_promote = sub.add_parser(
        "promote", help="fenced failover: promote a follower of a replicated root"
    )
    p_promote.add_argument("root", help="directory holding replication.json (or shards.json)")
    p_promote.add_argument("--target", default=None,
                           help="follower directory name to promote (default: the "
                                "most-caught-up follower)")
    p_promote.add_argument("--shard", type=int, default=None,
                           help="for sharded roots: which shard's replica group fails over")
    p_promote.add_argument("--assume-primary-dead", action="store_true",
                           help="crash drill: never open the primary live, only read "
                                "its WAL as the shipping source")
    p_promote.set_defaults(func=_cmd_promote)

    p_metrics = sub.add_parser(
        "metrics", help="print the merged observability snapshot of a served root"
    )
    p_metrics.add_argument("root", help="service root (single, sharded, or replicated)")
    p_metrics.add_argument("--format", choices=["json", "prometheus"], default="json")
    p_metrics.add_argument("--net", action="store_true",
                           help="serve a sharded root via worker processes while sampling")
    p_metrics.add_argument("--exercise", type=int, default=0, metavar="N",
                           help="run the reader query mix N times first so a cold "
                                "instance has latency distributions to show")
    p_metrics.set_defaults(func=_cmd_metrics)

    p_compact = sub.add_parser(
        "compact",
        help="compact a served root's column storage and prune WAL segments",
    )
    p_compact.add_argument("root", help="service root (single, sharded, or replicated)")
    p_compact.add_argument("--json", action="store_true",
                           help="print the full before/after storage report as JSON")
    p_compact.set_defaults(func=_cmd_compact)

    p_trace = sub.add_parser(
        "trace", help="run one GQL query and pretty-print its span tree"
    )
    p_trace.add_argument("root", help="service root (single, sharded, or replicated)")
    p_trace.add_argument("gql")
    p_trace.add_argument("--warm", action="store_true",
                         help="run the query once before tracing so the traced run "
                              "shows the cached path")
    p_trace.set_defaults(func=_cmd_trace)

    p_lint = sub.add_parser(
        "lint",
        help="run the repo-specific static checkers (lock discipline, WAL "
             "lifecycle, error taxonomy)",
    )
    p_lint.add_argument("paths", nargs="*",
                        help="files/directories to lint as a self-contained "
                             "mini-tree (default: the installed repro package)")
    p_lint.add_argument("--strict", action="store_true",
                        help="fail on every finding including stale-pragma "
                             "(the CI contract); without it stale-pragma is "
                             "advisory")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the machine-readable report")
    p_lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except GraphittiError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
