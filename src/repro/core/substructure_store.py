"""Storage and indexing of annotation referents (marked substructures).

The referent store is the bridge between the annotation model and the spatial
substrate.  It keeps every :class:`~repro.core.annotation.Referent` keyed by
id, routes each referent's spatial extent to the right index (an interval
tree per coordinate domain, an R-tree per coordinate space), and answers the
overlap / containment queries the query processor issues against substructures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.annotation import Referent
from repro.core.columns import ReferentColumns
from repro.datatypes.base import DataType
from repro.errors import SpatialError
from repro.spatial.interval import Interval
from repro.spatial.interval_tree import IntervalIndexFamily
from repro.spatial.rect import Rect
from repro.spatial.rtree import RTreeFamily


@dataclass
class ExtentSummary:
    """Count and summed measure of the extents indexed in one domain/space.

    Both fields are maintained *exactly* on add and discard (so a recovered
    instance's summaries equal a pre-crash instance's).  Bounding extents are
    deliberately not kept here: the interval trees and R-trees already
    maintain tight bounds (:meth:`~repro.spatial.interval_tree.IntervalTree.span`,
    :meth:`~repro.spatial.rtree.RTree.bounds`) that shrink on removal, and
    the store reads them live via :meth:`SubstructureStore.interval_bounds` /
    :meth:`SubstructureStore.region_bounds`.
    """

    count: int = 0
    total_measure: float = 0.0

    def mean_measure(self) -> float:
        """Mean extent measure of the indexed substructures."""
        return self.total_measure / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {"count": self.count, "total_measure": self.total_measure}


class SubstructureStore:
    """Referent registry plus the interval-tree and R-tree families."""

    def __init__(self, rtree_max_entries: int = 16):
        # Referents live in slot-keyed columns: the canonical Referent object
        # per unique substructure plus packed extent columns the executor's
        # probe paths scan without materializing anything.
        self.columns = ReferentColumns()
        self._intervals = IntervalIndexFamily()
        self._rtrees = RTreeFamily(max_entries=rtree_max_entries)
        # object id -> referent ids touching that object
        self._by_object: dict[str, set[str]] = {}
        # data type -> referent ids
        self._by_type: dict[DataType, set[str]] = {}
        # coordinate domain -> summary of its indexed intervals
        self._interval_summaries: dict[str, ExtentSummary] = {}
        # coordinate space -> summary of its indexed regions
        self._region_summaries: dict[str, ExtentSummary] = {}

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, referent_id: str) -> bool:
        return referent_id in self.columns

    @property
    def interval_family(self) -> IntervalIndexFamily:
        """The interval-tree family (one tree per coordinate domain)."""
        return self._intervals

    @property
    def rtree_family(self) -> RTreeFamily:
        """The R-tree family (one tree per coordinate space)."""
        return self._rtrees

    def add(self, referent: Referent) -> str:
        """Register a referent and index its spatial extent.

        Re-adding a referent with an id already present returns the existing
        id without re-indexing (referents are shared across annotations that
        mark the same substructure, which is what makes the a-graph connect
        two annotations).
        """
        referent_id = referent.referent_id
        assert referent_id is not None
        if referent_id in self.columns:
            return referent_id
        self.columns.add(referent)
        ref = referent.ref
        self._by_object.setdefault(ref.object_id, set()).add(referent_id)
        self._by_type.setdefault(ref.data_type, set()).add(referent_id)
        if ref.interval is not None:
            domain = ref.interval.domain or ref.object_id
            indexed = Interval(ref.interval.start, ref.interval.end, domain=domain, payload=referent_id)
            self._intervals.insert(domain, indexed)
            summary = self._interval_summaries.setdefault(domain, ExtentSummary())
            summary.count += 1
            summary.total_measure += indexed.length
        elif ref.rect is not None:
            space = ref.rect.space or ref.object_id
            indexed = Rect(ref.rect.lo, ref.rect.hi, space=space, payload=referent_id)
            self._rtrees.insert(space, indexed)
            summary = self._region_summaries.setdefault(space, ExtentSummary())
            summary.count += 1
            summary.total_measure += indexed.area()
        return referent_id

    def discard(self, referent_id: str) -> bool:
        """Remove a referent and its indexed extent; returns ``True`` if present."""
        referent = self.columns.view(referent_id)
        if referent is None:
            return False
        self.columns.discard(referent_id)
        ref = referent.ref
        self._by_object.get(ref.object_id, set()).discard(referent_id)
        self._by_type.get(ref.data_type, set()).discard(referent_id)
        if ref.interval is not None:
            domain = ref.interval.domain or ref.object_id
            if domain in self._intervals:
                indexed = Interval(
                    ref.interval.start, ref.interval.end, domain=domain, payload=referent_id
                )
                self._intervals.tree(domain).remove(indexed)
            summary = self._interval_summaries.get(domain)
            if summary is not None:
                summary.count -= 1
                summary.total_measure -= ref.interval.end - ref.interval.start
                if summary.count <= 0:
                    del self._interval_summaries[domain]
        elif ref.rect is not None:
            space = ref.rect.space or ref.object_id
            if space in self._rtrees:
                indexed = Rect(ref.rect.lo, ref.rect.hi, space=space, payload=referent_id)
                self._rtrees.tree(space).remove(indexed)
            summary = self._region_summaries.get(space)
            if summary is not None:
                summary.count -= 1
                summary.total_measure -= Rect(ref.rect.lo, ref.rect.hi).area()
                if summary.count <= 0:
                    del self._region_summaries[space]
        return True

    def move(
        self,
        referent_id: str,
        start: float | None = None,
        end: float | None = None,
        lo: Iterable[float] | None = None,
        hi: Iterable[float] | None = None,
    ) -> Referent:
        """Move a referent's indexed extent in place (the delta-update path).

        The extent is removed from its interval tree / R-tree, the referent's
        :class:`~repro.datatypes.base.SubstructureRef` is rewritten with the
        new coordinates (omitted ones keep their old value), and the new
        extent is re-inserted into the *same* tree — one remove + one insert
        instead of the full referent teardown a delete+recommit pays.  The
        extent summary adjusts by the measure delta, the referent id stays
        stable (a referent shared by several annotations moves for all of
        them — the substructure itself was refined), and the domain/space is
        immutable: moving across domains is a remove+add, not a move.
        """
        referent = self.columns.view(referent_id)
        if referent is None:
            raise SpatialError(f"no referent {referent_id!r} to move")
        ref = referent.ref
        if ref.interval is not None:
            if lo is not None or hi is not None:
                raise SpatialError(f"referent {referent_id!r} is 1D; move it with start/end")
            domain = ref.interval.domain or ref.object_id
            old = Interval(ref.interval.start, ref.interval.end, domain=domain, payload=referent_id)
            # Values keep their numeric type (int stays int): the referent's
            # document rendering stringifies them, and a move must produce
            # the same text a recommit with the same numbers would.
            new_start = ref.interval.start if start is None else start
            new_end = ref.interval.end if end is None else end
            moved = Interval(new_start, new_end, domain=domain, payload=referent_id)
            self._intervals.tree(domain).remove(old)
            self._intervals.insert(domain, moved)
            ref.interval = Interval(new_start, new_end, domain=ref.interval.domain)
            if "start" in ref.descriptor:
                ref.descriptor["start"] = new_start
            if "end" in ref.descriptor:
                ref.descriptor["end"] = new_end
            summary = self._interval_summaries[domain]
            summary.total_measure += moved.length - old.length
        elif ref.rect is not None:
            if start is not None or end is not None:
                raise SpatialError(f"referent {referent_id!r} is 2D/3D; move it with lo/hi")
            space = ref.rect.space or ref.object_id
            old = Rect(ref.rect.lo, ref.rect.hi, space=space, payload=referent_id)
            new_lo = ref.rect.lo if lo is None else tuple(lo)
            new_hi = ref.rect.hi if hi is None else tuple(hi)
            moved = Rect(new_lo, new_hi, space=space, payload=referent_id)
            self._rtrees.tree(space).remove(old)
            self._rtrees.insert(space, moved)
            ref.rect = Rect(new_lo, new_hi, space=ref.rect.space)
            if "lo" in ref.descriptor:
                ref.descriptor["lo"] = list(new_lo)
            if "hi" in ref.descriptor:
                ref.descriptor["hi"] = list(new_hi)
            summary = self._region_summaries[space]
            summary.total_measure += moved.area() - old.area()
        else:
            raise SpatialError(f"referent {referent_id!r} has no spatial extent to move")
        # Re-derive the copy-on-write payload snapshot + packed extent columns
        # (the old payload dict is left intact for any in-flight frozen view).
        self.columns.refresh(self.columns.slot_of(referent_id))
        return referent

    def get(self, referent_id: str) -> Referent:
        """The referent with id *referent_id* (raises KeyError when absent)."""
        referent = self.columns.view(referent_id)
        if referent is None:
            raise KeyError(referent_id)
        return referent

    def all_referents(self) -> list[Referent]:
        """Every registered referent."""
        columns = self.columns
        return [columns.view(rid) for rid in columns.referent_ids()]

    def referents_on_object(self, object_id: str) -> list[Referent]:
        """All referents that mark substructures of *object_id*."""
        columns = self.columns
        return [columns.view(rid) for rid in sorted(self._by_object.get(object_id, set()))]

    def referents_of_type(self, data_type: DataType) -> list[Referent]:
        """All referents of a given data type."""
        columns = self.columns
        return [columns.view(rid) for rid in sorted(self._by_type.get(data_type, set()))]

    # -- spatial queries ------------------------------------------------------

    def overlapping_intervals(self, domain: str, start: float, end: float) -> list[Referent]:
        """Referents whose 1D extent overlaps ``[start, end]`` in *domain*."""
        query = Interval(start, end, domain=domain)
        hits = self._intervals.search_overlap(domain, query)
        columns = self.columns
        return [columns.view(i.payload) for i in hits if i.payload in columns]

    def overlapping_regions(self, space: str, lo: Iterable[float], hi: Iterable[float]) -> list[Referent]:
        """Referents whose 2D/3D extent overlaps the query box in *space*."""
        query = Rect(tuple(lo), tuple(hi), space=space)
        hits = self._rtrees.search_overlap(space, query)
        columns = self.columns
        return [columns.view(r.payload) for r in hits if r.payload in columns]

    def point_intervals(self, domain: str, point: float) -> list[Referent]:
        """Referents whose 1D extent contains *point*."""
        return self.overlapping_intervals(domain, point, point)

    # -- stats ----------------------------------------------------------------

    def interval_summary(self, domain: str) -> ExtentSummary | None:
        """Extent summary of *domain*'s indexed intervals (None when empty)."""
        return self._interval_summaries.get(domain)

    def region_summary(self, space: str) -> ExtentSummary | None:
        """Extent summary of *space*'s indexed regions (None when empty)."""
        return self._region_summaries.get(space)

    def interval_bounds(self, domain: str) -> tuple[float, float] | None:
        """Exact ``(lo, hi)`` bounds of *domain*'s indexed intervals."""
        if domain not in self._intervals:
            return None
        span = self._intervals.tree(domain).span()
        if span is None:
            return None
        return (span.start, span.end)

    def region_bounds(self, space: str) -> tuple[tuple[float, ...], tuple[float, ...]] | None:
        """Exact ``(lo, hi)`` corner bounds of *space*'s indexed regions."""
        if space not in self._rtrees:
            return None
        bounds = self._rtrees.tree(space).bounds()
        if bounds is None:
            return None
        return (bounds.lo, bounds.hi)

    def extent_summaries(self) -> dict[str, dict]:
        """JSON-compatible dump of every per-domain/per-space extent summary."""
        return {
            "intervals": {domain: s.to_dict() for domain, s in self._interval_summaries.items()},
            "regions": {space: s.to_dict() for space, s in self._region_summaries.items()},
        }

    def total_indexed_intervals(self) -> int:
        """Number of intervals across every interval tree."""
        return self._intervals.total_intervals()

    def total_indexed_regions(self) -> int:
        """Number of rectangles across every R-tree."""
        return self._rtrees.total_rects()

    def index_count(self) -> tuple[int, int]:
        """``(interval-tree count, R-tree count)`` — the paper's "keep the
        number of index structures small" metric."""
        return (len(self._intervals), len(self._rtrees))
