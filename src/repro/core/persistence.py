"""Whole-instance persistence for a Graphitti instance.

Snapshots the independently reconstructable state of a
:class:`~repro.core.manager.Graphitti` -- the registered ontologies, the
object-metadata relation, the annotation-content collection, and every
committed annotation's referents and a-graph links -- to a single JSON
document, and rebuilds a **query- and explore-capable** instance from it.

The reconstructed instance can be queried, explored, and administered exactly
like the original.  It cannot mark *new* annotations against the old data
objects, because the native data objects (sequence residues, image pixels,
...) are not part of the snapshot; the metadata relation records their
descriptors but not their bytes.  This mirrors how the paper's relational
store holds metadata while the raw data lives alongside it -- a reloaded
catalogue is enough to answer queries over existing annotations.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.annotation import Referent
from repro.datatypes.base import SubstructureRef
from repro.errors import GraphittiError
from repro.ontology.model import Ontology


def snapshot(manager) -> dict[str, Any]:
    """Produce a JSON-compatible snapshot of *manager*."""
    annotations_payload = []
    for annotation in manager.annotations():
        annotations_payload.append(
            {
                "annotation_id": annotation.annotation_id,
                "content_ontology_terms": list(annotation.content.ontology_terms),
                "keywords": annotation.content.keywords(),
                "referents": [
                    {
                        "referent_id": referent.referent_id,
                        "ref": referent.ref.to_dict(),
                        "ontology_terms": list(referent.ontology_terms),
                    }
                    for referent in annotation.referents
                ],
            }
        )
    return {
        "name": manager.name,
        "indexed_contents": manager.contents.indexed,
        "ontologies": [manager.ontology(name).to_dict() for name in manager.ontologies()],
        "object_metadata": manager.database.to_dict(),
        "contents": {
            doc_id: manager.contents.get(doc_id).to_dict() for doc_id in manager.contents.document_ids()
        },
        "annotations": annotations_payload,
    }


def save_instance(manager, path: str | Path) -> Path:
    """Write a Graphitti snapshot to *path* as JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(snapshot(manager), handle, indent=2)
    return target


def load_instance(path: str | Path):
    """Rebuild a query/explore-capable Graphitti instance from a snapshot."""
    source = Path(path)
    if not source.exists():
        raise GraphittiError(f"instance snapshot {source} does not exist")
    with source.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return rebuild(payload)


def rebuild(payload: dict[str, Any]):
    """Rebuild a Graphitti instance from a :func:`snapshot` payload."""
    from repro.core.manager import Graphitti
    from repro.relational.database import Database
    from repro.xmlstore.document import XmlDocument

    manager = Graphitti.__new__(Graphitti)
    manager.name = payload.get("name", "graphitti")
    # Rebuild ontologies.
    manager._ontologies = {}
    manager._ontology_ops = {}
    for ontology_payload in payload.get("ontologies", []):
        manager.register_ontology(Ontology.from_dict(ontology_payload))
    # Rebuild the metadata relation.
    manager.database = Database.from_dict(payload["object_metadata"])
    # Rebuild the content collection.
    from repro.xmlstore.collection import DocumentCollection

    manager.contents = DocumentCollection(
        f"{manager.name}-annotations", indexed=payload.get("indexed_contents", True)
    )
    for doc_id, document_payload in payload.get("contents", {}).items():
        manager.contents.add(XmlDocument.from_dict(document_payload), doc_id=doc_id)
    # Fresh substructure store, a-graph, registry placeholder, annotations.
    from repro.agraph.agraph import AGraph
    from repro.core.substructure_store import SubstructureStore
    from repro.datatypes.registry import DataTypeRegistry
    from repro.spatial.coordinate import CoordinateSystemRegistry

    manager.registry = DataTypeRegistry()
    manager.substructures = SubstructureStore()
    manager.agraph = AGraph()
    manager.coordinate_systems = CoordinateSystemRegistry()
    manager._annotations = {}
    manager._next_annotation_serial = 1
    manager.catalogue_only = True

    # Re-wire the a-graph and indexes directly from the annotation payloads.
    from repro.core.annotation import Annotation, AnnotationContent
    from repro.core.dublin_core import DublinCore
    from repro.agraph.agraph import SAME_OBJECT

    for item in payload.get("annotations", []):
        annotation_id = item["annotation_id"]
        content = AnnotationContent(
            dublin_core=DublinCore(identifier=annotation_id, subject=list(item.get("keywords", []))),
            ontology_terms=list(item.get("content_ontology_terms", [])),
        )
        annotation = Annotation(annotation_id, content)
        manager.agraph.add_content(annotation_id, keywords=tuple(content.keywords()))
        per_object: dict[str, list[str]] = {}
        for ref_payload in item["referents"]:
            ref = SubstructureRef.from_dict(ref_payload["ref"])
            referent = Referent(
                ref=ref,
                ontology_terms=list(ref_payload.get("ontology_terms", [])),
                referent_id=ref_payload["referent_id"],
            )
            annotation._referents.append(referent)  # noqa: SLF001 - rebuild path
            referent_id = manager.substructures.add(referent)
            manager.agraph.add_referent(referent_id, object=ref.object_id, data_type=ref.data_type.value)
            manager.agraph.link_annotation(annotation_id, referent_id)
            for term in referent.ontology_terms:
                manager.agraph.add_ontology_node(term)
                manager.agraph.link_ontology(referent_id, term)
            for other_id in per_object.get(ref.object_id, []):
                manager.agraph.link_referents(referent_id, other_id, label=SAME_OBJECT)
            per_object.setdefault(ref.object_id, []).append(referent_id)
        for term in content.ontology_terms:
            manager.agraph.add_ontology_node(term)
            manager.agraph.link_ontology(annotation_id, term)
        manager._annotations[annotation_id] = annotation
    return manager
