"""Whole-instance persistence for a Graphitti instance.

Snapshots the independently reconstructable state of a
:class:`~repro.core.manager.Graphitti` -- the registered ontologies, the
object-metadata relation, the annotation-content collection, and every
committed annotation's referents and a-graph links -- to a single JSON
document, and rebuilds a **query- and explore-capable** instance from it.

The reconstructed instance can be queried, explored, and administered exactly
like the original.  It cannot mark *new* annotations against the old data
objects, because the native data objects (sequence residues, image pixels,
...) are not part of the snapshot; the metadata relation records their
descriptors but not their bytes.  This mirrors how the paper's relational
store holds metadata while the raw data lives alongside it -- a reloaded
catalogue is enough to answer queries over existing annotations.

The module also exposes the **record codec** the serving layer's write-ahead
log shares with the snapshot format: :func:`encode_annotation` /
:func:`decode_annotation` round-trip one annotation (including its full
Dublin Core metadata, body and user tags), :func:`wire_annotation` applies a
decoded annotation to an instance exactly like a live commit would, and
:func:`encode_register` / :func:`apply_register_record` do the same for data
object registrations (as catalogue entries).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.annotation import Annotation, AnnotationContent, Referent
from repro.core.dublin_core import DublinCore
from repro.datatypes.base import DataObject, DataType, SubstructureRef
from repro.errors import GraphittiError
from repro.ontology.model import Ontology


# -- annotation record codec ---------------------------------------------------


def encode_referent(referent: Referent) -> dict[str, Any]:
    """Encode one referent as a JSON-compatible record (shared by the
    annotation codec and the update-changes codec)."""
    return {
        "referent_id": referent.referent_id,
        "ref": referent.ref.to_dict(),
        "ontology_terms": list(referent.ontology_terms),
    }


def decode_referent(payload: dict[str, Any]) -> Referent:
    """Rebuild a :class:`Referent` from :func:`encode_referent` output."""
    return Referent(
        ref=SubstructureRef.from_dict(payload["ref"]),
        ontology_terms=list(payload.get("ontology_terms", [])),
        referent_id=payload.get("referent_id"),
    )


def encode_update_changes(changes: dict[str, Any]) -> dict[str, Any]:
    """Encode an ``update_annotation`` changes dict as a JSON-compatible record.

    Only ``add_referents`` needs translation (live :class:`Referent` objects
    become their codec dicts; dicts pass through unchanged); every other key
    is already JSON-shaped.  The WAL logs exactly this form, and
    :meth:`Graphitti.update_annotation` accepts it directly, so live apply
    and recovery replay run the same code path.
    """
    encoded = dict(changes)
    if "add_referents" in encoded:
        encoded["add_referents"] = [
            encode_referent(item) if isinstance(item, Referent) else dict(item)
            for item in encoded["add_referents"]
        ]
    if "remove_referents" in encoded:
        encoded["remove_referents"] = list(encoded["remove_referents"])
    if "move_referents" in encoded:
        encoded["move_referents"] = {
            referent_id: dict(extent)
            for referent_id, extent in encoded["move_referents"].items()
        }
    return encoded


def encode_annotation(annotation: Annotation) -> dict[str, Any]:
    """Encode one annotation as a JSON-compatible record.

    Carries the *complete* content — Dublin Core metadata, free-text body,
    user tags and ontology pointers — so a decoded annotation is
    indistinguishable from the committed original (``keywords`` is kept as a
    derived field for readers of older snapshots).
    """
    content = annotation.content
    return {
        "annotation_id": annotation.annotation_id,
        "dublin_core": content.dublin_core.to_dict(),
        "body": content.body,
        "user_tags": dict(content.user_tags),
        "content_ontology_terms": list(content.ontology_terms),
        "keywords": content.keywords(),
        "referents": [encode_referent(referent) for referent in annotation.referents],
    }


def decode_annotation(payload: dict[str, Any]) -> Annotation:
    """Rebuild an :class:`Annotation` from :func:`encode_annotation` output.

    Tolerates records written before the full-content codec (no
    ``dublin_core`` key): those fall back to the legacy keywords-only
    reconstruction.
    """
    annotation_id = payload["annotation_id"]
    if "dublin_core" in payload:
        dublin_core = DublinCore.from_dict(payload["dublin_core"])
        if not dublin_core.identifier:
            dublin_core.identifier = annotation_id
    else:
        dublin_core = DublinCore(identifier=annotation_id, subject=list(payload.get("keywords", [])))
    content = AnnotationContent(
        dublin_core=dublin_core,
        body=payload.get("body", ""),
        ontology_terms=list(payload.get("content_ontology_terms", [])),
        user_tags=dict(payload.get("user_tags", {})),
    )
    annotation = Annotation(annotation_id, content)
    for ref_payload in payload.get("referents", []):
        annotation._referents.append(decode_referent(ref_payload))  # noqa: SLF001 - codec rebuild path
    return annotation


def wire_annotation(manager, annotation: Annotation, add_content_document: bool = False) -> None:
    """Wire a decoded annotation into *manager*'s substrates.

    Performs the same a-graph / substructure wiring as a live
    :meth:`~repro.core.manager.Graphitti.commit` but skips registry
    validation, so it works on catalogue-only instances whose native data
    objects were not reconstructed.  With ``add_content_document=True`` the
    content document is regenerated and stored too (the WAL replay path; the
    snapshot path loads documents from the snapshot's own collection dump).
    """
    from repro.agraph.agraph import SAME_OBJECT

    annotation_id = annotation.annotation_id
    if add_content_document and annotation_id not in manager.contents:
        manager.contents.add(annotation.to_document(), doc_id=annotation_id)
    manager.agraph.add_content(
        annotation_id,
        title=annotation.content.dublin_core.title,
        keywords=tuple(annotation.content.keywords()),
    )
    per_object: dict[str, list[str]] = {}
    for referent in annotation.referents:
        referent_id = manager.substructures.add(referent)
        manager.agraph.add_referent(
            referent_id,
            object=referent.ref.object_id,
            data_type=referent.ref.data_type.value,
        )
        manager.agraph.link_annotation(annotation_id, referent_id)
        for term in referent.ontology_terms:
            manager.agraph.add_ontology_node(term)
            manager.agraph.link_ontology(referent_id, term)
        for other_id in per_object.get(referent.ref.object_id, []):
            manager.agraph.link_referents(referent_id, other_id, label=SAME_OBJECT)
        per_object.setdefault(referent.ref.object_id, []).append(referent_id)
    for term in annotation.content.ontology_terms:
        manager.agraph.add_ontology_node(term)
        manager.agraph.link_ontology(annotation_id, term)
    # Same bookkeeping as a live commit: the columnar store, the statistics
    # catalogue and the id interner are rebuilt record by record during
    # snapshot load and WAL replay, so the recovered instance matches the
    # pre-crash state.
    slot = manager.idspace.intern(annotation_id)
    manager.columns.store(slot, annotation, manager.substructures.columns)
    manager._annotation_order[annotation_id] = None  # noqa: SLF001 - rebuild path
    manager._cache_row(annotation_id, annotation)  # noqa: SLF001 - rebuild path
    manager.stats_catalogue.on_commit(annotation)
    manager._bump_epoch()  # noqa: SLF001 - rebuild path


# -- data-object (catalogue) record codec --------------------------------------


class CatalogueObject(DataObject):
    """A placeholder for a data object whose native payload is unavailable.

    Recovery registers one per logged ``register`` record so the rebuilt
    instance has the same registry counts, passes commit validation and runs
    integrity checks cleanly.  It cannot be marked (no native substructures),
    matching the catalogue-only contract of :func:`rebuild`.
    """

    def __init__(
        self,
        object_id: str,
        data_type: DataType,
        domain: str | None = None,
        description: str = "",
        metadata: dict[str, Any] | None = None,
    ):
        super().__init__(object_id, metadata)
        self.data_type = data_type
        self._domain = domain
        self._description = description or f"{data_type.value} {object_id} (catalogue entry)"

    @property
    def coordinate_domain(self) -> str | None:
        return self._domain

    def describe(self) -> str:
        return self._description


def encode_register(obj: DataObject, metadata: dict[str, Any]) -> dict[str, Any]:
    """Encode a data-object registration as a catalogue record.

    *metadata* is the combined metadata row the manager stores (the object's
    own metadata plus the register-call keywords).  Raw bytes are not logged
    -- the WAL, like the snapshot, persists the catalogue, not native data.
    """
    return {
        "object_id": obj.object_id,
        "data_type": obj.data_type.value,
        "domain": obj.coordinate_domain,
        "description": obj.describe(),
        "metadata": dict(metadata),
    }


def apply_register_record(manager, payload: dict[str, Any]) -> None:
    """Replay a :func:`encode_register` record onto *manager*.

    Registers a :class:`CatalogueObject` and inserts the metadata row, so the
    recovered instance's registry and relational store match the original's
    counts.  Records for objects already present (e.g. replayed over a
    snapshot that carried the metadata row) only fill the registry gap.
    """
    object_id = payload["object_id"]
    if object_id not in manager.registry:
        manager.registry.register(
            CatalogueObject(
                object_id,
                DataType(payload["data_type"]),
                domain=payload.get("domain"),
                description=payload.get("description", ""),
                metadata=payload.get("metadata"),
            )
        )
    table = manager.database.table(manager._OBJECT_TABLE)  # noqa: SLF001 - replay path
    if table.get(object_id) is None:
        table.insert(
            {
                "object_id": object_id,
                "data_type": payload["data_type"],
                "domain": payload.get("domain"),
                "description": payload.get("description"),
                "metadata": payload.get("metadata", {}),
                "raw": None,
            }
        )
    manager._bump_epoch()  # noqa: SLF001 - replay path


def hydrate_catalogue(manager) -> int:
    """Register a :class:`CatalogueObject` for every metadata row missing from
    the registry.  Returns how many placeholders were created.

    The serving layer's recovery path calls this after a snapshot rebuild so
    registry-based statistics and commit validation match the pre-crash
    instance even though native data objects are gone.
    """
    created = 0
    table = manager.database.table(manager._OBJECT_TABLE)  # noqa: SLF001 - recovery path
    for row in table:
        if row["object_id"] in manager.registry:
            continue
        manager.registry.register(
            CatalogueObject(
                row["object_id"],
                DataType(row["data_type"]),
                domain=row.get("domain"),
                description=row.get("description") or "",
                metadata=row.get("metadata"),
            )
        )
        created += 1
    return created


# -- whole-instance snapshot ---------------------------------------------------


def snapshot(manager) -> dict[str, Any]:
    """Produce a JSON-compatible snapshot of *manager*."""
    manager.contents.flush_index()
    return {
        "name": manager.name,
        "id_namespace": manager.id_namespace,
        "indexed_contents": manager.contents.indexed,
        "ontologies": [manager.ontology(name).to_dict() for name in manager.ontologies()],
        "object_metadata": manager.database.to_dict(),
        "contents": {
            # document_dict regenerates lazy/stale bodies without retaining
            # the trees, so snapshotting never pins the XML object graph.
            doc_id: manager.contents.document_dict(doc_id)
            for doc_id in manager.contents.document_ids()
        },
        "annotations": [encode_annotation(annotation) for annotation in manager.annotations()],
    }


def save_instance(manager, path: str | Path) -> Path:
    """Write a Graphitti snapshot to *path* as JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(snapshot(manager), handle, indent=2)
    return target


def load_instance(path: str | Path):
    """Rebuild a query/explore-capable Graphitti instance from a snapshot."""
    source = Path(path)
    if not source.exists():
        raise GraphittiError(f"instance snapshot {source} does not exist")
    with source.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return rebuild(payload)


def _dict_searchable_text(document_payload: dict[str, Any]) -> str:
    """The exact searchable text of a document *payload*.

    Byte-identical to ``DocumentCollection._searchable_text`` applied to
    ``XmlDocument.from_dict(payload)`` — depth-first truthy text nodes joined
    with spaces, then every attribute value in document order — but computed
    from the raw dicts, so lazy recovery can index a document without ever
    building its element tree.
    """
    texts: list[str] = []
    attributes: list[str] = []

    def walk(node: dict[str, Any]) -> None:
        text = node.get("text")
        if text:
            texts.append(text)
        attributes.extend(node.get("attributes", {}).values())
        for child in node.get("children", ()):
            walk(child)

    walk(document_payload["root"])
    return " ".join([" ".join(texts)] + attributes)


def rebuild(payload: dict[str, Any], eager_documents: bool = False):
    """Rebuild a Graphitti instance from a :func:`snapshot` payload.

    By default annotation content documents are registered **lazily**: the
    inverted index is fed from text extracted straight off the snapshot dicts
    and the XML trees regenerate from the columnar store only if something
    actually reads them, so cold recovery neither builds nor retains the
    document object graph.  ``eager_documents=True`` restores the old
    materialize-everything behavior (the benchmarks use it as the
    object-graph baseline).
    """
    from repro.core.columns import AnnotationColumns
    from repro.core.manager import Graphitti
    from repro.relational.database import Database
    from repro.xmlstore.document import XmlDocument

    manager = Graphitti.__new__(Graphitti)
    manager.name = payload.get("name", "graphitti")
    manager.id_namespace = payload.get("id_namespace")
    manager.mutation_epoch = 0
    manager.stats_providers = []
    # Rebuild ontologies.
    manager._ontologies = {}
    manager._ontology_ops = {}
    for ontology_payload in payload.get("ontologies", []):
        manager.register_ontology(Ontology.from_dict(ontology_payload))
    # Rebuild the metadata relation.
    manager.database = Database.from_dict(payload["object_metadata"])
    # Fresh substructure store, columns, a-graph, registry, annotations.
    from collections import OrderedDict

    from repro.agraph.agraph import AGraph
    from repro.core.substructure_store import SubstructureStore
    from repro.datatypes.registry import DataTypeRegistry
    from repro.spatial.coordinate import CoordinateSystemRegistry

    from repro.query.idspace import AnnotationIdSpace
    from repro.query.stats import StatisticsCatalogue

    manager.registry = DataTypeRegistry()
    manager.substructures = SubstructureStore()
    manager.agraph = AGraph()
    manager.coordinate_systems = CoordinateSystemRegistry()
    manager.columns = AnnotationColumns(pool=manager.substructures.columns.pool)
    manager._annotation_order = {}
    manager._row_cache = OrderedDict()
    manager._next_annotation_serial = 1
    manager.catalogue_only = True
    manager.idspace = AnnotationIdSpace()
    manager.stats_catalogue = StatisticsCatalogue()

    # Rebuild the content collection.  Annotation documents (everything the
    # annotation payloads cover) regenerate from the columnar store on
    # demand; anything else in the dump is materialized eagerly.
    from repro.xmlstore.collection import DocumentCollection

    manager.contents = DocumentCollection(
        f"{manager.name}-annotations", indexed=payload.get("indexed_contents", True)
    )
    annotation_doc_ids = {item["annotation_id"] for item in payload.get("annotations", [])}
    for doc_id, document_payload in payload.get("contents", {}).items():
        if eager_documents or doc_id not in annotation_doc_ids:
            manager.contents.add(XmlDocument.from_dict(document_payload), doc_id=doc_id)
        else:
            manager.contents.add_lazy(
                doc_id,
                _dict_searchable_text(document_payload),
                manager._document_regenerator(doc_id),
            )

    # Re-wire the a-graph and indexes directly from the annotation payloads
    # (content documents were registered above from the snapshot's own dump).
    for item in payload.get("annotations", []):
        wire_annotation(manager, decode_annotation(item), add_content_document=False)
    return manager


# -- copy-on-write checkpoint support ------------------------------------------


class FrozenManager:
    """Point-in-time image of a manager for a background checkpoint.

    Captured under the service write lock by :func:`freeze_manager` in
    O(slots) pointer/array copies; :func:`snapshot_from_frozen` then builds
    the full snapshot payload off-lock while writers keep mutating the live
    store (whose heaps are append-only and whose copy-on-write payload dicts
    are replaced, never mutated — see :mod:`repro.core.columns`).
    """

    __slots__ = (
        "name", "id_namespace", "indexed_contents", "ontologies",
        "object_metadata", "order", "slots", "acols", "rcols", "extra_documents",
    )

    def __init__(self, name, id_namespace, indexed_contents, ontologies,
                 object_metadata, order, slots, acols, rcols, extra_documents):
        self.name = name
        self.id_namespace = id_namespace
        self.indexed_contents = indexed_contents
        self.ontologies = ontologies
        self.object_metadata = object_metadata
        self.order = order
        self.slots = slots
        self.acols = acols
        self.rcols = rcols
        self.extra_documents = extra_documents


def freeze_manager(manager) -> FrozenManager:
    """Freeze *manager*'s snapshot-relevant state (call under the write lock).

    Annotation state freezes via the columns' copy-on-write views; ontologies
    and the metadata relation (both small next to the annotation store) are
    dumped inline.  Documents not backed by an annotation row — there are
    normally none — are captured eagerly so the frozen image is complete.
    """
    manager.contents.flush_index()
    order = list(manager._annotation_order)  # noqa: SLF001 - freeze path
    slots = [manager.idspace.slot(annotation_id) for annotation_id in order]
    known = manager._annotation_order  # noqa: SLF001 - freeze path
    extra_documents = {
        doc_id: manager.contents.document_dict(doc_id)
        for doc_id in manager.contents.document_ids()
        if doc_id not in known
    }
    return FrozenManager(
        name=manager.name,
        id_namespace=manager.id_namespace,
        indexed_contents=manager.contents.indexed,
        ontologies=[manager.ontology(name).to_dict() for name in manager.ontologies()],
        object_metadata=manager.database.to_dict(),
        order=order,
        slots=slots,
        acols=manager.columns.freeze(),
        rcols=manager.substructures.columns.freeze(),
        extra_documents=extra_documents,
    )


def materialize_frozen_annotation(annotation_id: str, slot: int, acols, rcols) -> Annotation:
    """Build an :class:`Annotation` from frozen column views (off-lock)."""
    from repro.core.columns import decode_content

    content = decode_content(acols.blob(slot), acols.content_terms(slot))
    annotation = Annotation(annotation_id, content)
    for rslot, terms in acols.referent_entries(slot):
        payload = rcols.payload[rslot]
        if payload is None:  # pragma: no cover - frozen views are consistent
            continue
        annotation._referents.append(  # noqa: SLF001 - codec rebuild path
            Referent(
                ref=SubstructureRef.from_dict(payload),
                ontology_terms=terms,
                referent_id=rcols.id_at[rslot],
            )
        )
    return annotation


def snapshot_from_frozen(frozen: FrozenManager) -> dict[str, Any]:
    """Produce a :func:`snapshot`-identical payload from a frozen image.

    Runs on the background checkpoint thread: materializes each frozen row
    once to render both its codec record and its content document, touching
    no live manager state.  Every few hundred rows the loop naps for a
    moment — on a single-core host the scheduler otherwise lets this
    CPU-bound loop keep the core for a full timeslice after a committer's
    fsync completes, which shows up as multi-millisecond commit p99 even
    though no lock is shared.
    """
    import time as _time

    contents: dict[str, Any] = dict(frozen.extra_documents)
    annotations: list[dict[str, Any]] = []
    acols, rcols = frozen.acols, frozen.rcols
    for index, (annotation_id, slot) in enumerate(zip(frozen.order, frozen.slots)):
        if index and index % 256 == 0:
            _time.sleep(0.0005)
        annotation = materialize_frozen_annotation(annotation_id, slot, acols, rcols)
        annotations.append(encode_annotation(annotation))
        contents[annotation_id] = annotation.to_document().to_dict()
    return {
        "name": frozen.name,
        "id_namespace": frozen.id_namespace,
        "indexed_contents": frozen.indexed_contents,
        "ontologies": frozen.ontologies,
        "object_metadata": frozen.object_metadata,
        "contents": contents,
        "annotations": annotations,
    }
