"""The annotation model: content, referents, and the linker object.

"We consider an annotation as a linker object that connects the annotation
content (i.e., the comment itself) to one or more annotation referents (i.e.,
the object fragments that are marked for annotation)."

* :class:`AnnotationContent` wraps the XML comment document plus its Dublin
  Core metadata and any ontology references the *content* itself points at.
* :class:`Referent` wraps one marked substructure
  (:class:`~repro.datatypes.base.SubstructureRef`) plus the ontology terms
  that referent points at.
* :class:`Annotation` is the linker object: a content id, its referents, and
  helpers to render the whole thing as one XML document (for commit to the
  annotation store and for the "view it as an XML-structured object" step in
  the paper's annotation tab).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.dublin_core import DublinCore
from repro.datatypes.base import SubstructureRef
from repro.errors import AnnotationError
from repro.xmlstore.document import XmlDocument, XmlElement


@dataclass
class Referent:
    """One annotation referent: a marked substructure + ontology pointers."""

    ref: SubstructureRef
    ontology_terms: list[str] = field(default_factory=list)
    referent_id: str | None = None

    def __post_init__(self) -> None:
        if self.referent_id is None:
            self.referent_id = self.ref.key()

    def point_to(self, term_id: str) -> None:
        """Make this referent point at an ontology term."""
        if term_id not in self.ontology_terms:
            self.ontology_terms.append(term_id)

    def to_element(self) -> XmlElement:
        """Render the referent as a ``referent`` XML element."""
        element = XmlElement(
            "referent",
            attributes={
                "id": self.referent_id or "",
                "object": self.ref.object_id,
                "type": self.ref.data_type.value,
            },
        )
        if self.ref.label:
            element.set("label", self.ref.label)
        if self.ref.interval is not None:
            element.add(
                "interval",
                start=str(self.ref.interval.start),
                end=str(self.ref.interval.end),
                domain=str(self.ref.interval.domain or ""),
            )
        if self.ref.rect is not None:
            element.add(
                "region",
                lo=",".join(str(value) for value in self.ref.rect.lo),
                hi=",".join(str(value) for value in self.ref.rect.hi),
                space=str(self.ref.rect.space or ""),
            )
        for key, value in sorted(self.ref.descriptor.items()):
            if key in ("residues", "block", "leaves", "nodes", "edges", "row_keys"):
                element.add("descriptor", text=str(value), key=key)
        for term in self.ontology_terms:
            element.add("ontology-ref", term=term)
        return element


@dataclass
class AnnotationContent:
    """The annotation content: metadata, free-text body, ontology pointers."""

    dublin_core: DublinCore
    body: str = ""
    ontology_terms: list[str] = field(default_factory=list)
    user_tags: dict[str, str] = field(default_factory=dict)

    def add_keyword(self, keyword: str) -> None:
        """Add a Dublin Core subject keyword."""
        if keyword not in self.dublin_core.subject:
            self.dublin_core.subject.append(keyword)

    def point_to(self, term_id: str) -> None:
        """Make the content itself point at an ontology term."""
        if term_id not in self.ontology_terms:
            self.ontology_terms.append(term_id)

    def keywords(self) -> list[str]:
        """Subject keywords from the Dublin Core metadata."""
        return self.dublin_core.keywords()

    def text(self) -> str:
        """All searchable text of the content (body + keywords + description)."""
        parts = [self.body, self.dublin_core.description, self.dublin_core.title]
        parts.extend(self.dublin_core.subject)
        parts.extend(self.user_tags.values())
        return " ".join(part for part in parts if part)


class Annotation:
    """The linker object connecting one content to one or more referents."""

    def __init__(self, annotation_id: str, content: AnnotationContent):
        if not annotation_id:
            raise AnnotationError("annotation id must be non-empty")
        self.annotation_id = annotation_id
        self.content = content
        self._referents: list[Referent] = []

    @property
    def referents(self) -> tuple[Referent, ...]:
        """The annotation's referents, in attach order."""
        return tuple(self._referents)

    @property
    def referent_count(self) -> int:
        """Number of referents."""
        return len(self._referents)

    def add_referent(self, ref: SubstructureRef, ontology_terms: Iterable[str] = ()) -> Referent:
        """Attach a marked substructure as a referent (the drag-to-commit step)."""
        referent = Referent(ref=ref, ontology_terms=list(ontology_terms))
        self._referents.append(referent)
        return referent

    def referent_ids(self) -> list[str]:
        """Stable ids of every referent."""
        return [referent.referent_id for referent in self._referents if referent.referent_id]

    def ontology_terms(self) -> set[str]:
        """Every ontology term pointed at by the content or any referent."""
        terms = set(self.content.ontology_terms)
        for referent in self._referents:
            terms.update(referent.ontology_terms)
        return terms

    def object_ids(self) -> set[str]:
        """Ids of every data object this annotation touches."""
        return {referent.ref.object_id for referent in self._referents}

    def to_document(self) -> XmlDocument:
        """Render the whole annotation as one XML document.

        This is the "view it as an XML-structured object (and edit it if
        needed) before it is committed" step of the paper's annotation tab.
        """
        root = XmlElement("annotation", attributes={"id": self.annotation_id})
        metadata = root.add("metadata")
        for element in self.content.dublin_core.to_elements():
            metadata.append(element)
        if self.content.body:
            root.add("body", text=self.content.body)
        if self.content.user_tags:
            tags = root.add("tags")
            for key, value in self.content.user_tags.items():
                tags.add(key, text=value)
        for term in self.content.ontology_terms:
            root.add("ontology-ref", term=term)
        referents = root.add("referents")
        for referent in self._referents:
            referents.append(referent.to_element())
        return XmlDocument(root, doc_id=self.annotation_id)

    def to_xml(self) -> str:
        """Serialize the annotation to XML text."""
        from repro.xmlstore.parser import serialize_xml

        return serialize_xml(self.to_document())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Annotation {self.annotation_id} referents={self.referent_count}>"
