"""The Graphitti manager facade.

:class:`Graphitti` is the single object a user interacts with.  It owns every
substrate and wires them together on commit:

* the :class:`~repro.datatypes.registry.DataTypeRegistry` of annotable objects,
* the embedded relational :class:`~repro.relational.database.Database` holding
  per-type metadata and raw data,
* the :class:`~repro.xmlstore.collection.DocumentCollection` of annotation
  contents,
* the :class:`~repro.core.substructure_store.SubstructureStore` (interval
  trees + R-trees) indexing referents,
* the ontologies and their :class:`~repro.ontology.operations.OntologyOperations`,
* the :class:`~repro.agraph.agraph.AGraph` join index.

It exposes the paper's three workflows: **annotate** (``new_annotation`` +
``commit``), **query** (keyword / ontology / spatial / path search), and
**explore** (related annotations, correlated data).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Iterable

from repro.agraph.agraph import AGraph
from repro.analysis.annotations import requires_write_lock
from repro.agraph.connection import ConnectionSubgraph
from repro.core.annotation import Annotation, Referent
from repro.core.builder import AnnotationBuilder
from repro.core.columns import AnnotationColumns
from repro.core.dublin_core import DublinCore
from repro.core.annotation import AnnotationContent
from repro.core.substructure_store import SubstructureStore
from repro.datatypes.base import DataObject, DataType
from repro.datatypes.registry import DataTypeRegistry
from repro.errors import AnnotationError, GraphittiError, UnknownObjectError
from repro.ontology.model import Ontology
from repro.ontology.operations import OntologyOperations
from repro.query.idspace import AnnotationIdSpace
from repro.query.stats import StatisticsCatalogue
from repro.relational.database import Database
from repro.relational.schema import Column, ColumnType, TableSchema
from repro.spatial.coordinate import CoordinateSystemRegistry
from repro.xmlstore.collection import DocumentCollection


def _element_text_parts(element) -> list[str]:
    """Every searchable text part of an XML element subtree.

    Mirrors ``DocumentCollection._searchable_text``'s extraction rules (text
    nodes plus attribute values) for one element, so the update path can
    account a removed/added referent's exact index contribution.
    """
    parts: list[str] = []
    for node in element.iter():
        if node.text:
            parts.append(node.text)
        parts.extend(node.attributes.values())
    return parts


def _rect_text_parts(rect) -> tuple[str, str]:
    """The rendered ``lo``/``hi`` attribute strings of a region element."""
    return (
        ",".join(str(value) for value in rect.lo),
        ",".join(str(value) for value in rect.hi),
    )


def _extent_text_parts(ref) -> list[str]:
    """The rendered coordinate strings of a spatial extent (its document
    text contribution that changes under a move)."""
    if ref.interval is not None:
        return [str(ref.interval.start), str(ref.interval.end)]
    if ref.rect is not None:
        return list(_rect_text_parts(ref.rect))
    return []


class Graphitti:
    """The annotation management system facade.

    Parameters
    ----------
    name:
        Instance name (used to name the relational database and collection).
    indexed_contents:
        Whether the annotation-content collection maintains a keyword index
        (default True; set False to benchmark the index-free path).
    id_namespace:
        Optional namespace woven into generated annotation ids
        (``anno-<namespace>-000001``).  The sharded serving layer sets one
        per shard so every generated id *encodes the shard that owns it* and
        point lookups route without a scatter.
    """

    #: Metadata table schema shared by every registered data object.
    _OBJECT_TABLE = "data_objects"

    def __init__(
        self,
        name: str = "graphitti",
        indexed_contents: bool = True,
        id_namespace: str | None = None,
    ):
        self.name = name
        self.id_namespace = id_namespace
        self.registry = DataTypeRegistry()
        self.database = Database(name)
        self.contents = DocumentCollection(f"{name}-annotations", indexed=indexed_contents)
        self.substructures = SubstructureStore()
        self.agraph = AGraph()
        self.coordinate_systems = CoordinateSystemRegistry()
        self._ontologies: dict[str, Ontology] = {}
        self._ontology_ops: dict[str, OntologyOperations] = {}
        #: Committed annotations live in columnar storage (see
        #: :mod:`repro.core.columns`) keyed by the dense id-space slots.
        #: Commit order and membership come from `_annotation_order`; a small
        #: LRU of materialized row views serves repeated point reads (commit
        #: seeds it with the committed object itself).
        self.columns = AnnotationColumns(pool=self.substructures.columns.pool)
        self._annotation_order: dict[str, None] = {}
        self._row_cache: OrderedDict[str, Annotation] = OrderedDict()
        self._next_annotation_serial = 1
        #: True for instances rebuilt from a snapshot (data objects not
        #: reconstructed; see :mod:`repro.core.persistence`).
        self.catalogue_only = False
        #: Monotonic counter bumped by every mutation (register / commit /
        #: delete).  The serving layer's query-result cache tags entries with
        #: the epoch they were computed at and treats any entry from an older
        #: epoch as invalid, which makes cache invalidation a single compare.
        self.mutation_epoch = 0
        #: Extra statistics sources merged into :meth:`statistics` (the
        #: serving layer registers its cache/WAL counters here).
        self.stats_providers: list[Callable[[], dict[str, Any]]] = []
        #: Dense annotation-id interner backing the executor's bitset
        #: candidate sets (see :mod:`repro.query.idspace`).
        self.idspace = AnnotationIdSpace()
        #: Live statistics catalogue feeding the cost-based planner; updated
        #: on every commit/delete and rebuilt by snapshot load / WAL replay.
        self.stats_catalogue = StatisticsCatalogue()
        self._init_metadata_table()

    def _bump_epoch(self) -> int:
        """Advance the mutation epoch (called after every state mutation)."""
        self.mutation_epoch += 1
        return self.mutation_epoch

    def _init_metadata_table(self) -> None:
        schema = TableSchema(
            name=self._OBJECT_TABLE,
            columns=[
                Column("object_id", ColumnType.TEXT, nullable=False),
                Column("data_type", ColumnType.TEXT, nullable=False),
                Column("domain", ColumnType.TEXT),
                Column("description", ColumnType.TEXT),
                Column("metadata", ColumnType.JSON),
                Column("raw", ColumnType.BLOB),
            ],
            primary_key="object_id",
        )
        table = self.database.create_table(schema)
        table.create_index("data_type")

    # -- ontology management --------------------------------------------------

    @requires_write_lock
    def register_ontology(self, ontology: Ontology, cache: bool = True) -> OntologyOperations:
        """Register an ontology and return its operation interface."""
        if ontology.name in self._ontologies:
            raise GraphittiError(f"ontology {ontology.name!r} already registered")
        self._ontologies[ontology.name] = ontology
        ops = OntologyOperations(ontology, cache=cache)
        self._ontology_ops[ontology.name] = ops
        self._bump_epoch()
        return ops

    def ontology(self, name: str) -> Ontology:
        """The registered ontology named *name*."""
        try:
            return self._ontologies[name]
        except KeyError:
            raise GraphittiError(f"no ontology named {name!r}") from None

    def ontology_ops(self, name: str) -> OntologyOperations:
        """The :class:`OntologyOperations` for ontology *name*."""
        try:
            return self._ontology_ops[name]
        except KeyError:
            raise GraphittiError(f"no ontology named {name!r}") from None

    def ontologies(self) -> list[str]:
        """Names of every registered ontology."""
        return list(self._ontologies)

    def resolve_ontology_term(self, text: str) -> str:
        """Resolve a term id or name against every registered ontology.

        Returns the term id unchanged when it already exists; otherwise the
        first matching ontology term id.  Raises when nothing matches and the
        text is not already a bare id (so unknown raw ids pass through, which
        lets callers reference terms before loading an ontology in tests).
        """
        for ontology in self._ontologies.values():
            if text in ontology:
                return text
            matches = ontology.find_by_name(text)
            if matches:
                return matches[0].term_id
        # Not found by name anywhere; treat as an opaque id.
        return text

    # -- data object registration ---------------------------------------------

    @requires_write_lock
    def register(self, obj: DataObject, raw: bytes | None = None, **metadata: Any) -> DataObject:
        """Register an annotable data object and record its metadata row."""
        self.registry.register(obj)
        combined = dict(obj.metadata)
        combined.update(metadata)
        self.database.table(self._OBJECT_TABLE).insert(
            {
                "object_id": obj.object_id,
                "data_type": obj.data_type.value,
                "domain": obj.coordinate_domain,
                "description": obj.describe(),
                "metadata": combined,
                "raw": raw,
            }
        )
        self._register_coordinate_system(obj)
        self._bump_epoch()
        return obj

    def _register_coordinate_system(self, obj: DataObject) -> None:
        from repro.datatypes.image import Image
        from repro.datatypes.sequence import Sequence
        from repro.datatypes.alignment import MultipleSequenceAlignment

        if isinstance(obj, Image):
            if obj.dimension == 2:
                self.coordinate_systems.planar(obj.coordinate_space)
            else:
                self.coordinate_systems.volumetric(obj.coordinate_space)
        elif isinstance(obj, (Sequence, MultipleSequenceAlignment)):
            domain = obj.coordinate_domain
            if domain is not None and domain not in self.coordinate_systems:
                self.coordinate_systems.linear(domain)

    def data_object(self, object_id: str) -> DataObject:
        """The registered data object with id *object_id*."""
        return self.registry.get(object_id)

    def object_metadata(self, object_id: str) -> dict[str, Any]:
        """The metadata row for *object_id* from the relational store."""
        row = self.database.table(self._OBJECT_TABLE).get(object_id)
        if row is None:
            raise UnknownObjectError(f"no metadata for object {object_id!r}")
        return row

    # -- annotation workflow ---------------------------------------------------

    @requires_write_lock
    def new_annotation(
        self,
        annotation_id: str | None = None,
        title: str = "",
        creator: str = "",
        keywords: Iterable[str] = (),
        body: str = "",
        description: str = "",
    ) -> AnnotationBuilder:
        """Start building a new annotation (the annotation-tab workflow)."""
        identifier = annotation_id or self._generate_annotation_id()
        if identifier in self._annotation_order:
            raise AnnotationError(f"annotation id {identifier!r} already exists")
        dublin_core = DublinCore(
            title=title,
            creator=creator,
            subject=list(keywords),
            description=description,
            identifier=identifier,
        )
        content = AnnotationContent(dublin_core=dublin_core, body=body)
        return AnnotationBuilder(self, identifier, content)

    @requires_write_lock
    def _generate_annotation_id(self) -> str:
        prefix = f"anno-{self.id_namespace}-" if self.id_namespace else "anno-"
        while True:
            identifier = f"{prefix}{self._next_annotation_serial:06d}"
            self._next_annotation_serial += 1
            if identifier not in self._annotation_order:
                return identifier

    @requires_write_lock
    def commit(self, annotation: Annotation, defer_index: bool = False) -> Annotation:
        """Commit an annotation: store content, index referents, wire a-graph.

        With ``defer_index=True`` the content document's keyword indexing is
        deferred (see :meth:`DocumentCollection.add
        <repro.xmlstore.collection.DocumentCollection.add>`); keyword searches
        flush the deferred work before reading, so results are unaffected.
        :meth:`commit_many` uses this to amortize indexing out of bulk ingest.
        """
        if annotation.annotation_id in self._annotation_order:
            raise AnnotationError(f"annotation {annotation.annotation_id!r} already committed")
        # Validate referents reference registered objects.
        for referent in annotation.referents:
            if referent.ref.object_id not in self.registry:
                raise UnknownObjectError(
                    f"annotation references unregistered object {referent.ref.object_id!r}"
                )
        # 1. Store the annotation content as an XML document.
        document = annotation.to_document()
        self.contents.add(document, doc_id=annotation.annotation_id, defer_index=defer_index)
        # 2. Create the content node in the a-graph.
        self.agraph.add_content(
            annotation.annotation_id,
            title=annotation.content.dublin_core.title,
            keywords=tuple(annotation.content.keywords()),
        )
        # 3. Index referents and wire content->referent edges.
        for referent in annotation.referents:
            referent_id = self.substructures.add(referent)
            self.agraph.add_referent(
                referent_id,
                object=referent.ref.object_id,
                data_type=referent.ref.data_type.value,
            )
            self.agraph.link_annotation(annotation.annotation_id, referent_id)
            # 4. Wire referent->ontology edges.
            for term in referent.ontology_terms:
                self.agraph.add_ontology_node(term)
                self.agraph.link_ontology(referent_id, term)
            # 5. Link referents that share a data object (same_object edges).
            self._link_same_object(referent_id, referent.ref.object_id, annotation)
        # 6. Wire content->ontology edges.
        for term in annotation.content.ontology_terms:
            self.agraph.add_ontology_node(term)
            self.agraph.link_ontology(annotation.annotation_id, term)
        # Columnar store: the annotation's content blob + packed term/referent
        # spans land at its dense id-space slot; the committed object itself
        # seeds the row cache for the commit-then-read pattern.
        slot = self.idspace.intern(annotation.annotation_id)
        self.columns.store(slot, annotation, self.substructures.columns)
        self._annotation_order[annotation.annotation_id] = None
        self._cache_row(annotation.annotation_id, annotation)
        self.stats_catalogue.on_commit(annotation)
        self._bump_epoch()
        return annotation

    @requires_write_lock
    def commit_many(self, annotations: Iterable[Annotation]) -> list[Annotation]:
        """Commit a batch of annotations with deferred content indexing.

        The whole batch is validated up front (no annotation already
        committed, every referent's object registered, no duplicate ids
        inside the batch), so a bad batch fails before any member is applied.
        Each member then commits with ``defer_index=True``: the per-commit
        keyword-index bookkeeping — the dominant cost of a small commit — is
        queued and performed once, lazily, on the first subsequent keyword
        search.  This is the manager half of the serving layer's bulk-commit
        fast path.
        """
        batch = list(annotations)
        seen: set[str] = set()
        for annotation in batch:
            if annotation.annotation_id in self._annotation_order or annotation.annotation_id in seen:
                raise AnnotationError(
                    f"annotation {annotation.annotation_id!r} already committed"
                )
            seen.add(annotation.annotation_id)
            for referent in annotation.referents:
                if referent.ref.object_id not in self.registry:
                    raise UnknownObjectError(
                        f"annotation references unregistered object {referent.ref.object_id!r}"
                    )
        for annotation in batch:
            self.commit(annotation, defer_index=True)
        return batch

    def _link_same_object(self, referent_id: str, object_id: str, annotation: Annotation) -> None:
        """Within one annotation, link referents marking the same object."""
        for other in annotation.referents:
            other_id = other.referent_id
            if other_id == referent_id or other_id is None:
                continue
            if other.ref.object_id == object_id and other_id in self.agraph:
                from repro.agraph.agraph import SAME_OBJECT

                self.agraph.link_referents(referent_id, other_id, label=SAME_OBJECT)

    #: Materialized row views kept hot (commit seeds entries; reads refresh).
    _ROW_CACHE_SIZE = 2048

    def _cache_row(self, annotation_id: str, annotation: Annotation) -> None:
        cache = self._row_cache
        cache[annotation_id] = annotation
        cache.move_to_end(annotation_id)
        while len(cache) > self._ROW_CACHE_SIZE:
            cache.popitem(last=False)

    def annotation(self, annotation_id: str) -> Annotation:
        """The committed annotation with id *annotation_id*.

        Served from the columnar store: a small LRU keeps recently used row
        views; misses materialize a fresh view from the columns (wrapping the
        canonical shared referent extents, so a view never goes stale under
        extent moves).
        """
        cached = self._row_cache.get(annotation_id)
        if cached is not None:
            self._row_cache.move_to_end(annotation_id)
            return cached
        slot = self.idspace.slot(annotation_id)
        if slot is None or not self.columns.is_live(slot):
            raise AnnotationError(f"no annotation {annotation_id!r}")
        annotation = self.columns.materialize(annotation_id, slot, self.substructures.columns)
        self._cache_row(annotation_id, annotation)
        return annotation

    def has_annotation(self, annotation_id: str) -> bool:
        """Whether *annotation_id* is a committed annotation."""
        return annotation_id in self._annotation_order

    def annotation_ids(self) -> list[str]:
        """Ids of every committed annotation, in commit order."""
        return list(self._annotation_order)

    @requires_write_lock
    def delete_annotation(self, annotation_id: str) -> None:
        """Remove a committed annotation and tidy the wired substrates.

        The content document and content node are removed.  Referent nodes and
        their indexed extents are removed only when no *other* annotation still
        shares them (a referent shared by several annotations survives), which
        keeps the indirect-relatedness structure correct.
        """
        annotation = self.annotation(annotation_id)
        self.contents.remove(annotation_id)
        for referent in annotation.referents:
            referent_id = referent.referent_id
            others = [
                other
                for other in self.agraph.contents_annotating(referent_id)
                if other != annotation_id
            ]
            if not others:
                # No other annotation needs this referent; drop its node and index.
                if referent_id in self.agraph:
                    self.agraph.graph.remove_node(referent_id)
                self.substructures.discard(referent_id)
        if annotation_id in self.agraph:
            self.agraph.graph.remove_node(annotation_id)
        slot = self.idspace.slot(annotation_id)
        if slot is not None:
            self.columns.clear(slot)
        del self._annotation_order[annotation_id]
        self._row_cache.pop(annotation_id, None)
        self.idspace.release(annotation_id)
        self.stats_catalogue.on_delete(annotation)
        self._bump_epoch()

    #: Keys :meth:`update_annotation` understands.
    _UPDATE_KEYS = frozenset(
        {
            "title", "creator", "description", "keywords", "body", "user_tags",
            "ontology_terms", "add_referents", "remove_referents", "move_referents",
        }
    )

    @requires_write_lock
    def update_annotation(self, annotation_id: str, changes: dict[str, Any]) -> Annotation:
        """Apply *changes* to a committed annotation with **delta** index
        maintenance — the edit stays in place instead of delete+recommit.

        Supported keys:

        * ``title`` / ``creator`` / ``description`` / ``keywords`` / ``body``
          / ``user_tags`` — replace the corresponding content field;
        * ``ontology_terms`` — replace the *content-level* ontology pointers
          (``refers_to`` edges are diffed, not rebuilt);
        * ``add_referents`` — :class:`Referent` objects (or their codec
          dicts) to attach, wired exactly like a commit wires them;
        * ``remove_referents`` — referent ids to detach; a referent still
          annotated by another annotation survives (the shared-referent
          survival rule deletes obey);
        * ``move_referents`` — ``{referent_id: {"start": .., "end": ..}}``
          (or ``{"lo": .., "hi": ..}``) extent moves applied in place inside
          the interval tree / R-tree.

        Index maintenance is proportional to the *diff*: the inverted index
        re-posts only changed terms (via the doc→terms reverse map), spatial
        trees see one remove+insert per moved extent, the statistics
        catalogue adjusts by set differences, and the annotation keeps its
        dense id-space slot (no release/re-intern, so no slot churn).  The
        whole change set is validated before anything applies.
        """
        annotation = self.annotation(annotation_id)
        changes = dict(changes)
        unknown = set(changes) - self._UPDATE_KEYS
        if unknown:
            raise AnnotationError(
                f"unknown update key(s) {sorted(unknown)!r} for annotation {annotation_id!r}"
            )
        from repro.core.persistence import decode_referent

        additions = [
            item if isinstance(item, Referent) else decode_referent(item)
            for item in changes.get("add_referents", ())
        ]
        removals = list(changes.get("remove_referents", ()))
        moves = {
            referent_id: dict(extent)
            for referent_id, extent in dict(changes.get("move_referents", {})).items()
        }
        # -- validate the whole change set before anything applies ---------
        for referent in additions:
            if referent.ref.object_id not in self.registry:
                raise UnknownObjectError(
                    f"annotation references unregistered object {referent.ref.object_id!r}"
                )
        existing_ids = [ref.referent_id for ref in annotation.referents]
        for referent_id in removals:
            if referent_id not in existing_ids:
                raise AnnotationError(
                    f"annotation {annotation_id!r} has no referent {referent_id!r}"
                )
        for referent_id, extent in moves.items():
            if referent_id not in existing_ids or referent_id in removals:
                raise AnnotationError(
                    f"annotation {annotation_id!r} cannot move referent {referent_id!r}"
                )
            # Fully vet the move here: steps 1-3 below mutate state before the
            # move applies, so a bad extent spec must never get past
            # validation (the whole change set applies or none of it does).
            target = next(
                referent for referent in annotation.referents
                if referent.referent_id == referent_id
            )
            if target.ref.interval is not None:
                if not set(extent) <= {"start", "end"} or not extent:
                    raise AnnotationError(
                        f"referent {referent_id!r} is 1D; move it with start/end"
                    )
            elif target.ref.rect is not None:
                if not set(extent) <= {"lo", "hi"} or not extent:
                    raise AnnotationError(
                        f"referent {referent_id!r} is 2D/3D; move it with lo/hi"
                    )
                dimension = len(target.ref.rect.lo)
                for corner in ("lo", "hi"):
                    if corner in extent and len(tuple(extent[corner])) != dimension:
                        raise AnnotationError(
                            f"move for referent {referent_id!r} needs {dimension} "
                            f"coordinate(s) per corner"
                        )
            else:
                raise AnnotationError(
                    f"referent {referent_id!r} has no spatial extent to move"
                )
        surviving = len(existing_ids) - len(set(removals)) + len(additions)
        final_content_terms = (
            list(dict.fromkeys(changes["ontology_terms"]))
            if "ontology_terms" in changes
            else list(annotation.content.ontology_terms)
        )
        if surviving <= 0 and not final_content_terms:
            raise AnnotationError(
                "an annotation must keep at least one referent or ontology reference"
            )

        # -- capture pre-update statistics inputs --------------------------
        old_types = {referent.ref.data_type.value for referent in annotation.referents}
        old_terms = set(annotation.ontology_terms())
        # Exact searchable-text delta of the edit: every part (field text,
        # attribute value) the edit removes/adds, accumulated as the change
        # applies.  Token counts are additive over parts (the document codec
        # joins them with whitespace), so the inverted index can re-post
        # O(edit) terms instead of re-tokenizing the whole document.
        removed_parts: list[str] = []
        added_parts: list[str] = []

        # -- 1. content field edits (in place) ------------------------------
        content = annotation.content
        dublin_core = content.dublin_core
        if "title" in changes:
            removed_parts.append(dublin_core.title)
            dublin_core.title = changes["title"]
            added_parts.append(dublin_core.title)
        if "creator" in changes:
            removed_parts.append(dublin_core.creator)
            dublin_core.creator = changes["creator"]
            added_parts.append(dublin_core.creator)
        if "description" in changes:
            removed_parts.append(dublin_core.description)
            dublin_core.description = changes["description"]
            added_parts.append(dublin_core.description)
        if "keywords" in changes:
            removed_parts.extend(str(item) for item in dublin_core.subject if item)
            dublin_core.subject = list(changes["keywords"])
            added_parts.extend(str(item) for item in dublin_core.subject if item)
        if "body" in changes:
            removed_parts.append(content.body)
            content.body = changes["body"]
            added_parts.append(content.body)
        if "user_tags" in changes:
            removed_parts.extend(str(value) for value in content.user_tags.values())
            content.user_tags = dict(changes["user_tags"])
            added_parts.extend(str(value) for value in content.user_tags.values())
        if "ontology_terms" in changes:
            removed_parts.extend(str(term) for term in content.ontology_terms)
            content.ontology_terms = [
                self.resolve_ontology_term(term) for term in final_content_terms
            ]
            added_parts.extend(str(term) for term in content.ontology_terms)

        # -- 2. referent removals (shared-referent survival rule) -----------
        for referent_id in dict.fromkeys(removals):
            for referent in annotation._referents:  # noqa: SLF001 - owning mutation path
                if referent.referent_id == referent_id:
                    removed_parts.extend(_element_text_parts(referent.to_element()))
            annotation._referents = [  # noqa: SLF001 - owning mutation path
                referent for referent in annotation._referents
                if referent.referent_id != referent_id
            ]
            if referent_id in self.agraph:
                self.agraph.unlink_annotation(annotation_id, referent_id)
                if not self.agraph.contents_annotating(referent_id):
                    # No other annotation needs this referent; drop node + index.
                    self.agraph.graph.remove_node(referent_id)
                    self.substructures.discard(referent_id)

        # -- 3. referent additions (same wiring as a commit) -----------------
        for referent in additions:
            annotation._referents.append(referent)  # noqa: SLF001 - owning mutation path
            referent_id = self.substructures.add(referent)
            self.agraph.add_referent(
                referent_id,
                object=referent.ref.object_id,
                data_type=referent.ref.data_type.value,
            )
            self.agraph.link_annotation(annotation_id, referent_id)
            for term in referent.ontology_terms:
                self.agraph.add_ontology_node(term)
                self.agraph.link_ontology(referent_id, term)
            self._link_same_object(referent_id, referent.ref.object_id, annotation)
            added_parts.extend(_element_text_parts(referent.to_element()))

        # -- 4. extent moves (one remove+insert inside the owning tree) ------
        for referent_id, extent in moves.items():
            moved = self.substructures.get(referent_id)
            move_removed = _extent_text_parts(moved.ref)
            self.substructures.move(referent_id, **extent)
            move_added = _extent_text_parts(moved.ref)
            removed_parts.extend(move_removed)
            added_parts.extend(move_added)
            # A shared substructure moves for EVERY annotation marking it.
            # The store's referent is canonical (its ref just mutated), and
            # column-materialized row views wrap that same ref object, so
            # they see the move automatically.  Only cached rows seeded at
            # commit hold their own Referent copies and need the explicit
            # adoption; each sharer's stored document gets the same
            # coordinate delta so every index stays exact.  The updating
            # annotation syncs too, but its delta is already accumulated
            # above and its document lands in step 6.
            for sharer_id in self.agraph.contents_annotating(referent_id):
                cached = self._row_cache.get(sharer_id)
                if cached is not None:
                    for shared_referent in cached._referents:  # noqa: SLF001 - sync path
                        if shared_referent.referent_id == referent_id:
                            shared_referent.ref = moved.ref
                if sharer_id != annotation_id:
                    self.contents.update_delta(
                        sharer_id,
                        self._document_regenerator(sharer_id),
                        move_removed,
                        move_added,
                    )

        # -- 5. content->ontology edge rewiring (diff, not rebuild) ----------
        linked = set(self.agraph.ontology_terms_of(annotation_id))
        wanted = set(content.ontology_terms)
        for term in linked - wanted:
            self.agraph.unlink_ontology(annotation_id, term)
        for term in wanted - linked:
            self.agraph.add_ontology_node(term)
            self.agraph.link_ontology(annotation_id, term)

        # -- 6. content node attributes + delta document re-index ------------
        self.agraph.add_content(
            annotation_id,
            title=dublin_core.title,
            keywords=tuple(content.keywords()),
        )
        # The index adjusts now (exactly, from the parts); the stored XML
        # regenerates lazily on first read — churn never renders documents
        # nobody reads between edits.
        self.contents.update_delta(
            annotation_id, annotation.to_document, removed_parts, added_parts
        )

        # -- 7. catalogue delta; the id-space slot stays put by design -------
        # Re-store the edited row at its (unchanged) slot: the old blob/span
        # becomes tombstone garbage reclaimed by compaction.
        slot = self.idspace.slot(annotation_id)
        if slot is not None:
            self.columns.store(slot, annotation, self.substructures.columns)
        self._cache_row(annotation_id, annotation)
        self.stats_catalogue.on_update(annotation, old_types, old_terms)
        self._bump_epoch()
        return annotation

    def _document_regenerator(self, annotation_id: str) -> Callable[[], Any]:
        """A lazy ``to_document`` for *annotation_id* (materializes the row
        view only if the collection actually needs to regenerate the XML)."""
        def regenerate():
            return self.annotation(annotation_id).to_document()

        return regenerate

    def annotations_on_object(self, object_id: str) -> list[str]:
        """Ids of every committed annotation with a referent on *object_id*.

        Answered from the substructure store's per-object index plus the
        a-graph's ``annotates`` in-edges — O(answer), no annotation scan.
        """
        referents = self.substructures.referents_on_object(object_id)
        return sorted(
            self.agraph.annotation_counts(
                referent.referent_id for referent in referents
            )
        )

    @requires_write_lock
    def delete_object(self, object_id: str, cascade: bool = True) -> list[str]:
        """Retire a data object; returns the ids of cascade-deleted annotations.

        With ``cascade=True`` (default) every annotation with a referent on
        the object is deleted first — including annotations that also mark
        *other* objects (their referents elsewhere follow the shared-referent
        survival rule).  With ``cascade=False`` the call refuses while any
        annotation still references the object.  The object's registry entry
        and metadata row are then removed, along with any referent of the
        object left in the store.
        """
        if object_id not in self.registry:
            raise UnknownObjectError(f"no data object {object_id!r} registered")
        annotation_ids = self.annotations_on_object(object_id)
        if annotation_ids and not cascade:
            raise AnnotationError(
                f"data object {object_id!r} is referenced by "
                f"{len(annotation_ids)} annotation(s); pass cascade=True to delete them"
            )
        for annotation_id in annotation_ids:
            self.delete_annotation(annotation_id)
        # Defensive sweep: a referent of the object that somehow survived the
        # cascade (e.g. wired without an annotation) must not outlive it.
        for referent in self.substructures.referents_on_object(object_id):
            referent_id = referent.referent_id
            self.substructures.discard(referent_id)
            if referent_id in self.agraph:
                self.agraph.graph.remove_node(referent_id)
        self.registry.unregister(object_id)
        from repro.relational.query import eq

        self.database.table(self._OBJECT_TABLE).delete(eq("object_id", object_id))
        self._bump_epoch()
        return annotation_ids

    def annotations(self) -> list[Annotation]:
        """Every committed annotation, materialized in commit order.

        This walks the columns and builds a full row view per annotation —
        prefer :meth:`annotation_ids` plus targeted reads (or the column
        accessors) on large instances.
        """
        return [self.annotation(annotation_id) for annotation_id in self._annotation_order]

    @property
    def annotation_count(self) -> int:
        """Number of committed annotations."""
        return len(self._annotation_order)

    # -- columnar storage management ------------------------------------------

    def storage_stats(self) -> dict[str, Any]:
        """Live/tombstone slot counts and heap sizes of the columnar store."""
        return {
            "annotations": self.columns.storage_stats(),
            "referents": self.substructures.columns.storage_stats(),
            "row_cache_entries": len(self._row_cache),
        }

    @requires_write_lock
    def compact_storage(self) -> dict[str, Any]:
        """Rewrite the column heaps dropping tombstoned rows.

        Safe against an in-flight frozen snapshot view: compaction swaps in
        new heap objects, leaving the frozen references intact.
        """
        reclaimed = self.columns.compact()
        self.substructures.columns.compact()
        self._bump_epoch()
        return reclaimed

    # -- query workflow --------------------------------------------------------

    def search_by_keyword(self, keyword: str, mode: str = "and") -> list[str]:
        """Annotation ids whose content contains the keyword(s)."""
        return self.contents.search_keyword(keyword, mode=mode)

    def search_by_ontology(self, term: str, ontology: str | None = None, include_descendants: bool = True) -> list[str]:
        """Annotation ids that point (directly or via a referent) at an
        ontology term or any of its descendants."""
        target_terms = self._expand_ontology_term(term, ontology, include_descendants)
        matches: set[str] = set()
        graph = self.agraph.graph
        for term_id in target_terms:
            if term_id not in self.agraph:
                continue
            for edge in graph.iter_in_edges(term_id):
                node = graph.node(edge.source)
                if node.kind == "content":
                    matches.add(edge.source)
                elif node.kind == "referent":
                    matches.update(self.agraph.contents_annotating(edge.source))
        return sorted(matches)

    def _expand_ontology_term(self, term: str, ontology: str | None, include_descendants: bool) -> set[str]:
        names = [ontology] if ontology is not None else list(self._ontologies)
        for name in names:
            ops = self._ontology_ops.get(name)
            if ops is None:
                continue
            try:
                if include_descendants:
                    return ops.concept_and_descendants(term)
                return {ops.resolve_term(term)}
            except GraphittiError:
                continue
        return {term}

    def search_by_overlap_interval(self, domain: str, start: float, end: float) -> list[str]:
        """Annotation ids whose referents overlap ``[start, end]`` in *domain*."""
        referents = self.substructures.overlapping_intervals(domain, start, end)
        return self._annotations_for_referents(referents)

    def search_by_overlap_region(self, space: str, lo, hi) -> list[str]:
        """Annotation ids whose referents overlap the query box in *space*."""
        referents = self.substructures.overlapping_regions(space, lo, hi)
        return self._annotations_for_referents(referents)

    def _annotations_for_referents(self, referents: list) -> list[str]:
        counts = self.agraph.annotation_counts(
            referent.referent_id for referent in referents
        )
        return sorted(counts)

    def path_between_annotations(self, annotation1: str, annotation2: str) -> list | None:
        """A path in the a-graph between two annotation contents."""
        return self.agraph.path(annotation1, annotation2)

    def query(self, text_or_query, enable_ordering: bool = True, mode: str | None = None,
              tracer=None):
        """Run a GQL query (text or :class:`~repro.query.ast.Query`) and return
        its :class:`~repro.query.result.QueryResult`.

        With ordering enabled the planner is **cost-based**: constraint order
        comes from live cardinality estimates (see
        :mod:`repro.query.stats`) and the executor adapts as the candidate
        set shrinks.  *mode* overrides the planning mode explicitly
        (``"off"``, ``"static"``, ``"cost"``) — the benchmarks use
        ``"static"`` to measure the old constant-table planner.  *tracer*
        (a :class:`repro.obs.Tracer`) makes the executor emit per-constraint
        and collation spans under whatever span is open on this thread.
        """
        from repro.query.ast import Query as _Query
        from repro.query.executor import QueryExecutor
        from repro.query.parser import parse_query
        from repro.query.planner import QueryPlanner

        query = text_or_query if isinstance(text_or_query, _Query) else parse_query(text_or_query)
        planner = QueryPlanner(enable_ordering=enable_ordering, manager=self, mode=mode)
        executor = QueryExecutor(self, planner=planner, tracer=tracer)
        return executor.execute(query)

    def explain(self, text_or_query, enable_ordering: bool = True, mode: str | None = None) -> dict:
        """Return the query plan and its estimated cost without executing it.

        The returned dict holds the parsed query description, the ordered plan
        explanation (with per-constraint row estimates in cost mode), the
        per-type subquery count, the planner's static cost estimate, and the
        catalogue's estimated rows — the information an ``EXPLAIN`` surfaces.
        """
        from repro.query.ast import Query as _Query
        from repro.query.parser import parse_query
        from repro.query.planner import QueryPlanner

        query = text_or_query if isinstance(text_or_query, _Query) else parse_query(text_or_query)
        planner = QueryPlanner(enable_ordering=enable_ordering, manager=self, mode=mode)
        plan = planner.plan(query)
        explanation = {
            "query": query.describe(),
            "plan": plan.explain(),
            "subqueries": plan.subquery_count(),
            "estimated_cost": QueryPlanner.estimated_cost(query),
            "targets": [target.value for target in query.targets_present()],
            "mode": plan.mode,
        }
        if plan.estimated_rows is not None:
            explanation["estimated_rows"] = [
                (constraint.describe(), rows)
                for constraint, rows in zip(plan.ordered_constraints, plan.estimated_rows)
            ]
        return explanation

    def connect_annotations(self, *annotation_ids: str) -> ConnectionSubgraph:
        """A connection subgraph intervening several annotations."""
        return self.agraph.connect(*annotation_ids)

    # -- explore workflow ------------------------------------------------------

    def related_annotations(self, annotation_id: str) -> list[str]:
        """Annotations indirectly related through a shared referent."""
        return sorted(self.agraph.related_annotations(annotation_id))

    def graph_metrics(self):
        """Return an :class:`~repro.agraph.metrics.AGraphMetrics` over the a-graph."""
        from repro.agraph.metrics import AGraphMetrics

        return AGraphMetrics(self.agraph)

    def similar_annotations(self, annotation_id: str, top: int = 3) -> list[tuple[str, float]]:
        """Annotations most similar to *annotation_id* by shared referents.

        Similarity is the Jaccard overlap of the two annotations' referent
        sets — the "browse through further related results" step of the query
        tab, ranked.
        """
        return self.graph_metrics().most_similar(annotation_id, top=top)

    def correlated_data(self, annotation_id: str) -> dict[str, list[str]]:
        """Correlated-data view: for each referent, the *other* annotations on
        the same referent, plus the objects those annotations touch."""
        annotation = self.annotation(annotation_id)
        correlated: dict[str, list[str]] = {}
        for referent in annotation.referents:
            referent_id = referent.referent_id
            others = [
                other
                for other in self.agraph.contents_annotating(referent_id)
                if other != annotation_id
            ]
            correlated[referent_id] = sorted(others)
        return correlated

    def witness_structure(self, annotation_id: str) -> dict[str, Any]:
        """The full witness structure of an annotation: content + the
        substructures it annotates (the paper's "correlated data viewing")."""
        annotation = self.annotation(annotation_id)
        return {
            "annotation": annotation_id,
            "keywords": annotation.content.keywords(),
            "referents": [
                {
                    "referent_id": referent.referent_id,
                    "object": referent.ref.object_id,
                    "type": referent.ref.data_type.value,
                    "descriptor": referent.ref.descriptor,
                    "ontology_terms": referent.ontology_terms,
                }
                for referent in annotation.referents
            ],
            "ontology_terms": sorted(annotation.ontology_terms()),
        }

    # -- administration --------------------------------------------------------

    def administrator(self):
        """Return an :class:`~repro.core.admin.Administrator` (admin tab)."""
        from repro.core.admin import Administrator

        return Administrator(self)

    def check_integrity(self):
        """Convenience: run a full integrity check and return the report."""
        return self.administrator().check_integrity()

    # -- stats -----------------------------------------------------------------

    def statistics(self) -> dict[str, Any]:
        """Summary statistics about the instance (sizes of every substrate).

        Extra sources registered in :attr:`stats_providers` (the serving
        layer's cache / WAL counters) are merged into the returned dict.
        """
        interval_trees, rtrees = self.substructures.index_count()
        stats = {
            "data_objects": len(self.registry),
            "objects_by_type": {dt.value: n for dt, n in self.registry.count_by_type().items()},
            "annotations": self.annotation_count,
            "referents": len(self.substructures),
            "interval_trees": interval_trees,
            "rtrees": rtrees,
            "indexed_intervals": self.substructures.total_indexed_intervals(),
            "indexed_regions": self.substructures.total_indexed_regions(),
            "agraph_nodes": self.agraph.node_count,
            "agraph_nodes_by_kind": self.agraph.graph.kind_counts(),
            "agraph_edges": self.agraph.edge_count,
            "ontologies": len(self._ontologies),
            "mutation_epoch": self.mutation_epoch,
            "catalogue": self.stats_catalogue.summary(),
            "extent_summaries": self.substructures.extent_summaries(),
        }
        for provider in self.stats_providers:
            stats.update(provider())
        return stats
