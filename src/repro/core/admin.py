"""System-administration facilities (the paper's admin tab).

"The Graphitti system ... displays three tabbed panels for creating
annotations, querying annotations and system administration."  This module is
the programmatic form of that third tab: integrity checks over the wired
substrates, statistics, index-economy reporting, orphan detection, and a
consistency validator that the tests and examples use to assert the instance
is internally sound after a batch of commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.agraph.agraph import NodeKind


@dataclass
class IntegrityReport:
    """The result of a full integrity check over a Graphitti instance."""

    ok: bool = True
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    checks_run: int = 0

    def fail(self, message: str) -> None:
        """Record a hard integrity error."""
        self.ok = False
        self.errors.append(message)

    def warn(self, message: str) -> None:
        """Record a non-fatal warning."""
        self.warnings.append(message)

    def summary(self) -> str:
        """Human-readable one-line summary."""
        status = "OK" if self.ok else "FAILED"
        return f"integrity {status}: {self.checks_run} checks, {len(self.errors)} errors, {len(self.warnings)} warnings"


class Administrator:
    """Administrative operations over a :class:`~repro.core.manager.Graphitti`.

    The administrator never mutates annotations; it inspects the wired
    substrates and reports.  It is deliberately read-only so it is safe to run
    at any time (the "system administration" panel in the paper).
    """

    def __init__(self, manager):
        self._manager = manager

    # -- integrity ------------------------------------------------------------

    def check_integrity(self) -> IntegrityReport:
        """Run every cross-substrate consistency check.

        Verifies that, for every committed annotation, (a) its content
        document is in the collection, (b) its content node is in the a-graph,
        (c) each referent is indexed and has a referent node linked by an
        ``annotates`` edge, and (d) every referenced data object is registered.
        """
        report = IntegrityReport()
        manager = self._manager
        for annotation in manager.annotations():
            report.checks_run += 1
            annotation_id = annotation.annotation_id
            if annotation_id not in manager.contents:
                report.fail(f"annotation {annotation_id!r} has no content document")
            if annotation_id not in manager.agraph:
                report.fail(f"annotation {annotation_id!r} has no a-graph content node")
            elif manager.agraph.graph.node(annotation_id).kind != NodeKind.CONTENT.value:
                report.fail(f"annotation {annotation_id!r} node is not a content node")
            linked = set(manager.agraph.referents_of(annotation_id)) if annotation_id in manager.agraph else set()
            for referent in annotation.referents:
                referent_id = referent.referent_id
                if referent_id not in manager.substructures:
                    report.fail(f"referent {referent_id!r} of {annotation_id!r} is not indexed")
                if referent_id not in linked:
                    report.fail(f"referent {referent_id!r} is not linked from {annotation_id!r}")
                if referent.ref.object_id not in manager.registry:
                    if getattr(manager, "catalogue_only", False):
                        report.warn(
                            f"catalogue-only instance: data object {referent.ref.object_id!r} not reconstructed"
                        )
                    else:
                        report.fail(
                            f"annotation {annotation_id!r} references unregistered object {referent.ref.object_id!r}"
                        )
        self._check_agraph_consistency(report)
        self._check_index_consistency(report)
        return report

    def _check_agraph_consistency(self, report: IntegrityReport) -> None:
        manager = self._manager
        report.checks_run += 1
        for content_id in manager.agraph.contents():
            if not manager.has_annotation(content_id):
                report.fail(f"a-graph content node {content_id!r} has no annotation")
        for referent_id in manager.agraph.referents():
            if referent_id not in manager.substructures:
                report.warn(f"a-graph referent node {referent_id!r} is not in the substructure store")

    def _check_index_consistency(self, report: IntegrityReport) -> None:
        manager = self._manager
        report.checks_run += 1
        indexed = manager.substructures.total_indexed_intervals() + manager.substructures.total_indexed_regions()
        spatial_referents = sum(
            1 for referent in manager.substructures.all_referents() if referent.ref.is_spatial
        )
        if indexed != spatial_referents:
            report.fail(
                f"indexed extents ({indexed}) != spatial referents ({spatial_referents})"
            )

    # -- reporting ------------------------------------------------------------

    def orphan_objects(self) -> list[str]:
        """Registered data objects that no annotation references."""
        referenced = set()
        for annotation in self._manager.annotations():
            referenced.update(annotation.object_ids())
        return sorted(set(self._manager.registry.object_ids()) - referenced)

    def orphan_ontology_terms(self) -> list[str]:
        """Ontology nodes in the a-graph that nothing points at."""
        orphans = []
        for term_id in self._manager.agraph.ontology_nodes():
            if self._manager.agraph.graph.in_degree(term_id) == 0:
                orphans.append(term_id)
        return sorted(orphans)

    def index_economy(self) -> dict[str, Any]:
        """The paper's "keep the number of index structures small" metric.

        Reports how many interval trees / R-trees exist relative to the number
        of data objects that could have had their own index.
        """
        interval_trees, rtrees = self._manager.substructures.index_count()
        sequence_like = 0
        image_like = 0
        for obj in self._manager.registry:
            if obj.data_type.is_sequence or obj.data_type.value == "multiple_sequence_alignment":
                sequence_like += 1
            elif obj.data_type.is_spatial_2d:
                image_like += 1
        return {
            "interval_trees": interval_trees,
            "sequence_like_objects": sequence_like,
            "interval_tree_sharing_ratio": round(sequence_like / interval_trees, 2) if interval_trees else 0.0,
            "rtrees": rtrees,
            "image_objects": image_like,
            "rtree_sharing_ratio": round(image_like / rtrees, 2) if rtrees else 0.0,
        }

    def annotation_leaderboard(self, top: int = 5) -> list[tuple[str, int]]:
        """Data objects ranked by how many referents annotate them."""
        counts: dict[str, int] = {}
        for referent in self._manager.substructures.all_referents():
            counts[referent.ref.object_id] = counts.get(referent.ref.object_id, 0) + 1
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:top]

    def creator_activity(self) -> dict[str, int]:
        """Number of annotations per creator."""
        activity: dict[str, int] = {}
        for annotation in self._manager.annotations():
            creator = annotation.content.dublin_core.creator or "(unknown)"
            activity[creator] = activity.get(creator, 0) + 1
        return activity
