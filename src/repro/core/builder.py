"""Fluent annotation builder.

Reproduces the paper's annotation-tab workflow programmatically: the user
searches for data, drags referents into the central panel (here: ``mark_*``
calls), attaches ontology references (``refer_ontology``), writes the content
XML (the Dublin Core / body arguments), then commits.  A :class:`Graphitti`
hands out :class:`AnnotationBuilder` instances from
:meth:`~repro.core.manager.Graphitti.new_annotation`.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.annotation import Annotation, AnnotationContent
from repro.core.dublin_core import DublinCore
from repro.datatypes.base import DataType, SubstructureRef
from repro.errors import AnnotationError


class AnnotationBuilder:
    """Accumulates referents and content, then commits via the manager."""

    def __init__(self, manager, annotation_id: str, content: AnnotationContent):
        self._manager = manager
        self._annotation = Annotation(annotation_id, content)
        self._committed = False

    # -- content ---------------------------------------------------------------

    @property
    def content(self) -> AnnotationContent:
        """The annotation content being built."""
        return self._annotation.content

    def add_keyword(self, keyword: str) -> "AnnotationBuilder":
        """Add a Dublin Core subject keyword to the content."""
        self._annotation.content.add_keyword(keyword)
        return self

    def set_body(self, body: str) -> "AnnotationBuilder":
        """Set the free-text body of the annotation content."""
        self._annotation.content.body = body
        return self

    def set_tag(self, name: str, value: str) -> "AnnotationBuilder":
        """Set a user-defined content tag (the 'other user-defined tags')."""
        self._annotation.content.user_tags[name] = value
        return self

    def refer_ontology(self, *term_ids: str) -> "AnnotationBuilder":
        """Make the content itself point at one or more ontology terms."""
        for term_id in term_ids:
            resolved = self._manager.resolve_ontology_term(term_id)
            self._annotation.content.point_to(resolved)
        return self

    # -- referents -------------------------------------------------------------

    def add_referent(self, ref: SubstructureRef, ontology_terms: Iterable[str] = ()) -> "AnnotationBuilder":
        """Attach a pre-built substructure reference as a referent."""
        resolved = [self._manager.resolve_ontology_term(term) for term in ontology_terms]
        self._annotation.add_referent(ref, ontology_terms=resolved)
        return self

    def mark_sequence(self, object_id: str, start: int, end: int, ontology_terms: Iterable[str] = (), label: str | None = None) -> "AnnotationBuilder":
        """Mark a residue interval on a registered sequence."""
        obj = self._manager.data_object(object_id)
        ref = obj.mark(start, end, label=label)
        return self.add_referent(ref, ontology_terms)

    def mark_alignment_columns(self, object_id: str, start: int, end: int, ontology_terms: Iterable[str] = ()) -> "AnnotationBuilder":
        """Mark a column block on a registered alignment."""
        obj = self._manager.data_object(object_id)
        ref = obj.mark_columns(start, end)
        return self.add_referent(ref, ontology_terms)

    def mark_region(self, object_id: str, lo, hi, ontology_terms: Iterable[str] = (), label: str | None = None) -> "AnnotationBuilder":
        """Mark a 2D/3D region on a registered image."""
        obj = self._manager.data_object(object_id)
        ref = obj.mark_region(lo, hi, label=label)
        return self.add_referent(ref, ontology_terms)

    def mark_record_block(self, object_id: str, row_keys: Iterable[str], ontology_terms: Iterable[str] = ()) -> "AnnotationBuilder":
        """Mark a block of rows on a registered relational record."""
        obj = self._manager.data_object(object_id)
        ref = obj.mark_block(row_keys)
        return self.add_referent(ref, ontology_terms)

    def mark_clade(self, object_id: str, clade_name: str, ontology_terms: Iterable[str] = ()) -> "AnnotationBuilder":
        """Mark a clade on a registered phylogenetic tree."""
        obj = self._manager.data_object(object_id)
        ref = obj.mark_clade(clade_name)
        return self.add_referent(ref, ontology_terms)

    def mark_clade_by_leaves(self, object_id: str, leaf_names: Iterable[str], ontology_terms: Iterable[str] = ()) -> "AnnotationBuilder":
        """Mark the smallest clade covering the named leaves."""
        obj = self._manager.data_object(object_id)
        ref = obj.mark_clade_by_leaves(list(leaf_names))
        return self.add_referent(ref, ontology_terms)

    def mark_subgraph(self, object_id: str, nodes: Iterable[str], ontology_terms: Iterable[str] = ()) -> "AnnotationBuilder":
        """Mark an induced subgraph on a registered interaction graph."""
        obj = self._manager.data_object(object_id)
        ref = obj.mark_subgraph(nodes)
        return self.add_referent(ref, ontology_terms)

    def mark_neighborhood(self, object_id: str, node: str, radius: int = 1, ontology_terms: Iterable[str] = ()) -> "AnnotationBuilder":
        """Mark a node's neighbourhood subgraph on an interaction graph."""
        obj = self._manager.data_object(object_id)
        ref = obj.mark_neighborhood(node, radius=radius)
        return self.add_referent(ref, ontology_terms)

    # -- commit -----------------------------------------------------------------

    def build(self) -> Annotation:
        """Return the assembled :class:`Annotation` without committing."""
        if not self._annotation.referents and not self._annotation.content.ontology_terms:
            raise AnnotationError("an annotation must have at least one referent or ontology reference")
        return self._annotation

    def commit(self) -> Annotation:
        """Commit the annotation through the manager and return it."""
        if self._committed:
            raise AnnotationError(f"annotation {self._annotation.annotation_id!r} already committed")
        annotation = self.build()
        self._manager.commit(annotation)
        self._committed = True
        return annotation
