"""Dublin Core metadata for annotation contents.

"The annotation content produced by Graphitti is an XML document whose
elements consist of Dublin core attributes and other user-defined tags."
This module models the 15 Dublin Core elements and renders them as the
``dc:*`` elements of an annotation content document.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.xmlstore.document import XmlElement

#: The 15 Dublin Core Metadata Element Set terms.
DC_ELEMENTS = (
    "title",
    "creator",
    "subject",
    "description",
    "publisher",
    "contributor",
    "date",
    "type",
    "format",
    "identifier",
    "source",
    "language",
    "relation",
    "coverage",
    "rights",
)


@dataclass
class DublinCore:
    """Dublin Core metadata for one annotation content.

    Each attribute maps to a ``dc:<element>`` tag.  ``subject`` and
    ``contributor`` are lists because an annotation commonly carries several
    keywords / contributors; the rest are single-valued.
    """

    title: str = ""
    creator: str = ""
    subject: list[str] = field(default_factory=list)
    description: str = ""
    publisher: str = ""
    contributor: list[str] = field(default_factory=list)
    date: str = ""
    type: str = "annotation"
    format: str = "text/xml"
    identifier: str = ""
    source: str = ""
    language: str = "en"
    relation: str = ""
    coverage: str = ""
    rights: str = ""

    def keywords(self) -> list[str]:
        """The subject keywords (a common query target)."""
        return list(self.subject)

    def to_elements(self) -> list[XmlElement]:
        """Render the populated elements as ``dc:*`` XML elements."""
        elements: list[XmlElement] = []
        for name in DC_ELEMENTS:
            value = getattr(self, name)
            if isinstance(value, list):
                for item in value:
                    if item:
                        elements.append(XmlElement(f"dc:{name}", text=str(item)))
            elif value:
                elements.append(XmlElement(f"dc:{name}", text=str(value)))
        return elements

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation."""
        return {name: getattr(self, name) for name in DC_ELEMENTS}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DublinCore":
        """Reconstruct Dublin Core metadata from :meth:`to_dict` output.

        Unknown keys are ignored and missing keys keep their defaults, so the
        codec tolerates payloads written by older snapshot versions.
        """
        core = cls()
        for name in DC_ELEMENTS:
            value = payload.get(name)
            if value is None:
                continue
            if isinstance(getattr(core, name), list):
                if isinstance(value, str):  # a scalar where a list is expected
                    value = [value]
                setattr(core, name, [str(item) for item in value])
            else:
                setattr(core, name, str(value))
        return core

    @classmethod
    def from_elements(cls, elements: list[XmlElement]) -> "DublinCore":
        """Reconstruct Dublin Core metadata from ``dc:*`` elements."""
        core = cls()
        for element in elements:
            if not element.tag.startswith("dc:"):
                continue
            name = element.tag[3:]
            if name not in DC_ELEMENTS:
                continue
            current = getattr(core, name)
            if isinstance(current, list):
                current.append(element.text)
            else:
                setattr(core, name, element.text)
        return core
