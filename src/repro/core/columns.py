"""Columnar storage for annotation and referent hot state.

The manager used to keep every committed annotation as a full Python object
graph (``Annotation`` → ``AnnotationContent`` → ``DublinCore`` + per-annotation
``Referent`` copies), which every scan, snapshot, and stats rebuild chased
pointer-by-pointer and which dominated RSS at the 100k+ tier.  This module
packs that state into columns keyed by the dense-int id space slots from
:mod:`repro.query.idspace`:

``AnnotationColumns``
    Per-slot content blob (compact JSON of the Dublin Core fields, body and
    user tags — a faithful round-trip, including int-vs-float stringification)
    plus a packed integer heap holding each annotation's content ontology
    terms and referent entries as ``(referent_slot, term...)`` spans.  Strings
    are interned once in a :class:`StringPool`; the heap stores pool ids.

``ReferentColumns``
    Slot-interned referents: the canonical shared :class:`SubstructureRef`
    (one per unique referent, mutated in place by extent moves), a
    copy-on-write ``to_dict`` payload snapshot (replaced — never mutated — on
    move, so a frozen view keeps reading the pre-move dict), and packed extent
    columns (kind, first-axis bounds, probe domain, type) that the executor's
    probe paths scan without materializing a single object.

Deletes tombstone slots (``live`` byte cleared; heap/blob space becomes
garbage accounted in the dead counters); :meth:`compact` rewrites the heaps
into **new** array objects and swaps them in, so an outstanding frozen view —
a background checkpoint mid-serialization — keeps reading the old ones.

**Copy-on-write freeze**: :meth:`AnnotationColumns.freeze` /
:meth:`ReferentColumns.freeze` copy only the small fixed-width per-slot arrays
(memcpy-fast) and record length caps into the append-only heaps and pools,
which concurrent writers only ever append to.  The frozen view is therefore an
exact image of the store at freeze time, built in O(slots) pointer copies
under the write lock, readable lock-free afterwards.
"""

from __future__ import annotations

import json
from array import array
from typing import Any, Iterator

from repro.core.annotation import Annotation, AnnotationContent, Referent
from repro.analysis.annotations import requires_write_lock
from repro.core.dublin_core import DC_ELEMENTS, DublinCore
from repro.errors import AnnotationError

#: Defaults a sparse content blob omits; decode restores them.
_DC_DEFAULTS = {name: getattr(DublinCore(), name) for name in DC_ELEMENTS}

#: Extent kinds in the packed referent columns.
EXTENT_NONE, EXTENT_INTERVAL, EXTENT_RECT = 0, 1, 2


class StringPool:
    """Interned strings; the heaps store small ints instead of pointers.

    Append-only: ids are stable for the pool's lifetime, which is what lets a
    frozen column view share the pool with concurrent writers by recording
    nothing more than a length cap.
    """

    __slots__ = ("_strings", "_ids", "_bytes")

    def __init__(self) -> None:
        self._strings: list[str] = [""]
        self._ids: dict[str, int] = {"": 0}
        self._bytes = 0

    def intern(self, value: str) -> int:
        ref = self._ids.get(value)
        if ref is None:
            ref = len(self._strings)
            self._strings.append(value)
            self._ids[value] = ref
            self._bytes += len(value)
        return ref

    def lookup(self, value: str) -> int | None:
        """The id of *value* if already interned (probes use this: a domain
        never interned cannot match any packed column)."""
        return self._ids.get(value)

    def get(self, ref: int) -> str:
        return self._strings[ref]

    def __len__(self) -> int:
        return len(self._strings)

    @property
    def heap_bytes(self) -> int:
        return self._bytes


def encode_content(content: AnnotationContent) -> str:
    """Compact JSON blob of an annotation's content (minus ontology terms,
    which live in the packed heap).  Only non-default Dublin Core fields are
    written; decode restores the defaults."""
    dc: dict[str, Any] = {}
    dublin_core = content.dublin_core
    for name in DC_ELEMENTS:
        value = getattr(dublin_core, name)
        if value != _DC_DEFAULTS[name]:
            dc[name] = value
    payload: dict[str, Any] = {}
    if dc:
        payload["dc"] = dc
    if content.body:
        payload["b"] = content.body
    if content.user_tags:
        payload["t"] = dict(content.user_tags)
    return json.dumps(payload, separators=(",", ":"))


def decode_content(blob: str, ontology_terms: list[str]) -> AnnotationContent:
    """Rebuild an :class:`AnnotationContent` from its blob + heap terms."""
    data = json.loads(blob)
    return AnnotationContent(
        dublin_core=DublinCore.from_dict(data.get("dc", {})),
        body=data.get("b", ""),
        ontology_terms=ontology_terms,
        user_tags=dict(data.get("t", {})),
    )


class ReferentColumns:
    """Slot-interned referent storage behind the substructure store."""

    def __init__(self, pool: StringPool | None = None):
        self.pool = pool if pool is not None else StringPool()
        self._slot_of: dict[str, int] = {}
        self._id_at: list[str | None] = []
        self._free: list[int] = []
        #: Canonical Referent per slot — ONE object per unique referent,
        #: whatever the number of annotations sharing it.  Extent moves
        #: mutate its ``ref`` in place, so every materialized row view
        #: sharing the object sees the move without a sync pass.
        self._view: list[Referent | None] = []
        #: Copy-on-write ``ref.to_dict()`` snapshot per slot.  REPLACED (a
        #: fresh dict) on every move; a frozen view holding the list copy
        #: keeps the pre-move dict.
        self._payload: list[dict[str, Any] | None] = []
        # Packed scan columns (the probe fast path).
        self._kind = array("b")
        self._type_ref = array("q")
        self._domain_ref = array("q")  # interval domain / rect space, with object_id fallback
        self._lo0 = array("d")
        self._hi0 = array("d")
        self._rect_off = array("q")
        self._rect_dim = array("b")
        self._rect_heap = array("d")  # lo dims then hi dims per rect slot
        self._rect_dead = 0

    # -- slot management -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, referent_id: str) -> bool:
        return referent_id in self._slot_of

    def slot_of(self, referent_id: str) -> int:
        return self._slot_of[referent_id]

    def id_at(self, slot: int) -> str | None:
        return self._id_at[slot]

    def referent_ids(self) -> Iterator[str]:
        return iter(self._slot_of)

    def _grow(self) -> int:
        slot = len(self._id_at)
        self._id_at.append(None)
        self._view.append(None)
        self._payload.append(None)
        self._kind.append(EXTENT_NONE)
        self._type_ref.append(0)
        self._domain_ref.append(0)
        self._lo0.append(0.0)
        self._hi0.append(0.0)
        self._rect_off.append(0)
        self._rect_dim.append(0)
        return slot

    @requires_write_lock
    def add(self, referent: Referent) -> int:
        """Store *referent* (first copy wins, like the store always did) and
        return its slot."""
        referent_id = referent.referent_id
        existing = self._slot_of.get(referent_id)
        if existing is not None:
            return existing
        slot = self._free.pop() if self._free else self._grow()
        self._slot_of[referent_id] = slot
        self._id_at[slot] = referent_id
        self._view[slot] = referent
        self.refresh(slot)
        return slot

    @requires_write_lock
    def discard(self, referent_id: str) -> int | None:
        slot = self._slot_of.pop(referent_id, None)
        if slot is None:
            return None
        if self._kind[slot] == EXTENT_RECT:
            self._rect_dead += 2 * self._rect_dim[slot]
        self._id_at[slot] = None
        self._view[slot] = None
        self._payload[slot] = None
        self._kind[slot] = EXTENT_NONE
        self._free.append(slot)
        return slot

    def view(self, referent_id: str) -> Referent | None:
        slot = self._slot_of.get(referent_id)
        return None if slot is None else self._view[slot]

    def view_at(self, slot: int) -> Referent | None:
        return self._view[slot]

    def payload_at(self, slot: int) -> dict[str, Any] | None:
        return self._payload[slot]

    @requires_write_lock
    def refresh(self, slot: int) -> None:
        """Re-derive the payload snapshot + packed columns from the canonical
        referent at *slot* (called after an extent move)."""
        referent = self._view[slot]
        if referent is None:
            return
        ref = referent.ref
        self._payload[slot] = ref.to_dict()
        self._type_ref[slot] = self.pool.intern(ref.data_type.value)
        if ref.interval is not None:
            interval = ref.interval
            self._kind[slot] = EXTENT_INTERVAL
            self._domain_ref[slot] = self.pool.intern(interval.domain or ref.object_id)
            self._lo0[slot] = float(interval.start)
            self._hi0[slot] = float(interval.end)
        elif ref.rect is not None:
            rect = ref.rect
            dim = len(rect.lo)
            if self._kind[slot] == EXTENT_RECT:
                self._rect_dead += 2 * self._rect_dim[slot]
            self._kind[slot] = EXTENT_RECT
            self._domain_ref[slot] = self.pool.intern(rect.space or ref.object_id)
            self._lo0[slot] = float(rect.lo[0])
            self._hi0[slot] = float(rect.hi[0])
            self._rect_off[slot] = len(self._rect_heap)
            self._rect_dim[slot] = dim
            self._rect_heap.extend(float(value) for value in rect.lo)
            self._rect_heap.extend(float(value) for value in rect.hi)
        else:
            self._kind[slot] = EXTENT_NONE
            self._domain_ref[slot] = 0

    # -- packed probes ---------------------------------------------------------

    def type_value(self, slot: int) -> str:
        return self.pool.get(self._type_ref[slot])

    def interval_overlaps(self, slot: int, domain_ref: int, start: float, end: float) -> bool:
        return (
            self._kind[slot] == EXTENT_INTERVAL
            and self._domain_ref[slot] == domain_ref
            and self._lo0[slot] <= end
            and self._hi0[slot] >= start
        )

    def rect_overlaps(self, slot: int, space_ref: int, lo, hi) -> bool:
        if self._kind[slot] != EXTENT_RECT or self._domain_ref[slot] != space_ref:
            return False
        dim = self._rect_dim[slot]
        if dim != len(lo):
            return False
        off = self._rect_off[slot]
        heap = self._rect_heap
        for axis in range(dim):
            if heap[off + axis] > hi[axis] or heap[off + dim + axis] < lo[axis]:
                return False
        return True

    # -- lifecycle -------------------------------------------------------------

    def freeze(self) -> "FrozenReferents":
        return FrozenReferents(list(self._id_at), list(self._payload))

    @requires_write_lock
    def compact(self) -> None:
        """Rewrite the rect heap dropping dead spans (new array, swapped in)."""
        new_heap = array("d")
        for slot, kind in enumerate(self._kind):
            if kind != EXTENT_RECT or self._id_at[slot] is None:
                continue
            dim = self._rect_dim[slot]
            off = self._rect_off[slot]
            self._rect_off[slot] = len(new_heap)
            new_heap.extend(self._rect_heap[off:off + 2 * dim])
        self._rect_heap = new_heap
        self._rect_dead = 0

    def storage_stats(self) -> dict[str, int]:
        allocated = len(self._id_at)
        live = len(self._slot_of)
        return {
            "live_slots": live,
            "tombstone_slots": allocated - live,
            "rect_heap_floats": len(self._rect_heap),
            "rect_heap_dead_floats": self._rect_dead,
        }


class FrozenReferents:
    """Point-in-time referent view for a background snapshot."""

    __slots__ = ("id_at", "payload")

    def __init__(self, id_at: list[str | None], payload: list[dict[str, Any] | None]):
        self.id_at = id_at
        self.payload = payload


class AnnotationColumns:
    """Per-annotation content blobs + packed term/referent spans.

    Slots are assigned by the manager's :class:`AnnotationIdSpace`; this class
    only grows its columns to cover whatever slot it is asked to store.

    Heap span layout per annotation::

        [ n_content_terms, term_ref * n,
          n_referents, ( referent_slot, n_terms, term_ref * n ) * n_referents ]
    """

    def __init__(self, pool: StringPool | None = None):
        self.pool = pool if pool is not None else StringPool()
        self._live = bytearray()
        self._blob_ref = array("q")
        self._span_off = array("q")
        self._span_len = array("q")
        self._blob_heap: list[str] = []
        self._heap = array("q")
        self._blob_bytes = 0
        self._dead_blob_bytes = 0
        self._dead_heap_ints = 0

    # -- writes ----------------------------------------------------------------

    def _ensure_slot(self, slot: int) -> None:
        while len(self._live) <= slot:
            self._live.append(0)
            self._blob_ref.append(-1)
            self._span_off.append(0)
            self._span_len.append(0)

    @requires_write_lock
    def store(self, slot: int, annotation: Annotation, referents: "ReferentColumns") -> None:
        """Write (or overwrite) the row for *annotation* at *slot*."""
        self._ensure_slot(slot)
        if self._live[slot]:
            self._account_dead(slot)
        blob = encode_content(annotation.content)
        self._blob_ref[slot] = len(self._blob_heap)
        self._blob_heap.append(blob)
        self._blob_bytes += len(blob)
        pool = self.pool
        span = array("q")
        content_terms = annotation.content.ontology_terms
        span.append(len(content_terms))
        span.extend(pool.intern(term) for term in content_terms)
        rows = annotation.referents
        span.append(len(rows))
        for referent in rows:
            span.append(referents.slot_of(referent.referent_id))
            span.append(len(referent.ontology_terms))
            span.extend(pool.intern(term) for term in referent.ontology_terms)
        self._span_off[slot] = len(self._heap)
        self._span_len[slot] = len(span)
        self._heap.extend(span)
        self._live[slot] = 1

    def _account_dead(self, slot: int) -> None:
        self._dead_heap_ints += self._span_len[slot]
        blob_index = self._blob_ref[slot]
        if blob_index >= 0:
            self._dead_blob_bytes += len(self._blob_heap[blob_index])

    @requires_write_lock
    def clear(self, slot: int) -> None:
        """Tombstone the row at *slot* (space reclaimed by :meth:`compact`)."""
        if slot < len(self._live) and self._live[slot]:
            self._account_dead(slot)
            self._live[slot] = 0

    # -- reads -----------------------------------------------------------------

    def is_live(self, slot: int) -> bool:
        return slot < len(self._live) and bool(self._live[slot])

    def live_count(self) -> int:
        return sum(self._live)

    def blob(self, slot: int) -> str:
        return self._blob_heap[self._blob_ref[slot]]

    def content_terms(self, slot: int) -> list[str]:
        heap, pool = self._heap, self.pool
        off = self._span_off[slot]
        count = heap[off]
        return [pool.get(heap[off + 1 + index]) for index in range(count)]

    def referent_entries(self, slot: int) -> list[tuple[int, list[str]]]:
        """``(referent_slot, ontology_terms)`` per referent, in commit order."""
        heap, pool = self._heap, self.pool
        cursor = self._span_off[slot]
        cursor += 1 + heap[cursor]  # skip content terms
        count = heap[cursor]
        cursor += 1
        entries: list[tuple[int, list[str]]] = []
        for _ in range(count):
            rslot = heap[cursor]
            n_terms = heap[cursor + 1]
            cursor += 2
            entries.append((rslot, [pool.get(heap[cursor + i]) for i in range(n_terms)]))
            cursor += n_terms
        return entries

    def referent_slots(self, slot: int) -> list[int]:
        heap = self._heap
        cursor = self._span_off[slot]
        cursor += 1 + heap[cursor]
        count = heap[cursor]
        cursor += 1
        slots: list[int] = []
        for _ in range(count):
            slots.append(heap[cursor])
            cursor += 2 + heap[cursor + 1]
        return slots

    def stat_row(self, slot: int, referents: "ReferentColumns") -> tuple[set[str], set[str]]:
        """``(data_type values, all ontology terms)`` — the statistics
        catalogue's per-annotation inputs, read without materializing."""
        heap, pool = self._heap, self.pool
        off = self._span_off[slot]
        n_content = heap[off]
        terms = {pool.get(heap[off + 1 + index]) for index in range(n_content)}
        cursor = off + 1 + n_content
        count = heap[cursor]
        cursor += 1
        types: set[str] = set()
        for _ in range(count):
            rslot = heap[cursor]
            n_terms = heap[cursor + 1]
            cursor += 2
            types.add(referents.type_value(rslot))
            terms.update(pool.get(heap[cursor + i]) for i in range(n_terms))
            cursor += n_terms
        return types, terms

    def materialize(
        self, annotation_id: str, slot: int, referents: "ReferentColumns"
    ) -> Annotation:
        """Build a full :class:`Annotation` row view from the columns.

        Referent rows wrap the canonical shared ``SubstructureRef`` object —
        extent moves are visible to every previously materialized view — but
        carry this annotation's OWN ontology terms (per-annotation semantics
        the store's first-copy-wins rule would otherwise lose).
        """
        if not self.is_live(slot):
            raise AnnotationError(f"no annotation {annotation_id!r}")
        content = decode_content(self.blob(slot), self.content_terms(slot))
        annotation = Annotation(annotation_id, content)
        rows = annotation._referents  # noqa: SLF001 - row-view construction
        for rslot, terms in self.referent_entries(slot):
            canonical = referents.view_at(rslot)
            if canonical is None:
                continue  # referent swept by delete_object's defensive pass
            rows.append(
                Referent(ref=canonical.ref, ontology_terms=terms, referent_id=canonical.referent_id)
            )
        return annotation

    # -- lifecycle -------------------------------------------------------------

    def freeze(self) -> "FrozenAnnotations":
        return FrozenAnnotations(
            live=bytes(self._live),
            blob_ref=array("q", self._blob_ref),
            span_off=array("q", self._span_off),
            span_len=array("q", self._span_len),
            blob_heap=self._blob_heap,
            blob_cap=len(self._blob_heap),
            heap=self._heap,
            heap_cap=len(self._heap),
            pool=self.pool,
            pool_cap=len(self.pool),
        )

    @requires_write_lock
    def compact(self) -> dict[str, int]:
        """Rewrite the heaps keeping only live rows; returns bytes reclaimed.

        Builds NEW heap objects and swaps them in — an outstanding frozen
        view (a background checkpoint mid-serialization) keeps reading the
        old objects untouched.  Slots are NOT renumbered: they belong to the
        id space, not to this store.
        """
        reclaimed_bytes = self._dead_blob_bytes
        reclaimed_ints = self._dead_heap_ints
        new_heap = array("q")
        new_blobs: list[str] = []
        new_bytes = 0
        for slot, live in enumerate(self._live):
            if not live:
                continue
            off = self._span_off[slot]
            length = self._span_len[slot]
            self._span_off[slot] = len(new_heap)
            new_heap.extend(self._heap[off:off + length])
            blob = self._blob_heap[self._blob_ref[slot]]
            self._blob_ref[slot] = len(new_blobs)
            new_blobs.append(blob)
            new_bytes += len(blob)
        self._heap = new_heap
        self._blob_heap = new_blobs
        self._blob_bytes = new_bytes
        self._dead_blob_bytes = 0
        self._dead_heap_ints = 0
        return {"reclaimed_blob_bytes": reclaimed_bytes, "reclaimed_heap_ints": reclaimed_ints}

    def storage_stats(self) -> dict[str, int]:
        allocated = len(self._live)
        live = self.live_count()
        approx_bytes = (
            self._blob_bytes
            + 8 * len(self._heap)
            + 8 * (len(self._blob_ref) + len(self._span_off) + len(self._span_len))
            + allocated
            + self.pool.heap_bytes
        )
        return {
            "live_slots": live,
            "tombstone_slots": allocated - live,
            "heap_ints": len(self._heap),
            "heap_dead_ints": self._dead_heap_ints,
            "blob_bytes": self._blob_bytes,
            "blob_dead_bytes": self._dead_blob_bytes,
            "pool_strings": len(self.pool),
            "approx_bytes": approx_bytes,
        }


class FrozenAnnotations:
    """Copy-on-write annotation-column view for a background snapshot.

    Holds copies of the fixed-width per-slot arrays and caps into the shared
    append-only heaps; read methods mirror :class:`AnnotationColumns` but are
    safe against concurrent writers, who only append past the caps (compaction
    swaps in new heap objects, leaving these references intact).
    """

    __slots__ = (
        "live", "blob_ref", "span_off", "span_len",
        "blob_heap", "blob_cap", "heap", "heap_cap", "pool", "pool_cap",
    )

    def __init__(self, live, blob_ref, span_off, span_len,
                 blob_heap, blob_cap, heap, heap_cap, pool, pool_cap):
        self.live = live
        self.blob_ref = blob_ref
        self.span_off = span_off
        self.span_len = span_len
        self.blob_heap = blob_heap
        self.blob_cap = blob_cap
        self.heap = heap
        self.heap_cap = heap_cap
        self.pool = pool
        self.pool_cap = pool_cap

    def live_slots(self) -> Iterator[int]:
        for slot, live in enumerate(self.live):
            if live:
                yield slot

    def content_terms(self, slot: int) -> list[str]:
        heap, pool = self.heap, self.pool
        off = self.span_off[slot]
        count = heap[off]
        return [pool.get(heap[off + 1 + index]) for index in range(count)]

    def referent_entries(self, slot: int) -> list[tuple[int, list[str]]]:
        heap, pool = self.heap, self.pool
        cursor = self.span_off[slot]
        cursor += 1 + heap[cursor]
        count = heap[cursor]
        cursor += 1
        entries: list[tuple[int, list[str]]] = []
        for _ in range(count):
            rslot = heap[cursor]
            n_terms = heap[cursor + 1]
            cursor += 2
            entries.append((rslot, [pool.get(heap[cursor + i]) for i in range(n_terms)]))
            cursor += n_terms
        return entries

    def blob(self, slot: int) -> str:
        return self.blob_heap[self.blob_ref[slot]]
