"""The Graphitti core: the annotation model and the manager facade.

This package is the paper's primary contribution.  It defines:

* :mod:`repro.core.dublin_core` -- the Dublin Core metadata used in
  annotation contents,
* :mod:`repro.core.annotation` -- the annotation *content*, the *referents*,
  and the *linker* object that ties content to referents,
* :mod:`repro.core.manager` -- the :class:`Graphitti` facade that registers
  data objects, routes substructure marks to the spatial indexes, stores
  annotation contents in the XML collection, wires the a-graph, and exposes
  the annotate / search / explore workflow the GUI drives in the paper.
"""

from repro.core.dublin_core import DublinCore
from repro.core.annotation import Annotation, AnnotationContent, Referent
from repro.core.manager import Graphitti
from repro.core.admin import Administrator, IntegrityReport
from repro.core.persistence import load_instance, save_instance, snapshot

__all__ = [
    "DublinCore",
    "Annotation",
    "AnnotationContent",
    "Referent",
    "Graphitti",
    "Administrator",
    "IntegrityReport",
    "save_instance",
    "load_instance",
    "snapshot",
]
