"""Network sharded service: the process-per-shard drop-in facade.

:class:`NetworkShardedGraphittiService` subclasses the threaded
:class:`~repro.shard.service.ShardedGraphittiService` and swaps the shard
list from in-process ``GraphittiService`` objects to
:class:`~repro.net.client.ShardClient` RPC proxies — the routing, merging,
manifest and aggregation logic is inherited, so the two topologies cannot
drift apart.  Only the seams that reach *into* a shard's memory are
overridden: membership probes become ``holds`` RPCs, the REFERENTS merge
reads the referent map each worker ships with its result page, and builder
support (``data_object`` / ``resolve_ontology_term``) is served from a
client-side catalog of the objects and ontologies registered through this
facade (objects are replicated to every worker, but native payloads never
cross the wire).

Two worker modes:

* ``"process"`` — each shard is an independent OS process spawned via
  ``repro shard-worker`` (true GIL isolation, crash isolation, SIGKILL
  testing).  Requires a durable *root*.
* ``"thread"``  — each shard is an in-process ``ShardWorkerServer`` on a
  real TCP socket (full wire/retry/timeout semantics without process spawn
  cost; used by the oracle-equivalence and fault-matrix tests).

Robustness contract:

* a :class:`~repro.net.supervisor.HeartbeatMonitor` probes every worker;
  after ``miss_threshold`` consecutive misses the shard is marked dead and
  (``auto_restart=True``) its process is respawned — WAL recovery brings
  back every acknowledged write, and the client re-points to the new port.
* reads against a topology with a dead shard fail fast with
  :class:`~repro.errors.ShardUnavailableError`, or — ``degraded_reads=True``
  — return partial results tagged ``degraded=True`` with the missing shard
  list.  Writes are never degraded.
* write admission is bounded per shard; an overloaded worker answers
  :class:`~repro.errors.BackpressureError` with a retry-after hint.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from repro.core.manager import Graphitti
from repro.errors import (
    GraphittiError,
    ServiceError,
    ShardTimeoutError,
    ShardUnavailableError,
)
from repro.net.client import RetryPolicy, ShardClient
from repro.net.server import ShardWorkerServer
from repro.net.supervisor import HeartbeatMonitor, WorkerHandle
from repro.query.ast import Query, ReturnKind
from repro.query.result import QueryResult
from repro.service.cache import normalize_gql
from repro.service.service import GraphittiService, ServiceConfig
from repro.shard.router import shard_dir_name, shard_namespace
from repro.shard.service import ShardedGraphittiService, resolve_topology


class NetworkShardedGraphittiService(ShardedGraphittiService):
    """Scatter-gather facade over process-per-shard workers on TCP."""

    def __init__(
        self,
        clients: list[ShardClient],
        root: str | Path | None = None,
        catalog: Graphitti | None = None,
        handles: list[WorkerHandle] | None = None,
        servers: list[ShardWorkerServer] | None = None,
        worker_services: list[GraphittiService] | None = None,
        degraded_reads: bool = False,
        heartbeat_interval_s: float = 0.5,
        miss_threshold: int = 3,
        auto_restart: bool = True,
        start_monitor: bool = True,
    ):
        super().__init__(services=clients, root=root)
        # The inherited pool is sized for CPU-bound in-process shards (one
        # worker per shard).  Network scatter tasks BLOCK on sockets, so that
        # sizing serialises concurrent queries; widen it so several callers
        # can have their full fan-out in flight at once.
        self._pool.shutdown(wait=False)
        self._pool = ThreadPoolExecutor(
            max_workers=max(8, 4 * len(clients)), thread_name_prefix="netshard"
        )
        self._catalog = catalog if catalog is not None else Graphitti("graphitti-catalog")
        self._handles = handles
        self._servers = servers
        self._worker_services = worker_services
        self.degraded_reads = bool(degraded_reads)
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.miss_threshold = int(miss_threshold)
        self.auto_restart = bool(auto_restart)
        self._restart_lock = threading.Lock()
        for client in clients:
            client.obs = self.obs
        self.monitor = HeartbeatMonitor(
            clients,
            interval_s=self.heartbeat_interval_s,
            miss_threshold=self.miss_threshold,
            on_dead=self._on_shard_dead,
            obs=self.obs,
        )
        if start_monitor:
            self.monitor.start()

    # -- construction ----------------------------------------------------------

    @classmethod
    def open(
        cls,
        root: str | Path | None,
        shards: int | None = None,
        config: ServiceConfig | None = None,
        name: str = "graphitti",
        worker_mode: str = "process",
        host: str = "127.0.0.1",
        port_base: int | None = None,
        max_inflight: int = 64,
        heartbeat_interval_s: float = 0.5,
        miss_threshold: int = 3,
        degraded_reads: bool = False,
        auto_restart: bool = True,
        start_monitor: bool = True,
        op_timeout_s: float = 30.0,
        retry: RetryPolicy | None = None,
        spawn_timeout_s: float = 60.0,
        worker_env: dict[int, dict[str, str]] | None = None,
    ) -> "NetworkShardedGraphittiService":
        """Open (or recover) a network sharded deployment.

        With a durable *root* the topology resolves exactly like the
        threaded facade (manifest wins, shard directories count, a fresh
        root defaults to 4); ``worker_mode="thread"`` additionally accepts
        ``root=None`` for a purely in-memory deployment.
        """
        if worker_mode not in ("process", "thread"):
            raise ServiceError(f"unknown worker mode {worker_mode!r}")
        if root is None:
            if worker_mode != "thread":
                raise ServiceError("process workers need a durable root directory")
            count = shards if shards is not None else 4
            if count < 1:
                raise ServiceError("a sharded service needs at least one shard")
            manifest = None
        else:
            root = Path(root)
            count, manifest = resolve_topology(root, shards)

        config = config or ServiceConfig()
        handles: list[WorkerHandle] | None = None
        servers: list[ShardWorkerServer] | None = None
        worker_services: list[GraphittiService] | None = None
        recovery: list[dict[str, Any] | None] = []
        addresses: list[tuple[str, int]] = []

        if worker_mode == "process":
            handles = []
            for index in range(count):
                handles.append(
                    WorkerHandle(
                        Path(root) / shard_dir_name(index),
                        index,
                        config=config,
                        host=host,
                        port=(port_base + index) if port_base else 0,
                        max_inflight=max_inflight,
                        spawn_timeout_s=spawn_timeout_s,
                        env=(worker_env or {}).get(index),
                    )
                )
            # Launch every process before waiting on any announce file, so
            # worker startup (interpreter + recovery) overlaps across shards.
            for handle in handles:
                handle.launch()
            for handle in handles:
                announce = handle.await_announce()
                addresses.append((announce["host"], announce["port"]))
                recovery.append(announce.get("recovery"))
        else:
            servers = []
            worker_services = []
            for index in range(count):
                namespace = shard_namespace(index)
                factory = lambda namespace=namespace: Graphitti(  # noqa: E731
                    f"{name}-{namespace}", id_namespace=namespace
                )
                if root is not None:
                    service = GraphittiService.open(
                        Path(root) / shard_dir_name(index), config=config, manager_factory=factory
                    )
                    service.manager.id_namespace = namespace
                else:
                    service = GraphittiService(manager=factory(), config=config)
                server = ShardWorkerServer(
                    service,
                    index,
                    host=host,
                    port=(port_base + index) if port_base else 0,
                    max_inflight=max_inflight,
                )
                addresses.append(server.start())
                worker_services.append(service)
                servers.append(server)
                recovery.append(service.recovery_info)

        clients = [
            ShardClient(
                index,
                address[0],
                address[1],
                config=config,
                op_timeout_s=op_timeout_s,
                retry=retry,
            )
            for index, address in enumerate(addresses)
        ]
        instance = cls(
            clients,
            root=root,
            catalog=Graphitti(f"{name}-catalog"),
            handles=handles,
            servers=servers,
            worker_services=worker_services,
            degraded_reads=degraded_reads,
            heartbeat_interval_s=heartbeat_interval_s,
            miss_threshold=miss_threshold,
            auto_restart=auto_restart,
            start_monitor=start_monitor,
        )
        if any(info is not None for info in recovery):
            instance._recovery_info = {
                "shards": count,
                "replayed": sum((info or {}).get("replayed", 0) for info in recovery),
                "skipped": sum((info or {}).get("skipped", 0) for info in recovery),
                "torn_tails": sum(1 for info in recovery if (info or {}).get("torn_tail")),
                "per_shard": recovery,
            }
        if root is not None and manifest is None:
            instance._write_manifest()
        elif manifest is not None:
            instance._checkpoints = int(manifest.get("checkpoints", 0))
        return instance

    # -- supervision -----------------------------------------------------------

    def _on_shard_dead(self, index: int) -> None:
        if self.auto_restart:
            try:
                self.restart_shard(index)
            except GraphittiError:  # pragma: no cover - restart race
                pass

    def restart_shard(self, index: int) -> None:
        """Respawn a dead worker and re-point its client.

        Process mode SIGKILLs any straggler and re-runs WAL recovery in the
        fresh process; thread mode re-serves the same (still live) service on
        a new listener.  Counted as ``net.worker_restarts``.
        """
        with self._restart_lock:
            client = self._shards[index]
            if self._handles is not None:
                announce = self._handles[index].restart()
                client.update_address(announce["host"], announce["port"])
            elif self._servers is not None:
                self._servers[index].stop()
                server = ShardWorkerServer(
                    self._servers[index].service,
                    index,
                    host=client.host,
                    port=0,
                    max_inflight=self._servers[index].max_inflight,
                )
                host, port = server.start()
                self._servers[index] = server
                client.update_address(host, port)
            else:  # pragma: no cover - constructed without workers
                raise ServiceError(f"no worker to restart for shard {index}")
            client.mark_alive()
            self.monitor.misses[index] = 0
            self.obs.count("net.worker_restarts")

    def kill_shard(self, index: int) -> None:
        """SIGKILL shard *index*'s worker (crash-testing hook)."""
        if self._handles is not None:
            self._handles[index].kill()
        elif self._servers is not None:
            self._servers[index].stop()

    def network_status(self) -> dict[str, Any]:
        """Topology + liveness: one row per worker, plus detector config."""
        workers = []
        for index, client in enumerate(self._shards):
            row: dict[str, Any] = {
                "shard": index,
                "host": client.host,
                "port": client.port,
                "dead": client.dead,
                "heartbeat_misses": self.monitor.misses[index],
            }
            if self._handles is not None:
                row["pid"] = self._handles[index].pid
                row["alive"] = self._handles[index].alive()
            workers.append(row)
        return {
            "mode": "process" if self._handles is not None else "thread",
            "shards": len(self._shards),
            "degraded_reads": self.degraded_reads,
            "heartbeat": {
                "interval_s": self.heartbeat_interval_s,
                "miss_threshold": self.miss_threshold,
                "auto_restart": self.auto_restart,
            },
            "workers": workers,
        }

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Stop the monitor, land the manifest, stop workers, free the pool."""
        if self._closed:
            return
        self.monitor.stop()
        if self._root is not None:
            try:
                self._write_manifest()
            except GraphittiError:  # pragma: no cover - dead shard at close
                pass
        for client in self._shards:
            try:
                client.shutdown()
            except GraphittiError:  # pragma: no cover - already gone
                pass
        if self._handles is not None:
            for handle in self._handles:
                handle.terminate()
        if self._servers is not None:
            for server in self._servers:
                server.stop()
        if self._worker_services is not None:
            for service in self._worker_services:
                service.close()
        for client in self._shards:
            client.close_pool()
        self._pool.shutdown(wait=True)
        self._closed = True

    def _shard_wal_seq(self, shard: Any) -> int:
        try:
            return super()._shard_wal_seq(shard)
        except GraphittiError:  # dead worker at manifest time: record unknown
            return 0

    # -- overridden shard-memory seams ----------------------------------------

    def _shard_holds(self, index: int, annotation_id: str) -> bool:
        return self._shards[index].holds(annotation_id)

    def _annotation_referents(self, index: int, annotation_id: str, result: QueryResult):
        shipped = getattr(result, "_net_referents_by_annotation", None) or {}
        return shipped.get(annotation_id, ())

    # -- builder support (client-side catalog) ---------------------------------

    def register(self, obj, raw: bytes | None = None, **metadata: Any):
        """Register locally (native object, so builders can mark it) and
        broadcast the catalogue record to every worker."""
        self._catalog.register(obj, raw=raw, **metadata)
        self._scatter(lambda shard: shard.register(obj, raw=raw, **metadata))
        return obj

    def register_ontology(self, ontology, cache: bool = True):
        ops = self._catalog.register_ontology(ontology, cache=cache)
        self._scatter(lambda shard: shard.register_ontology(ontology, cache=cache))
        return ops

    def data_object(self, object_id: str):
        try:
            return self._catalog.data_object(object_id)
        except GraphittiError:
            # Reopened root: the native object never existed client-side.
            # Workers hold the catalogue entry (same contract as recovery).
            return self._shards[0].data_object(object_id)

    def resolve_ontology_term(self, text: str) -> str:
        if self._catalog.ontologies():
            return self._catalog.resolve_ontology_term(text)
        return self._shards[0].resolve_ontology_term(text)

    # -- read path (degraded-aware scatter) ------------------------------------

    def query(self, text_or_query: str | Query) -> QueryResult:
        if isinstance(text_or_query, Query):
            raise ServiceError(
                "the network sharded service scatters GQL text; "
                "pre-built Query objects cannot cross the wire"
            )
        obs = self.obs
        if not obs.enabled:
            return_kind, limit = self._query_shape(text_or_query)
            results, missing = self._collect_query(
                [
                    self._pool.submit(self._shards[index].query, text_or_query)
                    for index in range(len(self._shards))
                ]
            )
            return self._finish_query(return_kind, limit, results, missing)
        with obs.span("query") as root:
            with obs.span("parse"):
                return_kind, limit = self._query_shape(text_or_query)
            with obs.span("scatter") as scatter:
                futures = [
                    self._pool.submit(self._traced_shard_query, index, text_or_query, scatter)
                    for index in range(len(self._shards))
                ]
                results, missing = self._collect_query(futures)
            with obs.span("merge") as merge_span:
                merged = self._finish_query(return_kind, limit, results, missing)
                merge_span.set("rows", merged.count)
        if obs.is_slow(root):
            root.set("gql", normalize_gql(text_or_query))
            explain = None
            if not missing:
                try:
                    explain = self.explain(text_or_query)
                except GraphittiError:  # pragma: no cover - shard died mid-op
                    explain = None
            obs.record_slow("query", root, explain=explain)
        return merged

    def _collect_query(self, futures) -> tuple[list[QueryResult | None], list[int]]:
        results: list[QueryResult | None] = []
        missing: list[int] = []
        self._last_scatter_causes: list[GraphittiError] = []
        for index, future in enumerate(futures):
            try:
                results.append(future.result())
            except (ShardUnavailableError, ShardTimeoutError) as exc:
                results.append(None)
                missing.append(index)
                self._last_scatter_causes.append(exc)
        return results, missing

    def _finish_query(
        self,
        return_kind: ReturnKind,
        limit: int | None,
        results: list[QueryResult | None],
        missing: list[int],
    ) -> QueryResult:
        if missing:
            if not self.degraded_reads or len(missing) == len(self._shards):
                causes = getattr(self, "_last_scatter_causes", [])
                if causes and all(isinstance(exc, ShardTimeoutError) for exc in causes):
                    # Pure deadline misses keep their type — the same signal
                    # the threaded scatter deadline raises.
                    raise ShardTimeoutError(
                        f"shard(s) {missing} missed the query deadline"
                    ) from causes[0]
                raise ShardUnavailableError(
                    f"shard(s) {missing} unavailable for query "
                    f"(degraded reads {'exhausted' if self.degraded_reads else 'disabled'})",
                    shards=tuple(missing),
                )
            self.obs.count("query.degraded")
        merged = self._merge_results(return_kind, limit, results)
        if missing:
            merged.degraded = True
            merged.missing_shards = list(missing)
        return merged

    # -- aggregation extras ----------------------------------------------------

    def statistics(self) -> dict[str, Any]:
        stats = super().statistics()
        stats["network"] = self.network_status()
        return stats
