"""Process-per-shard network serving.

``repro.net`` promotes the shards of :class:`repro.shard.ShardedGraphittiService`
from threads in one process to independent OS worker processes behind a
length-framed JSON protocol over TCP:

- :mod:`repro.net.wire` — the framing codec (4-byte length prefix + JSON
  body) and a streaming decoder that tolerates arbitrary chunk boundaries.
- :mod:`repro.net.server` — ``ShardWorkerServer``, one per worker process,
  wrapping a per-shard :class:`repro.service.GraphittiService` with
  idempotency-keyed mutation dedup and a bounded write-admission window.
- :mod:`repro.net.client` — ``ShardClient``, a connection-pooled RPC proxy
  with per-op timeouts, capped exponential backoff with jitter, and
  idempotency keys so a retried commit never double-applies.
- :mod:`repro.net.supervisor` — worker process spawning, announce-file
  discovery, heartbeat-driven dead-shard detection, and automatic restart
  with WAL recovery.
- :mod:`repro.net.facade` — :class:`NetworkShardedGraphittiService`, the
  drop-in, API-compatible replacement for the threaded sharded service.
"""

from repro.errors import (
    BackpressureError,
    ShardTimeoutError,
    ShardUnavailableError,
    WireError,
)
from repro.net.client import RetryPolicy, ShardClient
from repro.net.facade import NetworkShardedGraphittiService
from repro.net.server import ShardWorkerServer, run_worker
from repro.net.supervisor import HeartbeatMonitor, WorkerHandle
from repro.net.wire import FrameDecoder, decode_frames, encode_frame, read_frame, send_frame

__all__ = [
    "BackpressureError",
    "FrameDecoder",
    "HeartbeatMonitor",
    "NetworkShardedGraphittiService",
    "RetryPolicy",
    "ShardClient",
    "ShardTimeoutError",
    "ShardUnavailableError",
    "ShardWorkerServer",
    "WireError",
    "WorkerHandle",
    "decode_frames",
    "encode_frame",
    "read_frame",
    "run_worker",
    "send_frame",
]
