"""Connection-pooled RPC client for one shard worker.

A :class:`ShardClient` is the network twin of a local
:class:`~repro.service.service.GraphittiService`: it exposes the same method
surface (so :class:`~repro.shard.service.ShardedGraphittiService`'s routing
and merging code drives it unchanged) and translates each call into one
framed request/response exchange.

Reliability mechanics, all client-side:

* **per-op timeouts** — every exchange runs under a socket deadline; a slow
  or black-holed worker costs one timeout, not a hung scatter.
* **capped exponential backoff with jitter** — transient failures (refused
  connection, torn frame, timeout, backpressure) retry with
  ``base * 2^attempt`` sleep, capped, jittered to avoid thundering herds;
  a ``BackpressureError`` uses the server's ``retry_after`` hint instead.
* **idempotency keys** — a mutation generates one key *before* the first
  attempt and reuses it on every retry, so the worker can dedup a commit
  whose ack was lost to a torn frame or timeout.  Retrying reads needs no
  key.
* **typed failure** — a dead shard surfaces as
  :class:`~repro.errors.ShardUnavailableError` (fast, without dialing, once
  the supervisor marks the shard dead), a deadline as
  :class:`~repro.errors.ShardTimeoutError`; remote service errors re-raise
  as the same :class:`~repro.errors.GraphittiError` subclass the worker
  raised, found by name in the error hierarchy.

The optional ``fault_hook`` is the deterministic fault-injection seam used
by :meth:`repro.replica.faults.FaultSchedule.install_network`; see
:data:`NET_FAULT_POINTS` there for what each point simulates.
"""

from __future__ import annotations

import random
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.admin import IntegrityReport
from repro.core.annotation import Annotation
from repro.core.persistence import (
    CatalogueObject,
    decode_annotation,
    encode_annotation,
    encode_register,
    encode_update_changes,
)
from repro.datatypes.base import DataType
from repro.errors import (
    BackpressureError,
    GraphittiError,
    ServiceError,
    ShardTimeoutError,
    ShardUnavailableError,
    WireError,
)
from repro.net.codec import decode_query_result
from repro.net.wire import encode_frame, read_frame, send_frame
from repro.obs import Observability
from repro.query.result import QueryResult
from repro.service.service import ServiceConfig


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff shape for transient RPC failures."""

    #: Total attempts per logical call (first try + retries).
    attempts: int = 4
    #: First backoff sleep; doubles each retry.
    base_backoff_s: float = 0.02
    #: Backoff cap — retries never sleep longer than this.
    max_backoff_s: float = 0.5
    #: Jitter fraction: each sleep is scaled by ``1 ± jitter * U(0, 1)``.
    jitter: float = 0.5

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retry *attempt* (1-based), capped and jittered."""
        base = min(self.base_backoff_s * (2 ** (attempt - 1)), self.max_backoff_s)
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


def _error_classes() -> dict[str, type[GraphittiError]]:
    classes: dict[str, type[GraphittiError]] = {}
    stack: list[type[GraphittiError]] = [GraphittiError]
    while stack:
        cls = stack.pop()
        classes[cls.__name__] = cls
        stack.extend(cls.__subclasses__())
    return classes


class ShardClient:
    """RPC proxy for one shard worker, shaped like a ``GraphittiService``."""

    def __init__(
        self,
        shard_index: int,
        host: str,
        port: int,
        config: ServiceConfig | None = None,
        connect_timeout_s: float = 2.0,
        op_timeout_s: float = 30.0,
        retry: RetryPolicy | None = None,
        pool_size: int = 4,
        obs: Observability | None = None,
        rng: random.Random | None = None,
    ):
        self.shard_index = int(shard_index)
        self.host = host
        self.port = int(port)
        self.config = config or ServiceConfig()
        self.connect_timeout_s = float(connect_timeout_s)
        self.op_timeout_s = float(op_timeout_s)
        self.retry = retry or RetryPolicy()
        self.obs = obs if obs is not None else Observability(None)
        #: Deterministic fault seam: ``hook(point, target) -> bool`` — see
        #: :meth:`repro.replica.faults.FaultSchedule.install_network`.
        self.fault_hook: Callable[[str, str | None], bool] | None = None
        self.name = f"shard-{self.shard_index}"
        self._rng = rng or random.Random()
        self._pool: list[socket.socket] = []
        self._pool_size = int(pool_size)
        self._pool_lock = threading.Lock()
        self._dead = False
        self._request_serial = 0
        self._serial_lock = threading.Lock()
        self._errors = _error_classes()

    # -- supervisor hooks ------------------------------------------------------

    @property
    def dead(self) -> bool:
        """True while the supervisor considers this shard down."""
        return self._dead

    def mark_dead(self) -> None:
        """Fail calls fast (no dial, no timeout) until the shard returns."""
        self._dead = True
        self.close_pool()

    def mark_alive(self) -> None:
        self._dead = False

    def update_address(self, host: str, port: int) -> None:
        """Point the client at a restarted worker's new listener."""
        self.host = host
        self.port = int(port)
        self.close_pool()

    def close_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, []
        for sock in pool:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close race
                pass

    def close(self) -> None:
        """Release pooled connections (the worker process outlives us)."""
        self.close_pool()

    # -- transport -------------------------------------------------------------

    def _fires(self, point: str) -> bool:
        return self.fault_hook is not None and bool(self.fault_hook(point, self.name))

    def _next_id(self) -> int:
        with self._serial_lock:
            self._request_serial += 1
            return self._request_serial

    def _dial(self, timeout: float) -> socket.socket:
        if self._fires("net.refused"):
            raise ConnectionRefusedError(  # repro: allow-error-taxonomy - injected fault
                f"injected: connection to {self.name} refused"
            )
        sock = socket.create_connection((self.host, self.port), timeout=self.connect_timeout_s)
        sock.settimeout(timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _checkout(self, timeout: float) -> socket.socket:
        with self._pool_lock:
            if self._pool:
                sock = self._pool.pop()
                sock.settimeout(timeout)
                return sock
        return self._dial(timeout)

    def _checkin(self, sock: socket.socket) -> None:
        with self._pool_lock:
            if not self._dead and len(self._pool) < self._pool_size:
                self._pool.append(sock)
                return
        try:
            sock.close()
        except OSError:  # pragma: no cover - close race
            pass

    def _exchange_once(
        self, op: str, args: dict[str, Any], idem: str | None, timeout: float
    ) -> dict[str, Any]:
        """One request/response exchange.  Any raise discards the connection."""
        sock = self._checkout(timeout)
        try:
            request: dict[str, Any] = {"id": self._next_id(), "op": op, "args": args}
            if idem is not None:
                request["idem"] = idem
            if self._fires("net.tear"):
                # Deliver a torn frame: the worker cannot parse it and drops
                # the connection; the request was never executed.
                frame = encode_frame(request)
                sock.sendall(frame[: max(1, len(frame) // 2)])
                sock.close()
                raise WireError(f"injected: frame to {self.name} torn mid-send")
            if self._fires("net.blackhole"):
                # The request vanishes in the network: never delivered, and
                # the client burns its full read deadline waiting.
                sock.close()
                raise socket.timeout(  # repro: allow-error-taxonomy - injected fault
                    f"injected: request to {self.name} black-holed"
                )
            send_frame(sock, request)
            if self._fires("net.slow"):
                # Slow-loris response: the worker EXECUTED the op but the
                # reply does not arrive within the deadline.  The retry (same
                # idempotency key) must dedup, not double-apply.
                sock.close()
                raise socket.timeout(  # repro: allow-error-taxonomy - injected fault
                    f"injected: response from {self.name} too slow"
                )
            response = read_frame(sock)
        except (socket.timeout, WireError, ConnectionError, OSError):
            try:
                sock.close()
            except OSError:  # pragma: no cover - close race
                pass
            raise
        if response is None:
            self._checkin_or_close(sock, reuse=False)
            raise WireError(f"{self.name} closed the connection before responding")
        self._checkin(sock)
        return response

    def _checkin_or_close(self, sock: socket.socket, reuse: bool) -> None:
        if reuse:
            self._checkin(sock)
        else:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close race
                pass

    # -- call core -------------------------------------------------------------

    def call(
        self,
        op: str,
        args: dict[str, Any] | None = None,
        write: bool = False,
        timeout: float | None = None,
    ) -> Any:
        """Issue one logical RPC with retries; returns the decoded value."""
        if self._dead:
            raise ShardUnavailableError(
                f"{self.name} is marked dead (restarting or unreachable)",
                shards=(self.shard_index,),
            )
        args = args or {}
        idem = uuid.uuid4().hex if write else None
        deadline = timeout if timeout is not None else self.op_timeout_s
        with self.obs.span("rpc.request") as span:
            span.set("shard", self.shard_index)
            span.set("op", op)
            value = self._call_with_retries(op, args, idem, deadline, span)
        if self.obs.enabled:
            # Per-op latency distribution; the generic span.rpc.request
            # histogram is recorded by the tracer on span exit.
            self.obs.observe(f"rpc.client.{op}", span.duration)
        return value

    def _call_with_retries(
        self, op: str, args: dict[str, Any], idem: str | None, deadline: float, span: Any
    ) -> Any:
        obs = self.obs
        last_exc: Exception | None = None
        timed_out = False
        for attempt in range(1, self.retry.attempts + 1):
            if attempt > 1:
                obs.count("rpc.retries")
                if isinstance(last_exc, BackpressureError):
                    time.sleep(min(last_exc.retry_after, self.retry.max_backoff_s))
                else:
                    time.sleep(self.retry.backoff(attempt - 1, self._rng))
            try:
                response = self._exchange_once(op, args, idem, deadline)
            except socket.timeout as exc:
                last_exc, timed_out = exc, True
                obs.count("rpc.timeouts")
                continue
            except (WireError, ConnectionError, OSError) as exc:
                last_exc, timed_out = exc, False
                obs.count("rpc.transport_errors")
                continue
            if response.get("ok"):
                span.set("attempts", attempt)
                return response.get("value")
            error = self._decode_error(response)
            if isinstance(error, BackpressureError):
                last_exc, timed_out = error, False
                obs.count("rpc.backpressure")
                continue
            raise error
        span.set("failed", True)
        if timed_out:
            raise ShardTimeoutError(
                f"{self.name} op {op!r} timed out after {self.retry.attempts} "
                f"attempt(s) with a {deadline}s deadline"
            ) from last_exc
        if isinstance(last_exc, BackpressureError):
            raise last_exc
        raise ShardUnavailableError(
            f"{self.name} unreachable after {self.retry.attempts} attempt(s): {last_exc}",
            shards=(self.shard_index,),
        ) from last_exc

    def _decode_error(self, response: dict[str, Any]) -> GraphittiError:
        name = response.get("error", "ServiceError")
        message = response.get("message", f"{self.name} rpc failed")
        cls = self._errors.get(name, ServiceError)
        if cls is BackpressureError:
            return BackpressureError(message, retry_after=float(response.get("retry_after", 0.05)))
        if cls is ShardUnavailableError:
            return ShardUnavailableError(message, shards=(self.shard_index,))
        try:
            return cls(message)
        except TypeError:  # pragma: no cover - exotic constructor
            return ServiceError(message)

    # -- liveness --------------------------------------------------------------

    def ping(self, timeout: float = 1.0) -> dict[str, Any]:
        """One heartbeat probe — single attempt, no retry, ignores dead-mark."""
        response = self._exchange_once("ping", {}, None, timeout)
        if not response.get("ok"):
            raise self._decode_error(response)
        return response["value"]

    def status(self) -> dict[str, Any]:
        return self.call("status")

    # -- GraphittiService surface ----------------------------------------------

    def register_ontology(self, ontology, cache: bool = True):
        self.call("register_ontology", {"ontology": ontology.to_dict()}, write=True)
        return None

    def register(self, obj, raw: bytes | None = None, **metadata: Any):
        combined = dict(obj.metadata)
        combined.update(metadata)
        self.call("register", {"record": encode_register(obj, combined)}, write=True)
        return obj

    def reserve_annotation_id(self) -> str:
        return self.call("reserve_annotation_id", write=True)

    def commit(self, annotation: Annotation) -> Annotation:
        payload = self.call("commit", {"annotation": encode_annotation(annotation)}, write=True)
        return decode_annotation(payload)

    def bulk_commit(self, annotations: list[Annotation]) -> list[Annotation]:
        payload = self.call(
            "bulk_commit",
            {"annotations": [encode_annotation(annotation) for annotation in annotations]},
            write=True,
        )
        return [decode_annotation(item) for item in payload]

    def delete_annotation(self, annotation_id: str) -> None:
        self.call("delete_annotation", {"annotation_id": annotation_id}, write=True)

    def update_annotation(self, annotation_id: str, changes: dict[str, Any]) -> Annotation:
        payload = self.call(
            "update_annotation",
            {"annotation_id": annotation_id, "changes": encode_update_changes(changes)},
            write=True,
        )
        return decode_annotation(payload)

    def delete_object(self, object_id: str, cascade: bool = True) -> list[str]:
        return self.call("delete_object", {"object_id": object_id, "cascade": cascade}, write=True)

    def annotations_on_object(self, object_id: str) -> list[str]:
        return self.call("annotations_on_object", {"object_id": object_id})

    def query(self, gql: str) -> QueryResult:
        return decode_query_result(self.call("query", {"gql": gql}))

    def explain(self, gql: str) -> dict:
        return self.call("explain", {"gql": gql})

    def annotation(self, annotation_id: str) -> Annotation:
        return decode_annotation(self.call("annotation", {"annotation_id": annotation_id}))

    def holds(self, annotation_id: str) -> bool:
        return bool(self.call("holds", {"annotation_id": annotation_id}))

    def search_by_keyword(self, keyword: str, mode: str = "and") -> list[str]:
        return self.call("search_by_keyword", {"keyword": keyword, "mode": mode})

    def search_by_ontology(self, term: str, **kwargs: Any) -> list[str]:
        return self.call("search_by_ontology", {"term": term, "kwargs": kwargs})

    def related_annotations(self, annotation_id: str) -> list[str]:
        return self.call("related_annotations", {"annotation_id": annotation_id})

    def resolve_ontology_term(self, text: str) -> str:
        return self.call("resolve_ontology_term", {"text": text})

    def data_object(self, object_id: str) -> CatalogueObject:
        record = self.call("data_object", {"object_id": object_id})
        return CatalogueObject(
            record["object_id"],
            DataType(record["data_type"]),
            domain=record.get("domain"),
            description=record.get("description", ""),
            metadata=record.get("metadata"),
        )

    def check_integrity(self) -> IntegrityReport:
        payload = self.call("check_integrity")
        report = IntegrityReport(
            ok=bool(payload.get("ok", True)),
            errors=list(payload.get("errors", [])),
            warnings=list(payload.get("warnings", [])),
            checks_run=int(payload.get("checks_run", 0)),
        )
        return report

    @property
    def annotation_count(self) -> int:
        return int(self.call("annotation_count"))

    @property
    def last_wal_seq(self) -> int:
        return int(self.call("status")["last_wal_seq"])

    @property
    def recovery_info(self) -> dict[str, Any] | None:
        return self.call("status").get("recovery")

    def statistics(self) -> dict[str, Any]:
        return self.call("statistics")

    def metrics(self) -> dict[str, Any]:
        return self.call("metrics")

    def slow_ops(self) -> list[dict[str, Any]]:
        return self.call("slow_ops")

    def checkpoint(self) -> str | None:
        return self.call("checkpoint", write=True)

    def compact(self) -> dict[str, Any]:
        """Compact the worker's column storage; returns its before/after report."""
        return self.call("compact", write=True)

    def shutdown(self) -> None:
        """Ask the worker to checkpoint (per its config) and exit cleanly."""
        try:
            self.call("shutdown", timeout=10.0)
        except (ShardUnavailableError, ShardTimeoutError):
            pass  # already gone — the supervisor escalates to SIGKILL
        self.close_pool()
