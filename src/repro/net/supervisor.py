"""Worker-process supervision: spawn, discover, heartbeat, restart.

A :class:`WorkerHandle` owns one shard worker OS process: it spawns
``python -m repro shard-worker`` against the shard's directory, waits for
the worker's announce file (written only after the listener is bound and
WAL recovery finished), and can kill or respawn it.  Restart re-runs full
recovery — the WAL is the contract that no acknowledged write is lost.

A :class:`HeartbeatMonitor` probes every shard on a fixed interval with a
single-attempt ``ping``.  ``miss_threshold`` consecutive failures declare
the shard dead: its client is marked (so callers fail fast with
``ShardUnavailableError`` instead of burning timeouts), and — when the
supervisor owns the process — the worker is restarted and the client is
re-pointed at the new ephemeral port.  Gauges ``heartbeat.age_s.<shard>``
and counters ``net.heartbeat_misses`` / ``net.worker_restarts`` make the
detector observable.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.errors import ServiceError
from repro.net.server import ANNOUNCE_FILE
from repro.obs import Observability
from repro.service.service import ServiceConfig


class WorkerHandle:
    """One shard worker OS process and its announce-file discovery."""

    def __init__(
        self,
        root: Path,
        shard_index: int,
        config: ServiceConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        spawn_timeout_s: float = 30.0,
        env: dict[str, str] | None = None,
    ):
        self.root = Path(root)
        self.shard_index = int(shard_index)
        self.config = config
        self.host = host
        self.port = int(port)
        self.max_inflight = int(max_inflight)
        self.spawn_timeout_s = float(spawn_timeout_s)
        self.env = dict(env) if env else {}
        self.process: subprocess.Popen | None = None
        self.announce: dict[str, Any] | None = None

    @property
    def announce_path(self) -> Path:
        return self.root / ANNOUNCE_FILE

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def _command(self) -> list[str]:
        command = [
            sys.executable,
            "-m",
            "repro",
            "shard-worker",
            str(self.root),
            "--shard-index",
            str(self.shard_index),
            "--host",
            self.host,
            "--port",
            str(self.port),
            "--max-inflight",
            str(self.max_inflight),
        ]
        config = self.config
        if config is not None:
            command += ["--durability", config.durability]
            command += ["--cache-capacity", str(config.cache_capacity)]
            command += ["--checkpoint-interval", str(config.checkpoint_interval)]
            if not config.observability.enabled:
                command += ["--no-obs"]
        return command

    def launch(self) -> None:
        """Start the worker process without waiting for readiness.

        The stale announce file from a previous incarnation is removed first
        so discovery can never adopt a dead worker's port.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        try:
            self.announce_path.unlink()
        except FileNotFoundError:
            pass
        env = dict(os.environ)
        env["PYTHONPATH"] = _pythonpath()
        env.update(self.env)
        self.process = subprocess.Popen(self._command(), env=env)

    def spawn(self) -> dict[str, Any]:
        """Start the worker and block until its announce file appears."""
        self.launch()
        return self.await_announce()

    def await_announce(self) -> dict[str, Any]:
        deadline = time.monotonic() + self.spawn_timeout_s
        while time.monotonic() < deadline:
            if self.process is not None and self.process.poll() is not None:
                raise ServiceError(
                    f"shard worker {self.shard_index} exited with code "
                    f"{self.process.returncode} before announcing"
                )
            try:
                payload = json.loads(self.announce_path.read_text(encoding="utf-8"))
            except (FileNotFoundError, json.JSONDecodeError):
                time.sleep(0.02)
                continue
            self.announce = payload
            return payload
        raise ServiceError(
            f"shard worker {self.shard_index} did not announce within {self.spawn_timeout_s}s"
        )

    def kill(self) -> None:
        """SIGKILL the worker (crash simulation; no cleanup runs)."""
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10.0)

    def terminate(self, timeout: float = 10.0) -> None:
        """Graceful stop: SIGTERM, then SIGKILL if the worker lingers."""
        if self.process is None:
            return
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                self.process.kill()
                self.process.wait(timeout=timeout)

    def restart(self) -> dict[str, Any]:
        """Replace a dead (or killed) worker; recovery replays its WAL."""
        self.kill()
        return self.spawn()


def _pythonpath() -> str:
    """PYTHONPATH for worker processes: this repro's src dir first."""
    src = str(Path(__file__).resolve().parents[2])
    existing = os.environ.get("PYTHONPATH", "")
    if existing and src not in existing.split(os.pathsep):
        return src + os.pathsep + existing
    return existing or src


class HeartbeatMonitor:
    """Periodic single-attempt pings with miss-threshold dead detection."""

    def __init__(
        self,
        clients: list,
        interval_s: float = 0.5,
        miss_threshold: int = 3,
        on_dead: Callable[[int], None] | None = None,
        obs: Observability | None = None,
    ):
        self.clients = clients
        self.interval_s = float(interval_s)
        self.miss_threshold = int(miss_threshold)
        self.on_dead = on_dead
        self.obs = obs if obs is not None else Observability(None)
        self.misses = [0] * len(clients)
        self.last_seen = [time.monotonic()] * len(clients)
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def start(self) -> None:
        self._thread = threading.Thread(target=self._run, name="shard-heartbeat", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval_s * 4 + 2.0)
            self._thread = None

    def probe_all(self) -> None:
        """One synchronous heartbeat round (tests drive this directly)."""
        for index, client in enumerate(self.clients):
            self._probe(index, client)

    def _probe(self, index: int, client) -> None:
        obs = self.obs
        try:
            client.ping(timeout=max(0.1, self.interval_s))
        except Exception:
            self.misses[index] += 1
            obs.count("net.heartbeat_misses")
            if self.misses[index] >= self.miss_threshold and not client.dead:
                client.mark_dead()
                obs.count("net.workers_declared_dead")
                if self.on_dead is not None:
                    self.on_dead(index)
        else:
            self.misses[index] = 0
            self.last_seen[index] = time.monotonic()
            if client.dead:
                client.mark_alive()
        if obs.enabled:
            obs.registry.gauge(f"heartbeat.age_s.shard{index}").set(
                round(time.monotonic() - self.last_seen[index], 6)
            )

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.probe_all()
