"""Length-framed JSON wire protocol.

Every message on a shard connection — request, response, heartbeat — is one
*frame*: a 4-byte big-endian unsigned length prefix followed by exactly that
many bytes of UTF-8 JSON.  Framing is the only layer that touches raw bytes;
everything above it deals in dicts.

The streaming :class:`FrameDecoder` makes no assumption about how TCP
chunks the stream: a frame may arrive one byte at a time, many frames may
arrive in one ``recv``, and a frame boundary may fall anywhere, including
inside the length prefix.  A connection that closes mid-frame surfaces as
:class:`~repro.errors.WireError` — the caller cannot know whether the peer
acted on the request, which is exactly why mutations carry idempotency keys.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Iterator

from repro.errors import WireError

#: Length-prefix layout: one unsigned 32-bit big-endian integer.
_HEADER = struct.Struct(">I")
HEADER_SIZE = _HEADER.size

#: Upper bound on a single frame body.  Large enough for any realistic
#: bulk-commit batch or query page, small enough that a corrupted length
#: prefix cannot make a peer buffer gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(message: dict[str, Any]) -> bytes:
    """Serialise *message* to one length-prefixed frame."""
    try:
        body = json.dumps(message, separators=(",", ":"), sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireError(f"message is not JSON-serialisable: {exc}") from exc
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame body of {len(body)} bytes exceeds cap {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental decoder for a stream of length-prefixed frames.

    Feed it whatever byte chunks the transport produces; it yields complete
    messages as they become available and buffers partial frames across
    calls.  ``close()`` asserts the stream ended on a frame boundary.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[dict[str, Any]]:
        """Absorb *chunk* and return every frame it completed, in order."""
        self._buffer.extend(chunk)
        messages: list[dict[str, Any]] = []
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise WireError(f"frame length {length} exceeds cap {MAX_FRAME_BYTES}")
            if len(self._buffer) < HEADER_SIZE + length:
                return messages
            body = bytes(self._buffer[HEADER_SIZE : HEADER_SIZE + length])
            del self._buffer[: HEADER_SIZE + length]
            messages.append(_decode_body(body))

    def close(self) -> None:
        """Declare end-of-stream; a buffered partial frame is a torn frame."""
        if self._buffer:
            raise WireError(f"stream closed mid-frame with {len(self._buffer)} buffered bytes")


def _decode_body(body: bytes) -> dict[str, Any]:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise WireError(f"frame body must be a JSON object, got {type(message).__name__}")
    return message


def decode_frames(data: bytes) -> Iterator[dict[str, Any]]:
    """Decode a complete byte string into its frames (testing helper)."""
    decoder = FrameDecoder()
    yield from decoder.feed(data)
    decoder.close()


def send_frame(sock: socket.socket, message: dict[str, Any]) -> None:
    """Write one frame to *sock*, raising :class:`WireError` on a dead peer."""
    try:
        sock.sendall(encode_frame(message))
    except (BrokenPipeError, ConnectionResetError, OSError) as exc:
        if isinstance(exc, socket.timeout):
            raise
        raise WireError(f"connection lost while sending frame: {exc}") from exc


def read_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read exactly one frame from *sock*.

    Returns ``None`` on a clean end-of-stream (peer closed between frames).
    A close mid-frame — the torn-frame case — raises :class:`WireError`.
    ``socket.timeout`` propagates so callers can map it to their own typed
    timeout error.
    """
    decoder = FrameDecoder()
    while True:
        try:
            chunk = sock.recv(65536)
        except socket.timeout:
            raise
        except (ConnectionResetError, OSError) as exc:
            raise WireError(f"connection lost while reading frame: {exc}") from exc
        if not chunk:
            if decoder.pending_bytes:
                decoder.close()  # raises WireError with the byte count
            return None
        messages = decoder.feed(chunk)
        if messages:
            if len(messages) > 1 or decoder.pending_bytes:
                raise WireError("peer pipelined frames on a request/response connection")
            return messages[0]
