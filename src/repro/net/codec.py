"""Value codec between service objects and wire-frame JSON.

The wire carries plain JSON, so everything richer — query results, committed
annotations, connection subgraphs, content documents — goes through this
module.  It deliberately reuses the WAL/snapshot record codec from
:mod:`repro.core.persistence` (``encode_annotation``/``decode_annotation``,
``encode_referent``/``decode_referent``, ``encode_register``): the bytes a
worker ships to a client are the same shapes it logs to disk, so one codec
bug cannot hide behind the other.

One fidelity note: :class:`~repro.agraph.multigraph.Edge` attributes are not
part of ``ConnectionSubgraph.to_dict`` and therefore not part of the wire
shape either — merged GRAPH pages compare via ``to_dict`` on both the
threaded and network paths, so the oracle-equivalence contract is unaffected.
"""

from __future__ import annotations

from typing import Any

from repro.agraph.connection import ConnectionSubgraph
from repro.agraph.multigraph import Edge
from repro.core.persistence import decode_referent, encode_referent
from repro.query.ast import ReturnKind
from repro.query.result import QueryResult
from repro.xmlstore.document import XmlDocument


def encode_subgraph(subgraph: ConnectionSubgraph) -> dict[str, Any]:
    """Encode one connection subgraph (``to_dict`` plus type extensions)."""
    payload = subgraph.to_dict()
    if subgraph.type_extensions:
        payload["type_extensions"] = {
            name: {
                "referents": list(extension.get("referents", [])),
                "intersections": [list(item) for item in extension.get("intersections", [])],
            }
            for name, extension in subgraph.type_extensions.items()
        }
    return payload


def decode_subgraph(payload: dict[str, Any]) -> ConnectionSubgraph:
    """Rebuild a :class:`ConnectionSubgraph` from :func:`encode_subgraph`."""
    subgraph = ConnectionSubgraph(
        terminals=tuple(payload.get("terminals", [])),
        nodes=set(payload.get("nodes", [])),
        edges=[
            Edge(edge["source"], edge["target"], edge.get("label", ""))
            for edge in payload.get("edges", [])
        ],
        paths=[list(path) for path in payload.get("paths", [])],
    )
    for name, extension in payload.get("type_extensions", {}).items():
        subgraph.attach_type_extension(
            name, extension.get("referents", []), extension.get("intersections", [])
        )
    return subgraph


def encode_query_result(
    result: QueryResult, referents_by_annotation: dict[str, list[dict[str, Any]]] | None = None
) -> dict[str, Any]:
    """Encode a per-shard :class:`QueryResult` for the wire.

    *referents_by_annotation* rides along for REFERENTS-kind queries: the
    merge on the client side needs each annotation's full referent list to
    rebuild pages in global order, and over the network it cannot reach into
    the worker's manager the way the threaded merge does.
    """
    payload: dict[str, Any] = {
        "return_kind": result.return_kind.value,
        "annotation_ids": list(result.annotation_ids),
        "referents": [encode_referent(referent) for referent in result.referents],
        "subgraphs": [encode_subgraph(subgraph) for subgraph in result.subgraphs],
        "step_details": [dict(detail) for detail in result.step_details],
        "fragments": [
            fragment.to_dict() if fragment is not None else None for fragment in result.fragments
        ],
        "plan_fingerprint": result.plan_fingerprint,
        "degraded": result.degraded,
        "missing_shards": list(result.missing_shards),
    }
    if referents_by_annotation is not None:
        payload["referents_by_annotation"] = referents_by_annotation
    return payload


def decode_query_result(payload: dict[str, Any]) -> QueryResult:
    """Rebuild a :class:`QueryResult` from :func:`encode_query_result`.

    The optional per-annotation referent map is attached as
    ``_net_referents_by_annotation`` (decoded) for the network merge hook.
    """
    result = QueryResult(
        return_kind=ReturnKind(payload["return_kind"]),
        annotation_ids=list(payload.get("annotation_ids", [])),
        referents=[decode_referent(item) for item in payload.get("referents", [])],
        subgraphs=[decode_subgraph(item) for item in payload.get("subgraphs", [])],
        step_details=[dict(detail) for detail in payload.get("step_details", [])],
        fragments=[
            XmlDocument.from_dict(item) if item is not None else None
            for item in payload.get("fragments", [])
        ],
        plan_fingerprint=payload.get("plan_fingerprint", ""),
        degraded=bool(payload.get("degraded", False)),
        missing_shards=list(payload.get("missing_shards", [])),
    )
    if "referents_by_annotation" in payload:
        result._net_referents_by_annotation = {
            annotation_id: [decode_referent(item) for item in items]
            for annotation_id, items in payload["referents_by_annotation"].items()
        }
    return result
