"""Per-shard worker server.

A :class:`ShardWorkerServer` owns one per-shard
:class:`~repro.service.service.GraphittiService` and serves it over the
framed wire protocol: one thread per connection, one request in flight per
connection, dispatch through a flat op table.  Robustness machinery lives
here rather than in the client because the server is the authority:

* **idempotency** — every mutation carries an ``idem`` key; the server keeps
  an LRU of key → response and replays the recorded ack (tagged
  ``replayed``) instead of applying twice.  This is what makes client-side
  retry of a commit safe across torn frames, timeouts and black holes.
* **admission control** — mutations pass a bounded in-flight window; when
  the window is full the server answers ``BackpressureError`` with a
  ``retry_after`` hint instead of queueing unboundedly.
* **attribution** — each request runs under an ``rpc.serve`` span (shard and
  op attributes); service-level spans opened during dispatch nest under it
  via the thread-local span stack, so a slow query in a worker's slow-op log
  is attributable to the exact RPC that caused it.

:func:`run_worker` is the process entrypoint used by ``repro shard-worker``:
it opens (recovers) the shard's service, binds the listener, writes an
announce file the supervisor discovers the port from, and serves until told
to shut down.  The ``REPRO_NET_KILL_AFTER_APPLY`` environment variable arms
the crash window the fault matrix needs: die *after* the Nth WAL append but
*before* acknowledging the client.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable

from repro.core.persistence import (
    CatalogueObject,
    decode_annotation,
    encode_annotation,
    encode_register,
)
from repro.datatypes.base import DataType
from repro.errors import BackpressureError, GraphittiError, ServiceError
from repro.net.codec import encode_query_result
from repro.net.wire import WireError, read_frame, send_frame
from repro.ontology.model import Ontology
from repro.query.ast import ReturnKind
from repro.service.service import GraphittiService, ServiceConfig
from repro.shard.router import shard_namespace

#: Ops that mutate shard state: admission-controlled and idempotency-keyed.
WRITE_OPS = frozenset(
    {
        "commit",
        "bulk_commit",
        "delete_annotation",
        "update_annotation",
        "delete_object",
        "register",
        "register_ontology",
        "reserve_annotation_id",
        "checkpoint",
        "compact",
    }
)

#: Name of the per-shard announce file a worker writes after binding.
ANNOUNCE_FILE = "net.json"


class ShardWorkerServer:
    """Serve one shard's :class:`GraphittiService` over the wire protocol."""

    def __init__(
        self,
        service: GraphittiService,
        shard_index: int,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        idempotency_capacity: int = 4096,
        retry_after_s: float = 0.05,
    ):
        self.service = service
        self.shard_index = int(shard_index)
        self.host = host
        self.port = int(port)
        self.max_inflight = int(max_inflight)
        self.retry_after_s = float(retry_after_s)
        self._idempotency_capacity = int(idempotency_capacity)
        self._idempotent: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._idempotent_lock = threading.Lock()
        self._admission_lock = threading.Lock()
        self._inflight = 0
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopped = threading.Event()
        self._connections: set[socket.socket] = set()
        self._connections_lock = threading.Lock()
        self._handlers = self._build_handlers()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind the listener and serve on a background accept thread.

        Returns the bound ``(host, port)`` — with ``port=0`` the OS picks an
        ephemeral port, which is how restarted workers avoid bind races.
        """
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"shard-worker-{self.shard_index}", daemon=True
        )
        self._accept_thread.start()
        return self.host, self.port

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the server is asked to stop (worker-process main loop)."""
        return self._stopped.wait(timeout)

    def stop(self) -> None:
        """Stop accepting, close every connection, and release the port."""
        self._stopped.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover - close race
                pass
        with self._connections_lock:
            connections = list(self._connections)
            self._connections.clear()
        for sock in connections:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close race
                pass
        if self._accept_thread is not None and self._accept_thread is not threading.current_thread():
            self._accept_thread.join(timeout=2.0)

    # -- connection handling ---------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            with self._connections_lock:
                self._connections.add(sock)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(sock,),
                name=f"shard-worker-{self.shard_index}-conn",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, sock: socket.socket) -> None:
        obs = self.service.obs
        try:
            while not self._stopped.is_set():
                try:
                    message = read_frame(sock)
                except socket.timeout:  # pragma: no cover - no read timeout set
                    break
                except WireError:
                    # Torn frame / garbage: the request is unknowable, so the
                    # only safe move is to drop the connection.  The client's
                    # idempotency key makes its retry safe.
                    obs.count("net.torn_frames")
                    break
                if message is None:
                    break
                response = self._dispatch(message)
                stopping = bool(response.pop("_stop_server", False))
                try:
                    send_frame(sock, response)
                except (WireError, socket.timeout):
                    break
                if stopping:
                    self.stop()
                    break
        finally:
            with self._connections_lock:
                self._connections.discard(sock)
            try:
                sock.close()
            except OSError:  # pragma: no cover - close race
                pass

    # -- dispatch --------------------------------------------------------------

    def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message.get("op")
        args = message.get("args") or {}
        request_id = message.get("id")
        idem = message.get("idem")
        obs = self.service.obs
        obs.count("rpc.requests")
        with obs.span("rpc.serve") as span:
            span.set("shard", self.shard_index)
            span.set("op", op)
            response = self._execute(op, args, idem)
            span.set("ok", response.get("ok", False))
        if op == "shutdown" and response.get("ok"):
            response["_stop_server"] = True
        if obs.enabled:
            obs.observe(f"rpc.serve.{op}", span.duration)
            if obs.is_slow(span):
                # An rpc-level slow entry carries the shard id and the full
                # rpc.serve span (service-level spans are its children), so a
                # fleet-wide slow op is attributable end to end.
                obs.record_slow(f"rpc.{op}", span, shard=self.shard_index)
        response["id"] = request_id
        return response

    def _execute(self, op: str, args: dict[str, Any], idem: str | None) -> dict[str, Any]:
        handler = self._handlers.get(op)
        if handler is None:
            return _error_response(ServiceError(f"unknown rpc op {op!r}"))
        if op not in WRITE_OPS:
            try:
                return {"ok": True, "value": handler(args)}
            except GraphittiError as exc:
                return _error_response(exc)
            except (KeyError, TypeError, ValueError) as exc:
                # Malformed args must answer, not kill the connection thread.
                return _error_response(
                    ServiceError(f"malformed args for rpc op {op!r}: {exc!r}")
                )
        # Mutations: replay a recorded ack for a duplicate idempotency key...
        if idem is not None:
            with self._idempotent_lock:
                cached = self._idempotent.get(idem)
                if cached is not None:
                    self._idempotent.move_to_end(idem)
                    replay = dict(cached)
                    replay["replayed"] = True
                    self.service.obs.count("rpc.idempotent_replays")
                    return replay
        # ... and pass the bounded admission window (never queue unboundedly).
        with self._admission_lock:
            if self._inflight >= self.max_inflight:
                self.service.obs.count("rpc.backpressure")
                return _error_response(
                    BackpressureError(
                        f"shard {self.shard_index} write window full "
                        f"({self.max_inflight} in flight)",
                        retry_after=self.retry_after_s,
                    )
                )
            self._inflight += 1
            self._set_inflight_gauge()
        try:
            try:
                response: dict[str, Any] = {"ok": True, "value": handler(args)}
            except GraphittiError as exc:
                # Deterministic outcome (validation failure, unknown id, ...):
                # record it so a retry replays the same refusal.
                response = _error_response(exc)
            except (KeyError, TypeError, ValueError) as exc:
                # Malformed args are deterministic too: answer (and cache)
                # the refusal instead of killing the connection thread.
                response = _error_response(
                    ServiceError(f"malformed args for rpc op {op!r}: {exc!r}")
                )
        finally:
            with self._admission_lock:
                self._inflight -= 1
                self._set_inflight_gauge()
        if idem is not None:
            with self._idempotent_lock:
                self._idempotent[idem] = dict(response)
                while len(self._idempotent) > self._idempotency_capacity:
                    self._idempotent.popitem(last=False)
        return response

    def _set_inflight_gauge(self) -> None:
        if self.service.obs.enabled:
            self.service.obs.registry.gauge("net.inflight").set(self._inflight)

    # -- op handlers -----------------------------------------------------------

    def _build_handlers(self) -> dict[str, Callable[[dict[str, Any]], Any]]:
        return {
            "ping": self._op_ping,
            "status": self._op_status,
            "query": self._op_query,
            "explain": lambda args: self.service.explain(args["gql"]),
            "commit": self._op_commit,
            "bulk_commit": self._op_bulk_commit,
            "delete_annotation": self._op_delete_annotation,
            "update_annotation": self._op_update_annotation,
            "delete_object": lambda args: self.service.delete_object(
                args["object_id"], cascade=bool(args.get("cascade", True))
            ),
            "register": self._op_register,
            "register_ontology": self._op_register_ontology,
            "reserve_annotation_id": lambda args: self.service.reserve_annotation_id(),
            "annotation": lambda args: encode_annotation(self.service.annotation(args["annotation_id"])),
            "holds": self._op_holds,
            "annotations_on_object": lambda args: self.service.annotations_on_object(args["object_id"]),
            "search_by_keyword": lambda args: self.service.search_by_keyword(
                args["keyword"], mode=args.get("mode", "and")
            ),
            "search_by_ontology": lambda args: self.service.search_by_ontology(
                args["term"], **args.get("kwargs", {})
            ),
            "related_annotations": lambda args: self.service.related_annotations(args["annotation_id"]),
            "resolve_ontology_term": lambda args: self.service.resolve_ontology_term(args["text"]),
            "data_object": self._op_data_object,
            "annotation_count": lambda args: self.service.annotation_count,
            "check_integrity": self._op_check_integrity,
            "statistics": lambda args: self.service.statistics(),
            "metrics": lambda args: self.service.metrics(),
            "slow_ops": self._op_slow_ops,
            "checkpoint": self._op_checkpoint,
            "compact": lambda args: self.service.compact(),
            "shutdown": self._op_shutdown,
        }

    def _op_ping(self, args: dict[str, Any]) -> dict[str, Any]:
        # Deliberately lock-free (GIL-atomic reads): a heartbeat answers even
        # while a long write holds the service lock — it reports process and
        # event-loop liveness, not lock availability.
        return {
            "shard": self.shard_index,
            "pid": os.getpid(),
            "last_wal_seq": self.service.last_wal_seq,
            "annotations": self.service.manager.annotation_count,
            "inflight": self._inflight,
        }

    def _op_status(self, args: dict[str, Any]) -> dict[str, Any]:
        status = self._op_ping(args)
        status["recovery"] = self.service.recovery_info
        return status

    def _op_query(self, args: dict[str, Any]) -> dict[str, Any]:
        result = self.service.query(args["gql"])
        referents_by_annotation = None
        if result.return_kind is ReturnKind.REFERENTS:
            # The client-side merge rebuilds referent pages in global order
            # and cannot reach into this worker's manager the way the
            # threaded merge does — ship each annotation's referent list.
            from repro.core.persistence import encode_referent

            # Materialize straight from the columns (GIL-atomic reads; no
            # row-cache mutation), mirroring the old lock-free dict read.
            manager = self.service.manager
            referents_by_annotation = {}
            for annotation_id in result.annotation_ids:
                slot = manager.idspace.slot(annotation_id)
                if slot is None or not manager.columns.is_live(slot):
                    continue
                holder = manager.columns.materialize(
                    annotation_id, slot, manager.substructures.columns
                )
                referents_by_annotation[annotation_id] = [
                    encode_referent(referent) for referent in holder.referents
                ]
        return encode_query_result(result, referents_by_annotation)

    def _op_commit(self, args: dict[str, Any]) -> dict[str, Any]:
        committed = self.service.commit(decode_annotation(args["annotation"]))
        return encode_annotation(committed)

    def _op_bulk_commit(self, args: dict[str, Any]) -> list[dict[str, Any]]:
        batch = [decode_annotation(item) for item in args["annotations"]]
        return [encode_annotation(annotation) for annotation in self.service.bulk_commit(batch)]

    def _op_delete_annotation(self, args: dict[str, Any]) -> None:
        self.service.delete_annotation(args["annotation_id"])
        return None

    def _op_update_annotation(self, args: dict[str, Any]) -> dict[str, Any]:
        # Changes arrive already codec-shaped (the client runs
        # encode_update_changes); update_annotation accepts that form
        # directly, the same way WAL replay does.
        updated = self.service.update_annotation(args["annotation_id"], args["changes"])
        return encode_annotation(updated)

    def _op_register(self, args: dict[str, Any]) -> None:
        record = args["record"]
        obj = CatalogueObject(
            record["object_id"],
            DataType(record["data_type"]),
            domain=record.get("domain"),
            description=record.get("description", ""),
            metadata=record.get("metadata"),
        )
        self.service.register(obj)
        return None

    def _op_register_ontology(self, args: dict[str, Any]) -> None:
        self.service.register_ontology(Ontology.from_dict(args["ontology"]))
        return None

    def _op_holds(self, args: dict[str, Any]) -> bool:
        return self.service.manager.has_annotation(args["annotation_id"])

    def _op_data_object(self, args: dict[str, Any]) -> dict[str, Any]:
        obj = self.service.data_object(args["object_id"])
        metadata = self.service.manager.object_metadata(args["object_id"])["metadata"]
        return encode_register(obj, metadata)

    def _op_check_integrity(self, args: dict[str, Any]) -> dict[str, Any]:
        report = self.service.check_integrity()
        return {
            "ok": report.ok,
            "errors": list(report.errors),
            "warnings": list(report.warnings),
            "checks_run": report.checks_run,
        }

    def _op_slow_ops(self, args: dict[str, Any]) -> list[dict[str, Any]]:
        entries = []
        for entry in self.service.slow_ops():
            tagged = dict(entry)
            tagged.setdefault("shard", self.shard_index)
            entries.append(tagged)
        return entries

    def _op_checkpoint(self, args: dict[str, Any]) -> str | None:
        path = self.service.checkpoint()
        return str(path) if path is not None else None

    def _op_shutdown(self, args: dict[str, Any]) -> dict[str, Any]:
        # The ack is sent first; _serve_connection sees the dispatch-level
        # marker and stops the server after the reply is on the wire.
        return {"stopping": True}


def _error_response(exc: GraphittiError) -> dict[str, Any]:
    """Map a typed error onto the wire so the client re-raises the same class."""
    response: dict[str, Any] = {
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, BackpressureError):
        response["retry_after"] = exc.retry_after
    return response


def _install_kill_after_apply(service: GraphittiService) -> None:
    """Arm the SIGKILL-between-apply-and-ack fault window from the environment.

    With ``REPRO_NET_KILL_AFTER_APPLY=n`` the worker dies abruptly
    (``os._exit``) right after its *n*-th WAL append in this process — the
    record is durable, the client was never acknowledged.  Recovery must
    surface the write; the client's retry must not double-apply it.
    """
    raw = os.environ.get("REPRO_NET_KILL_AFTER_APPLY")
    if not raw:
        return
    remaining = int(raw)
    state = {"appends": 0}

    def hook(op: str, seq: int) -> None:
        state["appends"] += 1
        if state["appends"] >= remaining:
            os._exit(42)

    service.after_append_hook = hook


def run_worker(
    root: str | Path,
    shard_index: int,
    host: str = "127.0.0.1",
    port: int = 0,
    announce_path: str | Path | None = None,
    config: ServiceConfig | None = None,
    max_inflight: int = 64,
    service_name: str = "graphitti",
) -> None:
    """Worker-process main: open (recover) the shard, bind, announce, serve.

    Blocks until a ``shutdown`` RPC or SIGTERM.  The announce file is written
    atomically *after* the listener is bound and recovery finished, so a
    supervisor that sees it knows the worker is ready for traffic.
    """
    import signal

    root = Path(root)
    namespace = shard_namespace(shard_index)
    from repro.core.manager import Graphitti

    service = GraphittiService.open(
        root,
        config=config,
        manager_factory=lambda: Graphitti(f"{service_name}-{namespace}", id_namespace=namespace),
    )
    # Recovery rebuilds the manager without the namespace; re-pin it so fresh
    # reservations keep routing ids to this shard (mirrors the threaded open).
    service.manager.id_namespace = namespace
    _install_kill_after_apply(service)

    server = ShardWorkerServer(service, shard_index, host=host, port=port, max_inflight=max_inflight)
    bound_host, bound_port = server.start()

    def _on_sigterm(signum: int, frame: Any) -> None:  # pragma: no cover - signal path
        server._stopped.set()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        pass

    if announce_path is None:
        announce_path = root / ANNOUNCE_FILE
    announce_path = Path(announce_path)
    payload = {
        "shard": shard_index,
        "host": bound_host,
        "port": bound_port,
        "pid": os.getpid(),
        "recovery": service.recovery_info,
    }
    tmp = announce_path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    os.replace(tmp, announce_path)

    try:
        while not server.wait(timeout=0.5):
            pass
    finally:
        server.stop()
        service.close()
