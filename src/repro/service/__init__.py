"""The Graphitti serving layer.

Wraps a :class:`~repro.core.manager.Graphitti` instance in the machinery a
multi-user deployment needs — single-writer/multi-reader locking, a
write-ahead log with snapshot checkpoints and crash recovery, an
epoch-invalidated query-result cache, and a group-committed bulk ingest path:

* :mod:`repro.service.locks` -- the writer-preference readers-writer lock,
* :mod:`repro.service.cache` -- the epoch-tagged LRU result cache,
* :mod:`repro.service.wal` -- the append-only JSONL write-ahead log,
* :mod:`repro.service.durability` -- snapshot+WAL lifecycle and recovery,
* :mod:`repro.service.service` -- the :class:`GraphittiService` facade.
"""

from repro.service.cache import QueryResultCache, normalize_gql
from repro.service.durability import DurableStore, apply_record, recover_manager
from repro.service.locks import ReadWriteLock
from repro.service.service import GraphittiService, ServiceConfig
from repro.service.wal import (
    WriteAheadLog,
    encode_record,
    fsync_dir,
    parse_record,
    read_records,
    read_segmented_records,
)

__all__ = [
    "GraphittiService",
    "ServiceConfig",
    "ReadWriteLock",
    "QueryResultCache",
    "normalize_gql",
    "WriteAheadLog",
    "read_records",
    "read_segmented_records",
    "parse_record",
    "encode_record",
    "fsync_dir",
    "DurableStore",
    "apply_record",
    "recover_manager",
]
