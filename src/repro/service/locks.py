"""A single-writer / multi-reader lock for the serving layer.

Annotation workloads are overwhelmingly read-heavy, so the serving layer
coordinates with a classic readers-writer lock: any number of readers share
the lock concurrently, writers get it exclusively, and *writer preference*
keeps a steady stream of readers from starving mutations (a waiting writer
blocks new readers from entering).

The implementation is a plain condition-variable monitor — no busy waiting —
and exposes context managers so call sites read as ``with lock.read_locked():``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """A writer-preference readers-writer lock.

    Not reentrant: a thread must not acquire the write side while holding the
    read side (or vice versa) — the serving layer's call structure never
    nests acquisitions.
    """

    def __init__(self) -> None:
        self._monitor = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- read side -------------------------------------------------------------

    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then enter as a reader."""
        with self._monitor:
            while self._writer_active or self._writers_waiting:
                self._monitor.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        """Leave the reader side, waking writers when the last reader exits."""
        with self._monitor:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._monitor.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Hold the read side for the duration of the block."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side ------------------------------------------------------------

    def acquire_write(self) -> None:
        """Block until the lock is free of readers and writers, then own it."""
        with self._monitor:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._monitor.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Release exclusive ownership and wake every waiter."""
        with self._monitor:
            self._writer_active = False
            self._monitor.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Hold the write side for the duration of the block."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (for tests / stats) --------------------------------------

    def snapshot(self) -> dict[str, int | bool]:
        """A point-in-time view of the lock state (diagnostics only)."""
        with self._monitor:
            return {
                "active_readers": self._active_readers,
                "writer_active": self._writer_active,
                "writers_waiting": self._writers_waiting,
            }
