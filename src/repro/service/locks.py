"""A single-writer / multi-reader lock for the serving layer.

Annotation workloads are overwhelmingly read-heavy, so the serving layer
coordinates with a classic readers-writer lock: any number of readers share
the lock concurrently, writers get it exclusively, and *writer preference*
keeps a steady stream of readers from starving mutations (a waiting writer
blocks new readers from entering).

The implementation is a plain condition-variable monitor — no busy waiting —
and exposes context managers so call sites read as ``with lock.read_locked():``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator


class ReadWriteLock:
    """A writer-preference readers-writer lock.

    Not reentrant: a thread must not acquire the write side while holding the
    read side (or vice versa) — the serving layer's call structure never
    nests acquisitions.

    Contention is observable: after :meth:`instrument`, the lock records
    wait-time histograms for both sides, a hold-time histogram for writers,
    and a writers-queued gauge into the given metrics registry.  The
    uninstrumented (and the uncontended-read) paths stay metric-free.
    """

    def __init__(self) -> None:
        self._monitor = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._metrics: dict | None = None
        self._write_acquired_at = 0.0

    def instrument(self, registry) -> None:
        """Record wait/hold distributions into *registry* from now on.

        Read-side wait time is only observed when the reader actually had to
        wait — the uncontended read acquisition (the serving layer's hottest
        lock path) pays one extra attribute load and nothing else.
        """
        self._metrics = {
            "read_wait": registry.histogram("lock.read.wait"),
            "write_wait": registry.histogram("lock.write.wait"),
            "write_hold": registry.histogram("lock.write.hold"),
            "writers_queued": registry.gauge("lock.writers_queued"),
        }

    # -- read side -------------------------------------------------------------

    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then enter as a reader."""
        metrics = self._metrics
        waited = 0.0
        with self._monitor:
            if self._writer_active or self._writers_waiting:
                start = perf_counter() if metrics is not None else 0.0
                while self._writer_active or self._writers_waiting:
                    self._monitor.wait()
                if metrics is not None:
                    waited = perf_counter() - start
            self._active_readers += 1
        if metrics is not None and waited:
            metrics["read_wait"].observe(waited)

    def release_read(self) -> None:
        """Leave the reader side, waking writers when the last reader exits."""
        with self._monitor:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._monitor.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Hold the read side for the duration of the block."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side ------------------------------------------------------------

    def acquire_write(self) -> None:
        """Block until the lock is free of readers and writers, then own it."""
        metrics = self._metrics
        start = perf_counter() if metrics is not None else 0.0
        if metrics is not None:
            metrics["writers_queued"].inc()
        with self._monitor:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._monitor.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        if metrics is not None:
            metrics["writers_queued"].dec()
            now = perf_counter()
            metrics["write_wait"].observe(now - start)
            self._write_acquired_at = now

    def release_write(self) -> None:
        """Release exclusive ownership and wake every waiter."""
        metrics = self._metrics
        if metrics is not None and self._write_acquired_at:
            metrics["write_hold"].observe(perf_counter() - self._write_acquired_at)
        with self._monitor:
            self._writer_active = False
            self._monitor.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Hold the write side for the duration of the block."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (for tests / stats) --------------------------------------

    def snapshot(self) -> dict[str, int | bool]:
        """A point-in-time view of the lock state (diagnostics only)."""
        with self._monitor:
            return {
                "active_readers": self._active_readers,
                "writer_active": self._writer_active,
                "writers_waiting": self._writers_waiting,
            }
