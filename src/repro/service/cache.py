"""Epoch-tagged LRU cache for query results.

Repeated structural queries dominate annotation workloads, so the serving
layer fronts the query engine with a result cache.  Correctness comes from
two ingredients:

* the **key** is the normalized GQL text plus the plan fingerprint
  (:meth:`~repro.query.planner.QueryPlan.fingerprint`), so a planner or
  configuration change can never serve a result computed under different
  execution semantics;
* every entry is **tagged with the mutation epoch** it was computed at.  The
  manager bumps its epoch on every mutation, and :meth:`QueryResultCache.get`
  treats an entry from an older epoch as a miss and drops it — invalidation
  is one integer compare, with no tracking of which queries a mutation could
  affect.

The cache is LRU-bounded and thread-safe (its own mutex; callers hold the
service read lock, which does not exclude other readers).
"""

from __future__ import annotations

import threading

from repro.errors import ConfigError
from collections import OrderedDict
from typing import Any, Hashable


#: Marker appended to the normalized form of a query whose quotes never
#: close.  It contains a character the normalizer strips from every balanced
#: query (a bare newline outside quotes), so no well-formed query's key can
#: collide with a malformed one's — a malformed text must never alias a
#: cached well-formed query's plan or result.
_UNBALANCED_MARK = "\n<unbalanced-quote>"


def normalize_gql(text: str) -> str:
    """Normalize GQL text for cache keying.

    Whitespace is collapsed only *outside* double-quoted string literals —
    quoted content is preserved verbatim, so two texts normalize equal only
    when they tokenize identically and normalization can never alias two
    different queries (e.g. ``"foo bar"`` vs ``"foo  bar"`` stay distinct).

    A text with an unbalanced trailing quote keeps its open tail verbatim
    and is additionally tagged with a marker no balanced query's normal form
    can contain: the cache/plan-memo key of a malformed query therefore
    never equals a well-formed one's, so a malformed submission can only
    ever reach the parser (and fail there), not a memoized plan.
    """
    segments = text.split('"')
    # Even segments are outside quotes, odd segments are inside (GQL has no
    # escaped quotes).  An even segment count means an odd number of quote
    # characters: the final quote never closes.
    for index in range(0, len(segments), 2):
        segments[index] = " ".join(segments[index].split())
    normalized = '"'.join(segments)
    if len(segments) % 2 == 0:
        normalized += _UNBALANCED_MARK
    return normalized


class QueryResultCache:
    """A bounded, epoch-validated, thread-safe LRU of query results.

    ``capacity=0`` disables caching entirely (every lookup misses, nothing is
    stored) — the configuration the benchmarks use as the uncached baseline.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ConfigError("cache capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, tuple[int, Any]] = OrderedDict()
        self._mutex = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def get(self, key: Hashable, epoch: int) -> Any | None:
        """The cached value for *key* if it was computed at *epoch*, else None.

        An entry tagged with an older epoch is stale by definition (some
        mutation happened since); it is dropped and counted as an
        invalidation as well as a miss.
        """
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            entry_epoch, value = entry
            if entry_epoch != epoch:
                del self._entries[key]
                self._invalidations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, epoch: int, value: Any) -> None:
        """Store *value* for *key* computed at *epoch* (LRU-evicting)."""
        if self.capacity == 0:
            return
        with self._mutex:
            self._entries[key] = (epoch, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._mutex:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def stats(self) -> dict[str, int | float]:
        """Hit / miss / eviction / invalidation counters plus the hit rate."""
        with self._mutex:
            lookups = self._hits + self._misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
                "hit_rate": (self._hits / lookups) if lookups else 0.0,
            }
