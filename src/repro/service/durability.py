"""Durability for a served Graphitti instance: snapshot + WAL lifecycle.

A served instance lives in one directory::

    <root>/
      snapshot.json   # the latest checkpoint (embeds "wal_seq")
      wal.jsonl       # records appended after that checkpoint

**Checkpoint** writes the snapshot to a temp file, atomically renames it over
``snapshot.json`` (embedding the last logged sequence number), then truncates
the WAL.  A crash between the rename and the truncate merely leaves records
the next recovery recognizes as already-applied (their ``seq`` is at or below
the snapshot's ``wal_seq``) and skips — checkpointing is idempotent.

**Recovery** rebuilds the manager from the snapshot (or a fresh instance when
none exists), hydrates catalogue placeholders for every metadata row so
registry-backed statistics and commit validation match the pre-crash
instance, then replays the WAL records logged after the snapshot through the
same record codec live operations use.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.core.persistence import (
    apply_register_record,
    decode_annotation,
    hydrate_catalogue,
    rebuild,
    snapshot as make_snapshot,
    wire_annotation,
)
from repro.errors import ServiceError, WalCorruptionError
from repro.ontology.model import Ontology
from repro.service.wal import WriteAheadLog, fsync_dir, read_records

SNAPSHOT_FILE = "snapshot.json"
WAL_FILE = "wal.jsonl"


class DurableStore:
    """Paths and lifecycle of one served instance's on-disk state."""

    def __init__(self, root: str | Path, durability: str = "always"):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.root / SNAPSHOT_FILE
        self.wal = WriteAheadLog(self.root / WAL_FILE, durability=durability)
        # The log alone cannot know the sequence high-water mark after a
        # checkpoint truncated it: numbering must continue ABOVE the
        # snapshot's wal_seq, or records appended after a reopen would be
        # skipped at recovery as already-applied.
        snapshot_seq = self._snapshot_wal_seq()
        if snapshot_seq > self.wal.last_seq:
            self.wal.last_seq = snapshot_seq
        self.checkpoints = 0

    def _snapshot_wal_seq(self) -> int:
        """The ``wal_seq`` embedded in the current snapshot (0 when absent)."""
        if not self.snapshot_path.exists():
            return 0
        try:
            with self.snapshot_path.open("r", encoding="utf-8") as handle:
                return int(json.load(handle).get("wal_seq", 0))
        except (OSError, ValueError, json.JSONDecodeError):
            return 0

    @property
    def wal_path(self) -> Path:
        return self.wal.path

    def checkpoint(self, manager) -> Path:
        """Snapshot *manager*, embed the WAL high-water mark, truncate the log.

        The snapshot lands via write-to-temp + atomic rename so a crash while
        checkpointing can never destroy the previous good snapshot.
        """
        self.wal.sync()
        tmp = self.snapshot_path.with_suffix(".json.tmp")
        payload = make_snapshot(manager)
        payload["wal_seq"] = self.wal.last_seq
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.snapshot_path)
        # The rename itself is only durable once the directory entry reaches
        # disk; fsync the directory BEFORE truncating the log, or a power
        # failure could leave the old snapshot next to an already-empty WAL.
        fsync_dir(self.root)
        self.wal.truncate()
        self.checkpoints += 1
        return self.snapshot_path

    def close(self) -> None:
        self.wal.close()


def apply_record(manager, record: dict[str, Any]) -> None:
    """Apply one WAL record to *manager* (the replay half of the op codec)."""
    op = record["op"]
    payload = record["payload"]
    if op == "register_ontology":
        manager.register_ontology(Ontology.from_dict(payload))
    elif op == "register":
        apply_register_record(manager, payload)
    elif op == "commit":
        wire_annotation(manager, decode_annotation(payload), add_content_document=True)
    elif op == "delete_annotation":
        manager.delete_annotation(payload["annotation_id"])
    elif op == "update_annotation":
        # The logged changes are already codec-shaped (encode_update_changes);
        # update_annotation accepts that form directly, so replay runs the
        # exact delta-maintenance path the live apply ran.
        manager.update_annotation(payload["annotation_id"], payload["changes"])
    elif op == "delete_object":
        manager.delete_object(payload["object_id"], cascade=payload.get("cascade", True))
    else:  # pragma: no cover - read_records already validates ops
        raise ServiceError(f"unknown WAL op {op!r}")


def recover_manager(root: str | Path):
    """Rebuild the manager for the instance at *root*.

    Returns ``(manager, info)`` where *info* reports what recovery saw:
    ``{"snapshot": bool, "base_seq": int, "replayed": int, "skipped": int,
    "torn_tail": bool}``.  Raises when the directory holds no state at all.
    """
    root = Path(root)
    snapshot_path = root / SNAPSHOT_FILE
    wal_path = root / WAL_FILE
    records, torn_tail = read_records(wal_path)
    if not snapshot_path.exists() and not records:
        if torn_tail:
            # A crash mid-append of the very first record: the only line is
            # torn, so nothing was ever acknowledged.  The correct recovered
            # state is a fresh instance, not a refusal to open the root.
            from repro.core.manager import Graphitti

            return Graphitti(root.name or "graphitti"), {
                "snapshot": False,
                "base_seq": 0,
                "replayed": 0,
                "skipped": 0,
                "torn_tail": True,
            }
        raise ServiceError(f"no snapshot or WAL records to recover from in {root}")

    base_seq = 0
    if snapshot_path.exists():
        with snapshot_path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        manager = rebuild(payload)
        base_seq = int(payload.get("wal_seq", 0))
    else:
        from repro.core.manager import Graphitti

        manager = Graphitti(root.name or "graphitti")

    # Hydrate registry placeholders BEFORE replay: update/delete_object
    # records validate against the registry, and objects registered before
    # the snapshot exist only as metadata rows until hydration.  (Register
    # records replayed below are idempotent over the placeholders.)
    hydrate_catalogue(manager)

    replayed = skipped = 0
    previous_seq = 0
    for record in records:
        # Sequence numbers are assigned monotonically and never rewritten; a
        # repeated or regressing seq means the log was damaged or doctored,
        # and replaying it would double-apply an acknowledged mutation.
        if record["seq"] <= previous_seq:
            raise WalCorruptionError(
                f"WAL seq {record['seq']} does not advance past {previous_seq} in {wal_path}"
            )
        previous_seq = record["seq"]
        if record["seq"] <= base_seq:
            skipped += 1  # superseded by the snapshot (crash mid-checkpoint)
            continue
        apply_record(manager, record)
        replayed += 1

    # A register record replayed above may have inserted a metadata row whose
    # placeholder the pre-replay hydration could not see; sweep once more.
    hydrate_catalogue(manager)
    # Recovery is a natural quiesce point: rebuild the component index now so
    # the first query after a crash never pays a surprise rebuild.
    manager.agraph.graph.rebuild_components()
    return manager, {
        "snapshot": snapshot_path.exists(),
        "base_seq": base_seq,
        "replayed": replayed,
        "skipped": skipped,
        "torn_tail": torn_tail,
    }
