"""Durability for a served Graphitti instance: snapshot + WAL lifecycle.

A served instance lives in one directory::

    <root>/
      snapshot.json    # the latest checkpoint (embeds "wal_seq" as its FIRST key)
      wal.jsonl        # the ACTIVE segment: records appended after the last seal
      wal.000017.jsonl # sealed, immutable segments awaiting a durable snapshot

**Checkpoint** seals the active WAL segment (an O(1) rename under the service
write lock), then — typically on a background thread — writes the snapshot to
a temp file, atomically renames it over ``snapshot.json`` (embedding the last
sealed sequence number), and prunes the sealed segments the snapshot now
supersedes.  A crash at any point leaves either the old snapshot with all
segments intact, or the new snapshot with records recovery recognizes as
already-applied (their ``seq`` is at or below the snapshot's ``wal_seq``) and
skips — checkpointing is idempotent.

**Recovery** rebuilds the manager from the snapshot (or a fresh instance when
none exists), hydrates catalogue placeholders for every metadata row so
registry-backed statistics and commit validation match the pre-crash
instance, then replays the WAL records logged after the snapshot — sealed
segments first, active file last — through the same record codec live
operations use.
"""

from __future__ import annotations

import contextlib
import gc
import json
import os
import re
import signal
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.core.persistence import (
    apply_register_record,
    decode_annotation,
    hydrate_catalogue,
    rebuild,
    snapshot as make_snapshot,
    wire_annotation,
)
from repro.errors import ServiceError, WalCorruptionError
from repro.ontology.model import Ontology
from repro.service.wal import WriteAheadLog, fsync_dir, read_segmented_records

SNAPSHOT_FILE = "snapshot.json"
WAL_FILE = "wal.jsonl"

#: Crash-seam environment variable: set to one of ``seal``, ``tmp``,
#: ``rename`` or ``prune`` to SIGKILL the process immediately after that
#: checkpoint step — the crash-matrix tests drive a subprocess through every
#: seam and prove recovery loses no acknowledged write.
KILL_ENV = "REPRO_CKPT_KILL_AFTER"

_WAL_SEQ_HEAD = re.compile(rb'^\s*\{\s*"wal_seq"\s*:\s*(\d+)')


def _maybe_kill(point: str) -> None:
    if os.environ.get(KILL_ENV) == point:
        os.kill(os.getpid(), signal.SIGKILL)


def peek_snapshot_wal_seq(path: str | Path) -> int:
    """The ``wal_seq`` embedded in the snapshot at *path* (0 when absent).

    Snapshots written by this module place ``wal_seq`` as the FIRST key, so a
    single small read answers the question; a 1M-annotation snapshot is
    hundreds of megabytes and loading it just to read one int made every
    recovery and reopen pay a full-file parse.  Legacy snapshots (wal_seq
    appended last) fall back to the full parse.
    """
    path = Path(path)
    if not path.exists():
        return 0
    try:
        with path.open("rb") as handle:
            head = handle.read(4096)
    except OSError:
        return 0
    match = _WAL_SEQ_HEAD.match(head)
    if match is not None:
        return int(match.group(1))
    try:
        with path.open("r", encoding="utf-8") as handle:
            return int(json.load(handle).get("wal_seq", 0))
    except (OSError, ValueError, json.JSONDecodeError):
        return 0


_COURTESY_LOCK = threading.Lock()
_COURTESY_DEPTH = 0
_COURTESY_PREVIOUS = 0.0
_COURTESY_GC_WAS_ENABLED = False

#: Switch interval inside a courtesy window: long enough to amortize the
#: handoff, short enough that a committer waiting on the GIL resumes in
#: well under a WAL fsync.
_COURTESY_INTERVAL_S = 0.0005


@contextlib.contextmanager
def gil_courtesy():
    """Make background CPU work polite to latency-sensitive threads.

    Snapshot serialization is pure CPU on a background thread, and two
    interpreter-global mechanisms turn that into commit stalls even though
    no lock is shared:

    * with the default 5 ms switch interval a concurrent committer waits up
      to 5 ms for every GIL re-acquisition (several per durable commit —
      each fsync releases and re-takes it), multiplying into tens of
      milliseconds of p99 — so the window lowers the switch interval;
    * serialization's allocation burst trips generational GC while the heap
      is doubled by the frozen view plus the payload, and a full collection
      holds the GIL for the entire stop-the-world pass (observed 50-75 ms)
      — so the window pauses automatic collection; reference counting still
      frees the serialization garbage, and the deferred cyclic pass runs at
      the next threshold crossing after the window closes.

    The window is process-global, so a depth count keeps overlapping
    checkpoints (per-shard services share the interpreter) from restoring a
    still-lowered interval or re-enabling GC a sibling paused.
    """
    global _COURTESY_DEPTH, _COURTESY_PREVIOUS, _COURTESY_GC_WAS_ENABLED
    with _COURTESY_LOCK:
        if _COURTESY_DEPTH == 0:
            _COURTESY_PREVIOUS = sys.getswitchinterval()
            _COURTESY_GC_WAS_ENABLED = gc.isenabled()
            sys.setswitchinterval(_COURTESY_INTERVAL_S)
            gc.disable()
        _COURTESY_DEPTH += 1
    try:
        yield
    finally:
        with _COURTESY_LOCK:
            _COURTESY_DEPTH -= 1
            if _COURTESY_DEPTH == 0:
                sys.setswitchinterval(_COURTESY_PREVIOUS)
                if _COURTESY_GC_WAS_ENABLED:
                    gc.enable()


def dump_json_chunked(handle, payload: dict[str, Any]) -> None:
    """Serialize *payload* to *handle*, byte-identical to ``json.dump``.

    One monolithic ``json.dumps`` of a large snapshot is a single C call
    that holds the GIL for its full duration — hundreds of milliseconds at
    100k annotations — stalling every other thread.  Encoding the big
    collections entry-by-entry keeps each C call microseconds long, with a
    GIL yield point between entries, while still using the C encoder for
    the actual byte generation.
    """
    handle.write("{")
    first = True
    for key, value in payload.items():
        if not first:
            handle.write(", ")
        first = False
        handle.write(json.dumps(key))
        handle.write(": ")
        if isinstance(value, list):
            handle.write("[")
            for index, item in enumerate(value):
                if index:
                    handle.write(", ")
                handle.write(json.dumps(item))
            handle.write("]")
        elif isinstance(value, dict) and all(isinstance(k, str) for k in value):
            handle.write("{")
            for index, (k, v) in enumerate(value.items()):
                if index:
                    handle.write(", ")
                handle.write(json.dumps(k))
                handle.write(": ")
                handle.write(json.dumps(v))
            handle.write("}")
        else:
            # Non-string dict keys coerce differently than json.dumps(k)
            # would; let the stock encoder keep the bytes canonical.
            handle.write(json.dumps(value))
    handle.write("}")


#: Snapshot IO pacing: fsync roughly every this many bytes, then pause.
_SNAPSHOT_CHUNK_BYTES = 512 * 1024
_SNAPSHOT_PACE_S = 0.002


class _PacedWriter:
    """File-like wrapper that syncs every ~chunk bytes and pauses briefly.

    Deferring a multi-megabyte snapshot to one final fsync builds a flush
    storm that queues ahead of concurrent WAL fsyncs on the same
    filesystem — observed as ~100 ms commit p99 while a checkpoint lands.
    Spreading the sync cost into small paced ``fdatasync`` chunks keeps any
    single flush, and therefore any commit fsync waiting behind it, a few
    milliseconds; the caller still fsyncs once at the end for the metadata.
    """

    def __init__(self, handle, chunk_bytes: int = _SNAPSHOT_CHUNK_BYTES,
                 pace_s: float = _SNAPSHOT_PACE_S):
        self._handle = handle
        self._chunk = chunk_bytes
        self._pace = pace_s
        self._pending = 0

    def write(self, text: str) -> int:
        written = self._handle.write(text)
        self._pending += len(text)
        if self._pending >= self._chunk:
            self._handle.flush()
            os.fdatasync(self._handle.fileno())
            self._pending = 0
            time.sleep(self._pace)
        return written


def _preallocate(handle, estimate: int) -> None:
    """Reserve *estimate* bytes up front (best effort).

    With delayed allocation, every paced sync of a growing temp file adds
    extent metadata to the journal transaction concurrent WAL fsyncs must
    commit — the entanglement that stalls committers.  Preallocating turns
    the chunk syncs into pure data writeback the journal never sees.
    """
    if estimate <= 0:
        return
    fallocate = getattr(os, "posix_fallocate", None)
    if fallocate is None:  # pragma: no cover - non-POSIX platform
        return
    try:
        fallocate(handle.fileno(), 0, estimate)
    except OSError:  # pragma: no cover - filesystem without fallocate
        pass


class DurableStore:
    """Paths and lifecycle of one served instance's on-disk state."""

    def __init__(self, root: str | Path, durability: str = "always"):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.root / SNAPSHOT_FILE
        self.wal = WriteAheadLog(self.root / WAL_FILE, durability=durability)
        # The log alone cannot know the sequence high-water mark after a
        # checkpoint truncated it: numbering must continue ABOVE the
        # snapshot's wal_seq, or records appended after a reopen would be
        # skipped at recovery as already-applied.
        snapshot_seq = self._snapshot_wal_seq()
        if snapshot_seq > self.wal.last_seq:
            self.wal.last_seq = snapshot_seq
        self.checkpoints = 0
        #: Test seam: called right before the snapshot payload is serialized.
        #: The concurrent-writer stress test parks a checkpoint here to prove
        #: writers never block on serialization.
        self.snapshot_write_hook: Callable[[], None] | None = None

    def _snapshot_wal_seq(self) -> int:
        """The ``wal_seq`` embedded in the current snapshot (0 when absent)."""
        return peek_snapshot_wal_seq(self.snapshot_path)

    @property
    def wal_path(self) -> Path:
        return self.wal.path

    # -- checkpoint lifecycle --------------------------------------------------
    #
    # A checkpoint is three steps with different locking needs:
    #
    #   seal_for_checkpoint()   O(1), runs under the service write lock
    #   write_snapshot(payload) the expensive part, safe off-lock
    #   finish_checkpoint(seq)  prunes superseded segments, safe off-lock
    #
    # The legacy synchronous checkpoint() composes all three for callers that
    # do not need writer concurrency (CLI build paths, small instances).

    def seal_for_checkpoint(self) -> int:
        """Seal the active WAL segment and return the sequence high-water mark.

        The checkpoint counter ticks here — the synchronous, under-lock step —
        so writers observe a deterministic count the moment the interval
        triggers, regardless of how long background serialization takes.
        """
        self.wal.seal_segment()
        _maybe_kill("seal")
        self.checkpoints += 1
        return self.wal.last_seq

    def write_snapshot(self, payload: dict[str, Any]) -> Path:
        """Write *payload* durably via temp file + atomic rename.

        ``wal_seq`` is re-emitted as the FIRST key so reopen/recovery can peek
        it without parsing the payload (see :func:`peek_snapshot_wal_seq`).
        """
        if self.snapshot_write_hook is not None:
            self.snapshot_write_hook()
        ordered: dict[str, Any] = {"wal_seq": int(payload.get("wal_seq", 0))}
        for key, value in payload.items():
            if key != "wal_seq":
                ordered[key] = value
        tmp = self.snapshot_path.with_suffix(".json.tmp")
        try:
            estimate = self.snapshot_path.stat().st_size
        except OSError:
            estimate = 0
        with tmp.open("w", encoding="utf-8") as handle:
            _preallocate(handle, estimate)
            dump_json_chunked(_PacedWriter(handle), ordered)
            handle.flush()
            handle.truncate()  # trim any over-allocation from the estimate
            os.fsync(handle.fileno())
        _maybe_kill("tmp")
        os.replace(tmp, self.snapshot_path)
        # The rename itself is only durable once the directory entry reaches
        # disk; fsync the directory BEFORE pruning segments, or a power
        # failure could leave the old snapshot next to already-pruned history.
        fsync_dir(self.root)
        _maybe_kill("rename")
        return self.snapshot_path

    def finish_checkpoint(self, wal_seq: int) -> list[Path]:
        """Prune sealed segments the durable snapshot at *wal_seq* supersedes."""
        removed = self.wal.prune_sealed(wal_seq)
        _maybe_kill("prune")
        return removed

    def checkpoint(self, manager) -> Path:
        """Synchronous checkpoint: seal, snapshot *manager*, prune.

        The non-blocking path in :class:`~repro.service.service.GraphittiService`
        uses the three lifecycle steps directly with a frozen column view;
        this composition serves callers without concurrent writers.
        """
        wal_seq = self.seal_for_checkpoint()
        payload = make_snapshot(manager)
        payload["wal_seq"] = wal_seq
        path = self.write_snapshot(payload)
        self.finish_checkpoint(wal_seq)
        return path

    def close(self) -> None:
        self.wal.close()


def apply_record(manager, record: dict[str, Any]) -> None:
    """Apply one WAL record to *manager* (the replay half of the op codec)."""
    op = record["op"]
    payload = record["payload"]
    if op == "register_ontology":
        manager.register_ontology(Ontology.from_dict(payload))
    elif op == "register":
        apply_register_record(manager, payload)
    elif op == "commit":
        wire_annotation(manager, decode_annotation(payload), add_content_document=True)
    elif op == "delete_annotation":
        manager.delete_annotation(payload["annotation_id"])
    elif op == "update_annotation":
        # The logged changes are already codec-shaped (encode_update_changes);
        # update_annotation accepts that form directly, so replay runs the
        # exact delta-maintenance path the live apply ran.
        manager.update_annotation(payload["annotation_id"], payload["changes"])
    elif op == "delete_object":
        manager.delete_object(payload["object_id"], cascade=payload.get("cascade", True))
    else:  # pragma: no cover - read_records already validates ops
        raise ServiceError(f"unknown WAL op {op!r}")


def recover_manager(root: str | Path):
    """Rebuild the manager for the instance at *root*.

    Returns ``(manager, info)`` where *info* reports what recovery saw:
    ``{"snapshot": bool, "base_seq": int, "replayed": int, "skipped": int,
    "torn_tail": bool}``.  Raises when the directory holds no state at all.
    """
    root = Path(root)
    snapshot_path = root / SNAPSHOT_FILE
    wal_path = root / WAL_FILE
    # Sealed segments first, the active file last — one ordered record stream.
    records, torn_tail = read_segmented_records(wal_path)
    if not snapshot_path.exists() and not records:
        if torn_tail:
            # A crash mid-append of the very first record: the only line is
            # torn, so nothing was ever acknowledged.  The correct recovered
            # state is a fresh instance, not a refusal to open the root.
            from repro.core.manager import Graphitti

            return Graphitti(root.name or "graphitti"), {
                "snapshot": False,
                "base_seq": 0,
                "replayed": 0,
                "skipped": 0,
                "torn_tail": True,
            }
        raise ServiceError(f"no snapshot or WAL records to recover from in {root}")

    base_seq = 0
    if snapshot_path.exists():
        with snapshot_path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        manager = rebuild(payload)
        base_seq = int(payload.get("wal_seq", 0))
    else:
        from repro.core.manager import Graphitti

        manager = Graphitti(root.name or "graphitti")

    # Hydrate registry placeholders BEFORE replay: update/delete_object
    # records validate against the registry, and objects registered before
    # the snapshot exist only as metadata rows until hydration.  (Register
    # records replayed below are idempotent over the placeholders.)
    hydrate_catalogue(manager)

    replayed = skipped = 0
    previous_seq = 0
    for record in records:
        # Sequence numbers are assigned monotonically and never rewritten; a
        # repeated or regressing seq means the log was damaged or doctored,
        # and replaying it would double-apply an acknowledged mutation.
        if record["seq"] <= previous_seq:
            raise WalCorruptionError(
                f"WAL seq {record['seq']} does not advance past {previous_seq} in {wal_path}"
            )
        previous_seq = record["seq"]
        if record["seq"] <= base_seq:
            skipped += 1  # superseded by the snapshot (crash mid-checkpoint)
            continue
        apply_record(manager, record)
        replayed += 1

    # A register record replayed above may have inserted a metadata row whose
    # placeholder the pre-replay hydration could not see; sweep once more.
    hydrate_catalogue(manager)
    # Recovery is a natural quiesce point: rebuild the component index now so
    # the first query after a crash never pays a surprise rebuild.
    manager.agraph.graph.rebuild_components()
    return manager, {
        "snapshot": snapshot_path.exists(),
        "base_seq": base_seq,
        "replayed": replayed,
        "skipped": skipped,
        "torn_tail": torn_tail,
    }
