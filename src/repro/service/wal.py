"""Append-only write-ahead log of serving-layer mutations.

One JSON record per line (JSONL), each ``{"seq": n, "op": ..., "payload": ...}``.
The log layers on :mod:`repro.core.persistence` snapshots: a checkpoint writes
a snapshot embedding the last logged sequence number and truncates the log, so
recovery is *snapshot + replay of the records logged after it*.

Crash semantics:

* every append is flushed; with ``durability="always"`` it is also fsynced,
  so an acknowledged mutation survives a machine crash;
* a crash mid-append leaves a **torn final line**; :func:`read_records`
  tolerates exactly that (the unacknowledged tail op is lost, as it must be)
  but raises :class:`~repro.errors.WalCorruptionError` for damage anywhere
  before the tail — a log that lies about acknowledged history must not be
  silently replayed.

Batched appends (:meth:`WriteAheadLog.append_many`) write the whole group and
sync **once** — the group-commit optimization behind the serving layer's bulk
ingest path.

Payload encoding is **strict**: a payload holding any value the JSON codec
cannot represent natively raises :class:`~repro.errors.ServiceError` *before*
anything reaches the file.  (An earlier revision silently stringified such
values via ``default=str``, which produced records that parsed but could not
be replayed — a WAL that accepts what it cannot replay is corruption with
extra steps.)
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.errors import ServiceError, WalCorruptionError
from repro.analysis.annotations import io_under_lock_ok

#: Operations the serving layer logs.
WAL_OPS = (
    "register_ontology",
    "register",
    "commit",
    "delete_annotation",
    "update_annotation",
    "delete_object",
)

#: fsync policies: every record, every batch/explicit sync, or never.
DURABILITY_MODES = ("always", "batch", "never")


def fsync_dir(path: str | Path) -> None:
    """fsync the directory at *path* so a completed rename survives power loss.

    ``os.replace`` makes a rename atomic, but the new directory entry only
    becomes durable once the *directory* itself reaches disk — without this,
    a crash after the rename can resurrect the replaced file.  Called after
    every atomic-rename in the WAL/snapshot/manifest lifecycle.
    """
    directory_fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(directory_fd)
    finally:
        os.close(directory_fd)


def sealed_segment_name(active: Path, index: int) -> str:
    """Filename of sealed segment *index* for the active log at *active*.

    ``wal.jsonl`` seals to ``wal.000017.jsonl`` — the zero-padded index keeps
    lexical and numeric ordering identical, so a plain directory sort walks
    segments in commit order.
    """
    return f"{active.stem}.{index:06d}{active.suffix}"


def segment_index(active: Path, candidate: Path) -> int | None:
    """The sealed-segment index of *candidate*, or None when it is not one."""
    pattern = re.escape(active.stem) + r"\.(\d{6})" + re.escape(active.suffix) + r"$"
    match = re.fullmatch(pattern, candidate.name)
    if match is None:
        return None
    return int(match.group(1))


def sealed_segment_paths(active: str | Path) -> list[Path]:
    """Sealed segments next to the active log at *active*, in seal order."""
    active = Path(active)
    if not active.parent.exists():
        return []
    found: list[tuple[int, Path]] = []
    for candidate in active.parent.iterdir():
        index = segment_index(active, candidate)
        if index is not None:
            found.append((index, candidate))
    return [path for _, path in sorted(found)]


def read_segmented_records(active: str | Path) -> tuple[list[dict[str, Any]], bool]:
    """Parse sealed segments plus the active log, in order.

    Sealed segments are fsynced whole before the rename that seals them, so a
    torn tail inside one is acknowledged history gone bad — that raises
    :class:`WalCorruptionError` rather than being shrugged off as a crash
    artifact.  Only the *active* file may legitimately end mid-line.
    """
    active = Path(active)
    records: list[dict[str, Any]] = []
    for segment in sealed_segment_paths(active):
        segment_records, torn = read_records(segment)
        if torn:
            raise WalCorruptionError(
                f"sealed WAL segment {segment} has a torn tail; sealed history "
                "must be whole (segments are fsynced before the sealing rename)"
            )
        records.extend(segment_records)
    active_records, torn = read_records(active)
    records.extend(active_records)
    return records, torn


def _last_seq_in(path: Path) -> int:
    """Sequence number of the final record in a sealed segment.

    Reads only the file tail — sealed segments end on a complete line, so the
    last parseable line is the last record.
    """
    try:
        size = path.stat().st_size
    except OSError:
        return 0
    if size == 0:
        return 0
    with path.open("rb") as handle:
        if size > 65536:
            handle.seek(size - 65536)
        tail = handle.read()
    for line in reversed(tail.split(b"\n")):
        record = _parse_record(line)
        if record is not None:
            return record["seq"]
    return 0


def encode_record(record: dict[str, Any]) -> str:
    """Strictly encode one WAL record as its JSONL line (no trailing newline).

    Raises :class:`ServiceError` when the payload holds a value JSON cannot
    represent natively (sets, objects, NaN/Infinity, non-string keys...): a
    record that cannot round-trip through :func:`read_records` must never be
    acknowledged, because replay — the whole point of the log — would lose it.
    """
    try:
        return json.dumps(record, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ServiceError(
            f"WAL record for op {record.get('op')!r} is not strictly "
            f"JSON-serializable and would be unreplayable: {exc}"
        ) from exc


def read_records(path: str | Path) -> tuple[list[dict[str, Any]], bool]:
    """Parse the log at *path*; returns ``(records, torn_tail)``.

    ``torn_tail`` is True when the final line was unreadable (the signature a
    crash mid-append leaves).  An unreadable or malformed record *before* the
    final line raises :class:`WalCorruptionError`.
    """
    source = Path(path)
    if not source.exists():
        return [], False
    raw = source.read_bytes()
    if not raw:
        return [], False
    lines = raw.split(b"\n")
    # A complete log ends with a newline, leaving one empty trailing chunk.
    if lines and lines[-1] == b"":
        lines.pop()
    records: list[dict[str, Any]] = []
    last = len(lines) - 1
    for position, line in enumerate(lines):
        record = _parse_record(line)
        if record is None:
            if position == last:
                return records, True
            raise WalCorruptionError(
                f"unreadable WAL record at line {position + 1} of {source} (not the tail)"
            )
        records.append(record)
    return records, False


def parse_record(line: bytes) -> dict[str, Any] | None:
    """Parse one JSONL line into a WAL record; None when it is not one.

    Shared with the replication tailer (:mod:`repro.replica.tailer`), whose
    shipped byte stream must accept exactly the records :func:`read_records`
    accepts.
    """
    return _parse_record(line)


def _parse_record(line: bytes) -> dict[str, Any] | None:
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    if not isinstance(record.get("seq"), int) or record.get("op") not in WAL_OPS:
        return None
    if "payload" not in record:
        return None
    return record


class WriteAheadLog:
    """An append-only JSONL log opened for the lifetime of a service.

    The log continues the sequence numbering of whatever records already
    exist at *path* (reopening after recovery appends, never rewrites).
    """

    def __init__(self, path: str | Path, durability: str = "always"):
        if durability not in DURABILITY_MODES:
            raise ServiceError(
                f"unknown durability mode {durability!r}; expected one of {DURABILITY_MODES}"
            )
        self.path = Path(path)
        self.durability = durability
        #: Injectable fsync (the fault harness swaps in a failing one to model
        #: a full disk / dying device at exactly the acknowledgement point).
        self.fsync_hook: Callable[[int], None] = os.fsync
        #: When the owning service enables observability it attaches its
        #: tracer here; every record-path fsync is then emitted as a
        #: ``wal.fsync`` span (child of the current mutation trace) whose
        #: duration feeds the span histogram.  None keeps the raw call.
        self.tracer = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Sealed, immutable segments preceding the active file, oldest first,
        #: as ``(index, path, last_seq)``.  Segment files are read-only once
        #: sealed; only :meth:`prune_sealed` removes them.
        self._sealed: list[tuple[int, Path, int]] = []
        for segment in sealed_segment_paths(self.path):
            index = segment_index(self.path, segment)
            self._sealed.append((index, segment, _last_seq_in(segment)))
        existing, torn = read_records(self.path)
        sealed_last = self._sealed[-1][2] if self._sealed else 0
        self.last_seq = existing[-1]["seq"] if existing else sealed_last
        self.record_count = len(existing)
        if torn:
            # Drop the torn tail so new appends start on a clean line.
            self._truncate_to_records(existing)
        self._handle = self.path.open("a", encoding="utf-8")

    # -- appends ---------------------------------------------------------------

    def _fsync(self) -> None:
        """Run the configured fsync hook, traced when a tracer is attached.

        Exceptions from the hook propagate raw — the fault harness depends
        on seeing exactly what its injected hook raised, traced or not.
        """
        tracer = self.tracer
        if tracer is None:
            self.fsync_hook(self._handle.fileno())
            return
        with tracer.span("wal.fsync"):
            self.fsync_hook(self._handle.fileno())

    @io_under_lock_ok
    def append(self, op: str, payload: dict[str, Any]) -> int:
        """Append one record and make it durable per the configured policy."""
        seq = self._write(op, payload)
        self._handle.flush()
        if self.durability == "always":
            self._fsync()
        return seq

    @io_under_lock_ok
    def append_many(self, operations: Iterable[tuple[str, dict[str, Any]]]) -> list[int]:
        """Append a batch of records with a single flush + sync (group commit)."""
        seqs = [self._write(op, payload) for op, payload in operations]
        if not seqs:
            return seqs
        self._handle.flush()
        if self.durability in ("always", "batch"):
            self._fsync()
        return seqs

    @io_under_lock_ok
    def append_record(self, record: dict[str, Any]) -> int:
        """Append an already-sequenced record verbatim (the replication path).

        A follower persisting a shipped record must keep the **primary's**
        sequence number — local renumbering would break the idempotent
        skip-on-replay rule that recovery and re-shipping both rely on.  The
        sequence must strictly advance; a record at or below ``last_seq`` is
        the signature of a double-apply (a zombie primary re-shipping history
        it no longer owns) and raises :class:`WalCorruptionError` — this is
        the same non-monotonic-seq guard recovery enforces, applied at append
        time as the promotion fencing check.
        """
        seq = record.get("seq")
        op = record.get("op")
        if not isinstance(seq, int) or op not in WAL_OPS or "payload" not in record:
            raise ServiceError(f"malformed WAL record (seq={seq!r}, op={op!r})")
        if seq <= self.last_seq:
            raise WalCorruptionError(
                f"record seq {seq} does not advance past {self.last_seq} in {self.path} "
                "(stale append rejected by the seq-fencing guard)"
            )
        self._handle.write(
            encode_record({"seq": seq, "op": op, "payload": record["payload"]}) + "\n"
        )
        self.last_seq = seq
        self.record_count += 1
        self._handle.flush()
        if self.durability == "always":
            self._fsync()
        return seq

    def _write(self, op: str, payload: dict[str, Any]) -> int:
        if op not in WAL_OPS:
            raise ServiceError(f"unknown WAL op {op!r}")
        line = encode_record({"seq": self.last_seq + 1, "op": op, "payload": payload})
        self.last_seq += 1
        self._handle.write(line + "\n")
        self.record_count += 1
        return self.last_seq

    # -- maintenance -----------------------------------------------------------

    def sync(self) -> None:
        """Flush and fsync whatever has been written so far."""
        self._handle.flush()
        if self.durability != "never":
            self._fsync()

    def truncate(self) -> None:
        """Drop every record (sequence numbering continues where it left off).

        Called after a checkpoint whose snapshot embeds ``last_seq``; records
        at or below that mark are superseded by the snapshot.
        """
        self._handle.truncate(0)
        self._handle.seek(0)
        self._handle.flush()
        if self.durability != "never":
            self._fsync()
        self.record_count = 0

    # -- segments --------------------------------------------------------------

    @io_under_lock_ok
    def seal_segment(self) -> Path | None:
        """Seal the active file into an immutable numbered segment — O(1).

        Flushes and fsyncs the active file (regardless of durability mode: a
        sealed segment must be whole), renames it to ``wal.NNNNNN.jsonl``, and
        reopens a fresh empty active file.  Sequence numbering continues.
        Returns the sealed path, or None when the active file holds no
        records (nothing to seal).

        This is the only under-the-lock step of a checkpoint: rename + reopen,
        no serialization, no dependence on corpus size.
        """
        if self.record_count == 0:
            return None
        self._handle.flush()
        self._fsync()
        self._handle.close()
        index = (self._sealed[-1][0] + 1) if self._sealed else 1
        sealed_path = self.path.with_name(sealed_segment_name(self.path, index))
        os.replace(self.path, sealed_path)
        self._sealed.append((index, sealed_path, self.last_seq))
        self._handle = self.path.open("a", encoding="utf-8")
        self.record_count = 0
        # One directory fsync covers both the rename and the new active file.
        fsync_dir(self.path.parent)
        return sealed_path

    def sealed_segments(self) -> list[Path]:
        """Paths of the sealed segments, oldest first."""
        return [path for _, path, _ in self._sealed]

    def prune_sealed(self, upto_seq: int) -> list[Path]:
        """Delete sealed segments whose records are all at or below *upto_seq*.

        Called once a snapshot embedding *upto_seq* is durable — the records
        are superseded and replay will skip them anyway.  Segments holding any
        newer record are kept whole (pruning is per-segment, never per-record).
        Returns the paths removed.
        """
        removed: list[Path] = []
        kept: list[tuple[int, Path, int]] = []
        for index, path, last_seq in self._sealed:
            if last_seq <= upto_seq:
                path.unlink(missing_ok=True)
                removed.append(path)
            else:
                kept.append((index, path, last_seq))
        self._sealed = kept
        if removed:
            fsync_dir(self.path.parent)
        return removed

    def segment_stats(self) -> dict[str, int]:
        """Gauges for the metrics surface: segment count and on-disk bytes."""
        sealed_bytes = 0
        for _, path, _ in self._sealed:
            try:
                sealed_bytes += path.stat().st_size
            except OSError:
                continue
        try:
            active_bytes = self.path.stat().st_size
        except OSError:
            active_bytes = 0
        return {
            "sealed_segments": len(self._sealed),
            "sealed_bytes": sealed_bytes,
            "active_bytes": active_bytes,
        }

    def _truncate_to_records(self, records: list[dict[str, Any]]) -> None:
        """Rewrite the file to exactly *records* (tears a damaged tail off)."""
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(encode_record(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        # The rename is only durable once the directory entry reaches disk.
        fsync_dir(self.path.parent)

    def close(self) -> None:
        """Flush, sync and close the underlying file."""
        if self._handle.closed:
            return
        self.sync()
        self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
