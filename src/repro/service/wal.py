"""Append-only write-ahead log of serving-layer mutations.

One JSON record per line (JSONL), each ``{"seq": n, "op": ..., "payload": ...}``.
The log layers on :mod:`repro.core.persistence` snapshots: a checkpoint writes
a snapshot embedding the last logged sequence number and truncates the log, so
recovery is *snapshot + replay of the records logged after it*.

Crash semantics:

* every append is flushed; with ``durability="always"`` it is also fsynced,
  so an acknowledged mutation survives a machine crash;
* a crash mid-append leaves a **torn final line**; :func:`read_records`
  tolerates exactly that (the unacknowledged tail op is lost, as it must be)
  but raises :class:`~repro.errors.WalCorruptionError` for damage anywhere
  before the tail — a log that lies about acknowledged history must not be
  silently replayed.

Batched appends (:meth:`WriteAheadLog.append_many`) write the whole group and
sync **once** — the group-commit optimization behind the serving layer's bulk
ingest path.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable

from repro.errors import ServiceError, WalCorruptionError

#: Operations the serving layer logs.
WAL_OPS = (
    "register_ontology",
    "register",
    "commit",
    "delete_annotation",
    "update_annotation",
    "delete_object",
)

#: fsync policies: every record, every batch/explicit sync, or never.
DURABILITY_MODES = ("always", "batch", "never")


def read_records(path: str | Path) -> tuple[list[dict[str, Any]], bool]:
    """Parse the log at *path*; returns ``(records, torn_tail)``.

    ``torn_tail`` is True when the final line was unreadable (the signature a
    crash mid-append leaves).  An unreadable or malformed record *before* the
    final line raises :class:`WalCorruptionError`.
    """
    source = Path(path)
    if not source.exists():
        return [], False
    raw = source.read_bytes()
    if not raw:
        return [], False
    lines = raw.split(b"\n")
    # A complete log ends with a newline, leaving one empty trailing chunk.
    if lines and lines[-1] == b"":
        lines.pop()
    records: list[dict[str, Any]] = []
    last = len(lines) - 1
    for position, line in enumerate(lines):
        record = _parse_record(line)
        if record is None:
            if position == last:
                return records, True
            raise WalCorruptionError(
                f"unreadable WAL record at line {position + 1} of {source} (not the tail)"
            )
        records.append(record)
    return records, False


def _parse_record(line: bytes) -> dict[str, Any] | None:
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    if not isinstance(record.get("seq"), int) or record.get("op") not in WAL_OPS:
        return None
    if "payload" not in record:
        return None
    return record


class WriteAheadLog:
    """An append-only JSONL log opened for the lifetime of a service.

    The log continues the sequence numbering of whatever records already
    exist at *path* (reopening after recovery appends, never rewrites).
    """

    def __init__(self, path: str | Path, durability: str = "always"):
        if durability not in DURABILITY_MODES:
            raise ServiceError(
                f"unknown durability mode {durability!r}; expected one of {DURABILITY_MODES}"
            )
        self.path = Path(path)
        self.durability = durability
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing, torn = read_records(self.path)
        self.last_seq = existing[-1]["seq"] if existing else 0
        self.record_count = len(existing)
        if torn:
            # Drop the torn tail so new appends start on a clean line.
            self._truncate_to_records(existing)
        self._handle = self.path.open("a", encoding="utf-8")

    # -- appends ---------------------------------------------------------------

    def append(self, op: str, payload: dict[str, Any]) -> int:
        """Append one record and make it durable per the configured policy."""
        seq = self._write(op, payload)
        self._handle.flush()
        if self.durability == "always":
            os.fsync(self._handle.fileno())
        return seq

    def append_many(self, operations: Iterable[tuple[str, dict[str, Any]]]) -> list[int]:
        """Append a batch of records with a single flush + sync (group commit)."""
        seqs = [self._write(op, payload) for op, payload in operations]
        if not seqs:
            return seqs
        self._handle.flush()
        if self.durability in ("always", "batch"):
            os.fsync(self._handle.fileno())
        return seqs

    def _write(self, op: str, payload: dict[str, Any]) -> int:
        if op not in WAL_OPS:
            raise ServiceError(f"unknown WAL op {op!r}")
        self.last_seq += 1
        record = {"seq": self.last_seq, "op": op, "payload": payload}
        self._handle.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")
        self.record_count += 1
        return self.last_seq

    # -- maintenance -----------------------------------------------------------

    def sync(self) -> None:
        """Flush and fsync whatever has been written so far."""
        self._handle.flush()
        if self.durability != "never":
            os.fsync(self._handle.fileno())

    def truncate(self) -> None:
        """Drop every record (sequence numbering continues where it left off).

        Called after a checkpoint whose snapshot embeds ``last_seq``; records
        at or below that mark are superseded by the snapshot.
        """
        self._handle.truncate(0)
        self._handle.seek(0)
        self._handle.flush()
        if self.durability != "never":
            os.fsync(self._handle.fileno())
        self.record_count = 0

    def _truncate_to_records(self, records: list[dict[str, Any]]) -> None:
        """Rewrite the file to exactly *records* (tears a damaged tail off)."""
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def close(self) -> None:
        """Flush, sync and close the underlying file."""
        if self._handle.closed:
            return
        self.sync()
        self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
