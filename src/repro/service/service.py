"""The Graphitti serving layer: concurrent, durable, cache-fronted access.

:class:`GraphittiService` wraps one :class:`~repro.core.manager.Graphitti`
instance in the coordination a multi-user deployment needs:

* **single-writer / multi-reader locking** — queries and explore calls share
  a read lock and never block each other; mutations serialize behind a
  writer-preference write lock;
* **durability** — every acknowledged mutation is appended to a write-ahead
  log layered on snapshots (see :mod:`repro.service.durability`), and
  :meth:`recover` rebuilds the exact pre-crash state from snapshot + replay;
* **query-result caching** — results are cached under (normalized GQL text,
  plan fingerprint) and invalidated wholesale by mutation-epoch compare (see
  :mod:`repro.service.cache`), with a prepared-plan memo so a cache hit
  skips parsing and planning entirely;
* **bulk ingest** — :meth:`bulk_commit` groups many annotations into one
  lock acquisition and one group-committed WAL batch, deferring per-commit
  keyword-index bookkeeping to the first subsequent search.

The service's counters surface through ``Graphitti.statistics()`` under the
``"service"`` key, so existing stats tooling sees cache hit rates, WAL depth
and checkpoint counts without new plumbing.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator
from contextlib import contextmanager

from repro.analysis.annotations import mutates_state, requires_write_lock
from repro.core.annotation import Annotation
from repro.core.builder import AnnotationBuilder
from repro.core.manager import Graphitti
from repro.core.persistence import (
    encode_annotation,
    encode_register,
    freeze_manager,
    snapshot_from_frozen,
)
from repro.errors import ServiceError
from repro.obs import Observability, ObservabilityConfig
from repro.query.ast import Query
from repro.query.executor import QueryExecutor
from repro.query.parser import parse_query
from repro.query.planner import QueryPlan, QueryPlanner
from repro.query.result import QueryResult
from repro.service.cache import QueryResultCache, normalize_gql
from repro.service.durability import (
    SNAPSHOT_FILE,
    WAL_FILE,
    DurableStore,
    gil_courtesy,
    recover_manager,
)
from repro.service.locks import ReadWriteLock
from repro.service.wal import sealed_segment_paths


@dataclass
class ServiceConfig:
    """Tunables of one :class:`GraphittiService`."""

    #: Result-cache entries kept (LRU); 0 disables result caching.
    cache_capacity: int = 256
    #: Prepared-plan memo entries kept (LRU); 0 disables the memo.
    plan_cache_capacity: int = 512
    #: Mutations between automatic checkpoints; 0 means checkpoint manually.
    checkpoint_interval: int = 0
    #: WAL fsync policy: "always" (per record), "batch", or "never".
    durability: str = "always"
    #: Whether the planner applies selectivity ordering.
    enable_ordering: bool = True
    #: Explicit planner mode ("off", "static", "cost"); None keeps the
    #: implicit default (cost with the small-corpus static fallback).
    planner_mode: str | None = None
    #: Checkpoint once more when the service closes.
    checkpoint_on_close: bool = True
    #: Whole-scatter deadline (seconds) for the sharded facades; a shard
    #: that does not answer in time raises ShardTimeoutError instead of
    #: blocking the merge forever.  None disables the deadline.
    scatter_deadline_s: float | None = None
    #: Observability knobs (metrics/tracing/slow-op log).  The config rides
    #: in ServiceConfig so it persists across recovery the same way the
    #: durability policy does; the registry itself is in-memory per instance,
    #: so recovery naturally resets counters while keeping the config.
    observability: ObservabilityConfig = ObservabilityConfig()


class GraphittiService:
    """A concurrent, durable, cache-fronted facade over one Graphitti.

    Every :meth:`query` call returns its own :class:`~repro.query.result.QueryResult`
    copy — the cache never hands the same object to two callers, so consuming
    a result in place cannot corrupt another reader's view.
    """

    def __init__(
        self,
        manager: Graphitti | None = None,
        root: str | Path | None = None,
        config: ServiceConfig | None = None,
    ):
        self._manager = manager if manager is not None else Graphitti()
        self.config = config or ServiceConfig()
        self.obs = Observability(self.config.observability)
        self._lock = ReadWriteLock()
        if self.obs.enabled:
            self._lock.instrument(self.obs.registry)
            # Pre-resolved: the cache-hit path pays one .inc(), not a
            # locked registry lookup per query.
            self._cache_hit_counter = self.obs.registry.counter("query.cache_hits")
        else:
            self._cache_hit_counter = None
        self._cache = QueryResultCache(self.config.cache_capacity)
        # normalized text -> (mutation epoch the plan was computed at, plan,
        # fingerprint).  Cost-based plans depend on live statistics, so a
        # memoized plan is only valid at the epoch it was planned at; any
        # mutation forces a re-plan, whose fingerprint (covering the chosen
        # order and estimates) keys the result cache.
        self._plans: OrderedDict[str, tuple[int, QueryPlan, str]] = OrderedDict()
        self._plans_mutex = threading.Lock()
        self._store = DurableStore(root, durability=self.config.durability) if root else None
        if self._store is not None and self.obs.enabled:
            self._store.wal.tracer = self.obs.tracer
        self._wal_failed = False
        self._fenced = False
        #: Called after every successful WAL append, before the mutation is
        #: acknowledged to the caller.  The replication fault harness uses it
        #: to model a primary dying *between* append and acknowledgement —
        #: the window where a record is durable but was never acked.
        self.after_append_hook: Callable[[str, int], None] | None = None
        self._ops_since_checkpoint = 0
        self._recovery_info: dict[str, Any] | None = None
        self._closed = False
        # Background-checkpoint state: at most one snapshot thread in flight.
        # Automatic (interval) checkpoints seal under the write lock and hand
        # serialization to the thread; manual checkpoint() waits for the
        # thread so its post-conditions (snapshot durable, segments pruned)
        # hold on return — but writers never wait on serialization.
        self._ckpt_thread: threading.Thread | None = None
        self._ckpt_error: Exception | None = None
        self._planner = QueryPlanner(
            enable_ordering=self.config.enable_ordering,
            manager=self._manager,
            mode=self.config.planner_mode,
        )
        self._manager.stats_providers.append(self._service_stats)

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def open(
        cls,
        root: str | Path,
        config: ServiceConfig | None = None,
        manager_factory: Callable[[], Graphitti] | None = None,
    ) -> "GraphittiService":
        """Open the instance at *root*: recover prior state or start fresh.

        When the directory holds a snapshot or WAL records, this is
        :meth:`recover`.  Otherwise a new instance is created (from
        *manager_factory* when given) and immediately checkpointed so the
        baseline is durable before any traffic is served.
        """
        # Probe with plain stats — no WAL open (which would repair a torn
        # tail before recover_manager can report it) and no full log parse
        # (recovery and the WAL constructor each parse it once already).
        root_path = Path(root)
        wal_file = root_path / WAL_FILE
        has_state = (
            (root_path / SNAPSHOT_FILE).exists()
            or (wal_file.exists() and wal_file.stat().st_size > 0)
            # A crash after a seal but before the snapshot landed leaves an
            # empty active file next to sealed segments — that is state too.
            or bool(sealed_segment_paths(wal_file))
        )
        if has_state:
            return cls.recover(root, config=config)
        manager = manager_factory() if manager_factory is not None else None
        service = cls(manager=manager, root=root, config=config)
        service.checkpoint()
        return service

    @classmethod
    def recover(cls, root: str | Path, config: ServiceConfig | None = None) -> "GraphittiService":
        """Rebuild the service at *root* from its snapshot + WAL replay."""
        manager, info = recover_manager(root)
        service = cls(manager=manager, root=root, config=config)
        service._recovery_info = info
        return service

    @property
    def manager(self) -> Graphitti:
        """The wrapped instance.  Route mutations through the service —
        touching the manager directly bypasses locking, logging and cache
        invalidation."""
        return self._manager

    @property
    def recovery_info(self) -> dict[str, Any] | None:
        """What recovery saw (None when this service did not recover)."""
        return self._recovery_info

    def close(self) -> None:
        """Checkpoint (per config) and release the WAL file handle."""
        if self._closed:
            return
        # A background snapshot still in flight uses the store; wait it out
        # before the final checkpoint / handle release.
        self._join_checkpoint()
        if self._store is not None and self.config.checkpoint_on_close and not self._wal_failed:
            self.checkpoint()
        self._join_checkpoint()
        if self._store is not None:
            self._store.close()
        # Detach our stats provider so a long-lived manager neither reports a
        # dead service's counters nor keeps it (and its cached results) alive.
        try:
            self._manager.stats_providers.remove(self._service_stats)
        except ValueError:
            pass
        self._closed = True

    def __enter__(self) -> "GraphittiService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- locking helpers -------------------------------------------------------

    @contextmanager
    def _read_view(self) -> Iterator[None]:
        """A consistent read view: shared lock + fully drained deferred work.

        Deferred index work (from bulk commits) and stale document bodies
        (from in-place updates) must not be drained by a reader mid-search —
        materialization mutates shared dicts — so when either exists the
        view first drains both under the write lock, then downgrades to the
        shared lock.  The re-check loop covers a writer sneaking new
        deferred work in between the drain and the read acquisition.
        """
        contents = self._manager.contents
        while True:
            if contents.pending_index_count or contents.stale_document_count:
                with self._lock.write_locked():
                    contents.flush_index()
                    contents.materialize_documents()
            self._lock.acquire_read()
            if contents.pending_index_count or contents.stale_document_count:
                self._lock.release_read()
                continue
            break
        try:
            yield
        finally:
            self._lock.release_read()

    # -- fencing ---------------------------------------------------------------

    def fence(self) -> None:
        """Permanently refuse mutations on this service (demotion fencing).

        Failover promotes a follower and fences the old primary: a zombie —
        a demoted primary that still holds the write path — must not be able
        to acknowledge (or log) writes the promoted primary will never see.
        Reads stay allowed; a fenced instance serves at its last applied
        state like any stale follower.  Fencing is one-way.
        """
        self._fenced = True

    @property
    def fenced(self) -> bool:
        return self._fenced

    @property
    def last_wal_seq(self) -> int:
        """The highest WAL sequence number this service has logged (0 when
        non-durable).  Every acknowledged mutation is at or below it."""
        return self._store.wal.last_seq if self._store is not None else 0

    # -- write path ------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")
        if self._fenced:
            raise ServiceError(
                "service is fenced: a newer primary was promoted; "
                "writes here would be lost or double-applied"
            )

    @contextmanager
    def _traced_write(self, op: str) -> Iterator[None]:
        """One traced write-lock hold: lock wait → (caller's apply/log) spans.

        The root span is ``mutation.<op>``; the slow-op check runs after the
        lock is released so a slow mutation's trace lands in the log without
        extending the critical section.
        """
        obs = self.obs
        with obs.span(f"mutation.{op}") as root:
            with obs.span("lock.wait"):
                self._lock.acquire_write()
            try:
                yield
            finally:
                self._lock.release_write()
        if obs.is_slow(root):
            obs.record_slow(op, root)

    @mutates_state
    def register_ontology(self, ontology, cache: bool = True):
        """Register an ontology (serialized with other writers; WAL-logged)."""
        self._ensure_open()
        with self._traced_write("register_ontology"):
            with self.obs.span("apply"):
                ops = self._manager.register_ontology(ontology, cache=cache)
            self._log("register_ontology", ontology.to_dict())
            self._after_mutation_locked(1)
        return ops

    @mutates_state
    def register(self, obj, raw: bytes | None = None, **metadata: Any):
        """Register a data object (serialized with other writers; WAL-logged).

        The WAL record carries the catalogue entry (type, domain, metadata
        row), not the native bytes — recovery restores the catalogue exactly
        as snapshots do.
        """
        self._ensure_open()
        with self._traced_write("register"):
            with self.obs.span("apply"):
                registered = self._manager.register(obj, raw=raw, **metadata)
            # Log exactly the metadata row the manager stored, so the WAL can
            # never drift from the relational table's contents.
            stored = self._manager.object_metadata(obj.object_id)
            self._log("register", encode_register(obj, stored["metadata"]))
            self._after_mutation_locked(1)
        return registered

    @mutates_state
    def reserve_annotation_id(self) -> str:
        """Generate (and reserve) a fresh annotation id on this instance.

        The sharded router calls this on the shard an annotation routes to,
        so auto-generated ids carry the owning shard's namespace.  The
        underlying serial only advances, so two reservations never collide
        even if the first id is never committed.
        """
        with self._lock.write_locked():
            return self._manager._generate_annotation_id()  # noqa: SLF001 - id authority

    @mutates_state
    def new_annotation(self, *args: Any, **kwargs: Any) -> AnnotationBuilder:
        """Start building an annotation whose commit routes through the service.

        Returns the familiar fluent :class:`AnnotationBuilder`; its
        ``commit()`` lands here (lock + WAL + cache invalidation), not on the
        bare manager.
        """
        with self._lock.write_locked():
            builder = self._manager.new_annotation(*args, **kwargs)
        builder._manager = self  # noqa: SLF001 - route the builder's commit here
        return builder

    @mutates_state
    def commit(self, annotation: Annotation | AnnotationBuilder) -> Annotation:
        """Commit one annotation (serialized with other writers; WAL-logged)."""
        if isinstance(annotation, AnnotationBuilder):
            annotation = annotation.build()
        self._ensure_open()
        with self._traced_write("commit"):
            with self.obs.span("apply"):
                committed = self._manager.commit(annotation)
            self._log("commit", encode_annotation(committed))
            self._after_mutation_locked(1)
        return committed

    @mutates_state
    def bulk_commit(self, annotations: Iterable[Annotation | AnnotationBuilder]) -> list[Annotation]:
        """Commit a batch under ONE lock acquisition and ONE WAL group commit.

        The batch validates atomically (nothing applies if any member is
        invalid), commits with deferred keyword indexing, and appends its WAL
        records with a single flush + fsync — the group-commit fast path the
        ingest benchmark measures.
        """
        batch = [
            item.build() if isinstance(item, AnnotationBuilder) else item for item in annotations
        ]
        if not batch:
            return []
        self._ensure_open()
        with self._traced_write("bulk_commit"):
            if self._store is not None and self._wal_failed:
                raise ServiceError(
                    "a WAL append failed earlier; the log may end in a torn record — "
                    "recover from the existing snapshot + WAL before writing again"
                )
            with self.obs.span("apply") as apply_span:
                committed = self._manager.commit_many(batch)
                apply_span.set("annotations", len(committed))
            if self._store is not None:
                with self.obs.span("wal.append"):
                    try:
                        self._store.wal.append_many(
                            ("commit", encode_annotation(annotation)) for annotation in committed
                        )
                    except Exception:
                        self._wal_failed = True
                        raise
                if self.after_append_hook is not None:
                    self.after_append_hook("commit", self._store.wal.last_seq)
            self._after_mutation_locked(len(committed))
        return committed

    @mutates_state
    def delete_annotation(self, annotation_id: str) -> None:
        """Delete an annotation (serialized with other writers; WAL-logged)."""
        self._ensure_open()
        with self._traced_write("delete_annotation"):
            with self.obs.span("apply"):
                self._manager.delete_annotation(annotation_id)
                # Deleting removes a-graph nodes, which marks the component
                # index stale; rebuild before any reader can race the lazy
                # rebuild.
                self._manager.agraph.graph.rebuild_components()
            self._log("delete_annotation", {"annotation_id": annotation_id})
            self._after_mutation_locked(1)

    @mutates_state
    def update_annotation(self, annotation_id: str, changes: dict[str, Any]):
        """Update an annotation in place (serialized; WAL-logged).

        The delta maintenance happens inside the manager; here the update is
        one write-lock hold, one WAL record (carrying the codec-shaped
        changes), and one epoch bump — where a delete+recommit pays two lock
        acquisitions, two WAL records, and two index churns.  The component
        index is only rebuilt when the update actually removed graph edges
        (referent removals / ontology unlinks); a content edit or extent move
        leaves it untouched.
        """
        from repro.core.persistence import encode_update_changes

        self._ensure_open()
        encoded = encode_update_changes(changes)
        with self._traced_write("update_annotation"):
            with self.obs.span("apply"):
                updated = self._manager.update_annotation(annotation_id, changes)
                self._manager.agraph.graph.rebuild_components()  # no-op unless stale
            self._log("update_annotation", {"annotation_id": annotation_id, "changes": encoded})
            self._after_mutation_locked(1)
        return updated

    @mutates_state
    def delete_object(self, object_id: str, cascade: bool = True) -> list[str]:
        """Retire a data object, cascading through its annotations (WAL-logged)."""
        self._ensure_open()
        with self._traced_write("delete_object"):
            with self.obs.span("apply"):
                cascaded = self._manager.delete_object(object_id, cascade=cascade)
                self._manager.agraph.graph.rebuild_components()
            self._log("delete_object", {"object_id": object_id, "cascade": cascade})
            self._after_mutation_locked(1 + len(cascaded))
        return cascaded

    def annotations_on_object(self, object_id: str) -> list[str]:
        """Ids of annotations referencing *object_id* (read-locked)."""
        with self._read_view():
            return self._manager.annotations_on_object(object_id)

    @requires_write_lock
    def _log(self, op: str, payload: dict[str, Any]) -> None:
        if self._store is None:
            return
        # A failed append may have left a torn line; appending MORE records
        # after it would bury valid data behind mid-file corruption that
        # recovery rightly refuses to read past.  Refuse instead.
        if self._wal_failed:
            raise ServiceError(
                "a WAL append failed earlier; the log may end in a torn record — "
                "recover from the existing snapshot + WAL before writing again"
            )
        try:
            with self.obs.span("wal.append"):
                seq = self._store.wal.append(op, payload)
        except Exception:
            # The in-memory apply preceded the append; the caller sees this
            # exception (the op is NOT acknowledged), and poisoning the
            # service stops any later checkpoint from durably persisting
            # state the log never acknowledged.
            self._wal_failed = True
            raise
        if self.after_append_hook is not None:
            # Fault window: the record is durable but the caller has not been
            # acknowledged yet.  A raise here models a crash in that window.
            self.after_append_hook(op, seq)

    @requires_write_lock
    def _after_mutation_locked(self, ops: int) -> None:
        """Post-mutation bookkeeping; caller holds the write lock."""
        self._ops_since_checkpoint += ops
        interval = self.config.checkpoint_interval
        if self._store is not None and interval and self._ops_since_checkpoint >= interval:
            self._checkpoint_locked()

    # -- checkpointing ---------------------------------------------------------
    #
    # A checkpoint no longer serializes the corpus under the write lock.  The
    # under-lock part is O(1) + a copy-on-write freeze (array copies): seal
    # the active WAL segment, freeze the column store, release.  A background
    # thread then builds the snapshot payload from the frozen view, lands it
    # via temp-file + rename, and prunes the sealed segments it supersedes.
    # Writers proceed against the live columns the whole time (append-only
    # heaps are shared by length cap; fixed-width arrays were copied).

    @mutates_state
    def checkpoint(self) -> Path | None:
        """Durable checkpoint at a quiesce point; waits for completion.

        Drains deferred index work, rebuilds the a-graph component index,
        seals + freezes under the write lock, then serializes OFF-lock and
        joins the background thread before returning — callers observe the
        old post-conditions (snapshot durable, WAL empty) while concurrent
        writers never block on serialization.  Returns the snapshot path, or
        None for a non-durable service (the index/component drain still runs).
        """
        while True:
            self._join_checkpoint()
            self._raise_checkpoint_error()
            with self._lock.write_locked():
                thread = self._ckpt_thread
                if thread is not None and thread.is_alive():
                    # An interval checkpoint snuck in between the join and
                    # the lock; wait it out and seal again so the snapshot
                    # covers everything up to THIS call.
                    continue
                started = self._checkpoint_locked()
            if started is None:
                return None if self._store is None else self._store.snapshot_path
            self._join_checkpoint()
            self._raise_checkpoint_error()
            return self._store.snapshot_path

    @requires_write_lock
    def _checkpoint_locked(self) -> threading.Thread | None:
        """Seal + freeze + schedule the background snapshot (write lock held).

        Returns the snapshot thread, or None when nothing was scheduled
        (non-durable service, or a previous checkpoint still in flight — the
        interval path simply tries again later rather than stacking seals).
        """
        with self.obs.span("checkpoint"):
            self._manager.contents.flush_index()
            self._manager.agraph.graph.rebuild_components()
            self._ops_since_checkpoint = 0
            if self._store is None:
                return None
            if self._wal_failed:
                raise ServiceError(
                    "a WAL append failed earlier; refusing to checkpoint state the "
                    "log never acknowledged — recover from the existing snapshot + WAL"
                )
            previous = self._ckpt_thread
            if previous is not None and previous.is_alive():
                return None
            wal_seq = self._store.seal_for_checkpoint()
            frozen = freeze_manager(self._manager)
            thread = threading.Thread(
                target=self._run_checkpoint,
                args=(frozen, wal_seq),
                name="repro-checkpoint",
                daemon=True,
            )
            self._ckpt_thread = thread
            thread.start()
        self.obs.count("checkpoints")
        return thread

    def _run_checkpoint(self, frozen, wal_seq: int) -> None:
        """Background half of a checkpoint: serialize, land, prune.

        Serialization is pure CPU; inside a :func:`gil_courtesy` window the
        interpreter hands the GIL back to concurrent committers promptly
        instead of making each of their re-acquisitions wait out the default
        5 ms switch interval.
        """
        try:
            with gil_courtesy():
                payload = snapshot_from_frozen(frozen)
                payload["wal_seq"] = wal_seq
                self._store.write_snapshot(payload)
            self._store.finish_checkpoint(wal_seq)
        except Exception as exc:  # surfaced on the next checkpoint/close
            self._ckpt_error = exc

    def _join_checkpoint(self) -> None:
        """Wait for any in-flight background checkpoint (never under the lock)."""
        thread = self._ckpt_thread
        if thread is not None:
            thread.join()

    def _raise_checkpoint_error(self) -> None:
        error = self._ckpt_error
        if error is not None:
            self._ckpt_error = None
            raise ServiceError(f"background checkpoint failed: {error}") from error

    @mutates_state
    def compact(self) -> dict[str, Any]:
        """Compact column storage and prune WAL segments (manual maintenance).

        Rewrites the column heaps dropping tombstoned rows (under the write
        lock — compaction swaps in fresh arrays, so any in-flight frozen
        snapshot view keeps reading the old ones), then checkpoints, which
        seals and prunes every superseded WAL segment.  Returns before/after
        storage gauges.
        """
        self._ensure_open()
        with self._lock.write_locked():
            with self.obs.span("compact"):
                before = self._manager.storage_stats()
                self._manager.compact_storage()
                after = self._manager.storage_stats()
        path = self.checkpoint()
        report: dict[str, Any] = {"before": before, "after": after}
        report["snapshot"] = str(path) if path is not None else None
        if self._store is not None:
            report["wal"] = self._store.wal.segment_stats()
        return report

    # -- read path -------------------------------------------------------------

    def query(self, text_or_query: str | Query) -> QueryResult:
        """Run a GQL query through the result cache.

        Cache key: (normalized GQL text, plan fingerprint); entries are valid
        only at the mutation epoch they were computed at.  A hit for repeated
        text also skips parsing and planning via the prepared-plan memo.

        Planning happens *inside* the read view: the cost-based planner
        reads live structures (interval-tree spans, catalogue dicts, the
        ontology registry) that a concurrent writer may be mutating, so the
        estimate pass needs the same shared lock the execution does.
        """
        obs = self.obs
        prep_spans: list = []
        began = time.perf_counter()
        with self._read_view():
            normalized, plan, fingerprint = self._prepare(text_or_query, prep_spans)
            key = (normalized, fingerprint)
            epoch = self._manager.mutation_epoch
            cached = self._cache.get(key, epoch)
            if cached is not None:
                # Defensive copy: concurrent readers share the hot entry,
                # and a caller consuming its pages in place must not
                # corrupt the entry for everyone else.  A hit pays ONE
                # counter increment and no span: a cached query runs in a
                # few microseconds, so even a single span would breach the
                # <10% overhead gate the cached path is the floor for.
                if self._cache_hit_counter is not None:
                    self._cache_hit_counter.inc()
                return cached.copy()
            with obs.span("query") as root:
                if root:
                    # Backdate to before _prepare: the root span covers the
                    # parse/plan work even though it was opened only once
                    # the cache missed (the hit path must not pay for it).
                    root.start = began
                root.set("cache", "miss")
                # The parse/plan spans finished before the root existed;
                # adopt them so the trace still reads parse -> plan -> execute.
                for span in prep_spans:
                    span.reparent(root)
                with obs.span("execute") as execute_span:
                    executor = QueryExecutor(
                        self._manager, planner=self._planner, tracer=obs.tracer
                    )
                    result = executor.execute_plan(plan)
                    execute_span.set("rows", result.count)
                # Cache a private copy so post-return mutations by THIS caller
                # cannot leak into future hits either.
                self._cache.put(key, epoch, result.copy())
        if obs.is_slow(root):
            # explain() re-takes the read lock, so the slow capture runs only
            # after the query's own view is released.
            root.set("gql", normalized)
            obs.record_slow("query", root, explain=self.explain(text_or_query))
        return result

    def _prepare(
        self, text_or_query: str | Query, trace_sink: list | None = None
    ) -> tuple[str, QueryPlan, str]:
        """Normalize + parse + plan, memoized on (normalized text, epoch).

        A memoized plan is reused only while the manager's mutation epoch
        matches the epoch it was planned at: cost-based plans embed live
        cardinality estimates, and a mutation may change which order (and
        which fingerprint) the planner picks.  Re-planning after a mutation
        is what makes stats-driven plan changes miss stale result-cache
        entries naturally — the fingerprint is part of the result key.

        *trace_sink* collects the parse/plan spans so the caller can adopt
        them under a root span it opens only after the cache misses.
        """
        epoch = self._manager.mutation_epoch
        if isinstance(text_or_query, Query):
            with self.obs.span("plan") as plan_span:
                plan = self._planner.plan(text_or_query)
            if plan_span and trace_sink is not None:
                trace_sink.append(plan_span)
            return text_or_query.describe(), plan, plan.fingerprint()
        normalized = normalize_gql(text_or_query)
        with self._plans_mutex:
            prepared = self._plans.get(normalized)
            if prepared is not None and prepared[0] == epoch:
                # Memo hit: deliberately span-free — repeated hot queries
                # skip parse AND plan, and the trace should show that.
                self._plans.move_to_end(normalized)
                return (normalized, prepared[1], prepared[2])
        with self.obs.span("parse") as parse_span:
            parsed = parse_query(text_or_query)
        with self.obs.span("plan") as plan_span:
            plan = self._planner.plan(parsed)
            plan_span.set("mode", getattr(plan, "mode", None))
        if plan_span and trace_sink is not None:
            trace_sink.append(parse_span)
            trace_sink.append(plan_span)
        fingerprint = plan.fingerprint()
        if self.config.plan_cache_capacity:
            with self._plans_mutex:
                self._plans[normalized] = (epoch, plan, fingerprint)
                self._plans.move_to_end(normalized)
                while len(self._plans) > self.config.plan_cache_capacity:
                    self._plans.popitem(last=False)
        return normalized, plan, fingerprint

    def explain(self, text_or_query: str | Query) -> dict:
        """Plan explanation without execution (read-locked)."""
        with self._read_view():
            return self._manager.explain(
                text_or_query, enable_ordering=self.config.enable_ordering
            )

    # -- read-locked passthroughs ----------------------------------------------

    def annotation(self, annotation_id: str) -> Annotation:
        """The committed annotation with id *annotation_id*."""
        with self._read_view():
            return self._manager.annotation(annotation_id)

    def search_by_keyword(self, keyword: str, mode: str = "and") -> list[str]:
        """Keyword search (read-locked)."""
        with self._read_view():
            return self._manager.search_by_keyword(keyword, mode=mode)

    def search_by_ontology(self, term: str, **kwargs: Any) -> list[str]:
        """Ontology search (read-locked)."""
        with self._read_view():
            return self._manager.search_by_ontology(term, **kwargs)

    def related_annotations(self, annotation_id: str) -> list[str]:
        """Indirectly related annotations (read-locked)."""
        with self._read_view():
            return self._manager.related_annotations(annotation_id)

    def check_integrity(self):
        """Full integrity report under a consistent read view."""
        with self._read_view():
            return self._manager.check_integrity()

    def statistics(self) -> dict[str, Any]:
        """Instance statistics, including THIS service's own counters.

        Several services can share one manager (the benchmarks do); the
        ``"service"`` key is overwritten with this instance's counters so the
        caller never reads a sibling's cache statistics.
        """
        with self._read_view():
            stats = self._manager.statistics()
            # The service-stats merge reads live shared state (cache stats,
            # WAL gauges, storage occupancy) and must happen under the same
            # read view as the manager statistics — outside it, a concurrent
            # writer can mutate between the two reads and the merged report
            # mixes two epochs.
            stats.update(self._service_stats())
        return stats

    def metrics(self) -> dict[str, Any]:
        """This instance's observability snapshot (JSON-compatible).

        ``{"enabled": False}`` when observability is off; otherwise counters,
        gauges, histograms (with p50/p95/p99), and slow-op-log stats.  The
        sharded and replicated facades merge these snapshots across their
        children; render with :func:`repro.obs.render_prometheus` for the
        text exposition format.

        Column-storage and WAL-segment gauges are refreshed into the registry
        here, so a scrape always reports the current slot/heap/segment
        occupancy without a counter on every mutation.
        """
        if self.obs.enabled:
            # Storage/WAL gauge sources (column occupancy, segment stats) are
            # shared mutable state; refresh them under the read lock so a
            # scrape cannot race a compaction swapping the arrays out.
            with self._lock.read_locked():
                self._refresh_storage_gauges()
        return self.obs.snapshot()

    def _refresh_storage_gauges(self) -> None:
        registry = self.obs.registry
        storage = getattr(self._manager, "storage_stats", None)
        if storage is not None:
            stats = storage()
            for section in ("annotations", "referents"):
                for key, value in stats.get(section, {}).items():
                    registry.gauge(f"storage.{section}.{key}").set(value)
            registry.gauge("storage.row_cache_entries").set(
                stats.get("row_cache_entries", 0)
            )
        if self._store is not None:
            for key, value in self._store.wal.segment_stats().items():
                registry.gauge(f"wal.{key}").set(value)

    def slow_ops(self) -> list[dict[str, Any]]:
        """Retained slow-op log entries, oldest first (empty when disabled)."""
        if not self.obs.enabled:
            return []
        return self.obs.slow_log.entries()

    @property
    def annotation_count(self) -> int:
        with self._read_view():
            return self._manager.annotation_count

    # -- builder support (the AnnotationBuilder calls these on its manager) -----

    def resolve_ontology_term(self, text: str) -> str:
        """Term resolution for builders (read-locked)."""
        with self._read_view():
            return self._manager.resolve_ontology_term(text)

    def data_object(self, object_id: str):
        """Data-object lookup for builders (read-locked)."""
        with self._read_view():
            return self._manager.data_object(object_id)

    # -- stats provider ---------------------------------------------------------

    def _service_stats(self) -> dict[str, Any]:
        # Runs under the caller's read view (via manager.stats_providers or
        # statistics() above) — it must NOT touch self._lock, which is not
        # reentrant.  The plan memo has its own mutex; hold it for the read
        # so a concurrent _prepare eviction can't be observed mid-resize.
        with self._plans_mutex:
            prepared_plans = len(self._plans)
        stats: dict[str, Any] = {
            "query_cache": self._cache.stats(),
            "prepared_plans": prepared_plans,
            "ops_since_checkpoint": self._ops_since_checkpoint,
            "durable": self._store is not None,
        }
        if self._store is not None:
            stats["wal"] = {
                "records": self._store.wal.record_count,
                "last_seq": self._store.wal.last_seq,
                "durability": self._store.wal.durability,
                **self._store.wal.segment_stats(),
            }
            stats["checkpoints"] = self._store.checkpoints
        storage = getattr(self._manager, "storage_stats", None)
        if storage is not None:
            stats["storage"] = storage()
        return {"service": stats}
