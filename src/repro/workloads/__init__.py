"""Synthetic data and workload generators, plus paper scenario builders.

The paper evaluates on proprietary scientific data (Avian Influenza sequence
collections, mouse-brain image sets on a shared atlas, lab ontologies).  None
of that is available offline, so this package generates seeded synthetic
equivalents that exercise the same code paths (see DESIGN.md §2):

* :mod:`repro.workloads.generators` -- genomes, sequences, alignments, trees,
  interaction graphs, images/regions, ontology DAGs, and annotation workloads,
* :mod:`repro.workloads.scenarios` -- the influenza and neuroscience study
  builders that reproduce the Figure-1/2/3 scenarios on a populated instance.
"""

from repro.workloads.generators import (
    WorkloadConfig,
    generate_alignment,
    generate_annotation_workload,
    generate_image_regions,
    generate_interaction_graph,
    generate_ontology_dag,
    generate_phylogenetic_tree,
    generate_sequence,
    random_dna,
)
from repro.workloads.scenarios import (
    build_influenza_instance,
    build_neuroscience_instance,
)
from repro.workloads.reporting import study_report
from repro.workloads.churn_scenario import (
    CHURN_KEYWORDS,
    run_churn_workload,
    seed_churn_corpus,
)
from repro.workloads.service_scenario import (
    READER_QUERIES,
    run_service_workload,
    seed_service_objects,
)

__all__ = [
    "WorkloadConfig",
    "random_dna",
    "generate_sequence",
    "generate_alignment",
    "generate_phylogenetic_tree",
    "generate_interaction_graph",
    "generate_image_regions",
    "generate_ontology_dag",
    "generate_annotation_workload",
    "build_influenza_instance",
    "build_neuroscience_instance",
    "study_report",
    "READER_QUERIES",
    "run_service_workload",
    "seed_service_objects",
    "CHURN_KEYWORDS",
    "run_churn_workload",
    "seed_churn_corpus",
]
