"""Paper scenario builders.

These construct fully populated :class:`~repro.core.manager.Graphitti`
instances that reproduce the scenarios behind the paper's three figures:

* :func:`build_influenza_instance` -- the interdisciplinary Influenza study
  (Fig. 1): heterogeneous data (DNA/RNA/protein sequences, an alignment, a
  phylogenetic tree, an interaction graph, relational records) tied together
  by an a-graph through shared referents and ontology terms.
* :func:`build_neuroscience_instance` -- the neuroscience study (Fig. 3): a
  sequence, an image, and a phylogenetic tree related to alpha-synuclein,
  plus correlated data (another image and a microarray record).

The builders are deterministic (seeded) so tests and benchmarks can assert on
exact ids and counts.
"""

from __future__ import annotations

import random

from repro.core.manager import Graphitti
from repro.datatypes.graph import InteractionGraph
from repro.datatypes.image import Image
from repro.datatypes.record import RelationalRecord
from repro.datatypes.sequence import DnaSequence, ProteinSequence, RnaSequence
from repro.datatypes.tree import parse_newick
from repro.ontology.builtin import (
    build_brain_region_ontology,
    build_influenza_ontology,
    build_protein_ontology,
)
from repro.workloads.generators import generate_alignment


def build_influenza_instance(seed: int = 7) -> Graphitti:
    """Build the Avian Influenza study instance (Fig. 1 scenario)."""
    rng = random.Random(seed)
    g = Graphitti("influenza-study")
    g.register_ontology(build_influenza_ontology())
    g.register_ontology(build_protein_ontology())

    # --- heterogeneous data objects -----------------------------------------
    # Two HA gene DNA sequences from different isolates, on a shared "segment4"
    # coordinate domain (one interval tree per genome segment).
    ha_len = 1700
    dna_chicken = DnaSequence(
        "HA_chicken", _seeded_dna(ha_len, rng), domain="flu:segment4", offset=0
    )
    dna_duck = DnaSequence(
        "HA_duck", _seeded_dna(ha_len, rng), domain="flu:segment4", offset=ha_len
    )
    g.register(dna_chicken, organism="chicken", segment=4)
    g.register(dna_duck, organism="duck", segment=4)

    # The transcribed RNA and translated protein of the chicken HA.
    rna = RnaSequence("HA_chicken_mRNA", dna_chicken.residues.replace("T", "U"), domain="flu:segment4_rna")
    g.register(rna)
    protein = ProteinSequence("HA_protein", _seeded_protein(560, rng), domain="flu:HA_protein")
    g.register(protein)

    # A multiple sequence alignment of HA across isolates.
    alignment = generate_alignment("HA_alignment", rows=6, width=300, rng=rng)
    g.register(alignment)

    # A phylogenetic tree of the isolates.
    tree = parse_newick(
        "((chicken:0.1,duck:0.12):0.05,(swine:0.2,human:0.22):0.07);",
        object_id="HA_phylogeny",
    )
    g.register(tree)

    # A protein-protein interaction graph around HA.
    graph = InteractionGraph("HA_interactions")
    for protein_name in ["HA", "NA", "M1", "NP", "PB1", "host_receptor", "sialic_acid"]:
        graph.add_node(protein_name)
    graph.add_edge("HA", "sialic_acid", interaction="binds")
    graph.add_edge("HA", "host_receptor", interaction="binds")
    graph.add_edge("HA", "M1", interaction="associates")
    graph.add_edge("NA", "sialic_acid", interaction="cleaves")
    graph.add_edge("NP", "PB1", interaction="binds")
    g.register(graph)

    # A relational record of isolate metadata.
    record = RelationalRecord(
        "isolate_table",
        fields=("isolate", "host", "year", "subtype"),
        rows={
            "r1": {"isolate": "A/chicken/HK/97", "host": "chicken", "year": 1997, "subtype": "H5N1"},
            "r2": {"isolate": "A/duck/Guangdong/96", "host": "duck", "year": 1996, "subtype": "H5N1"},
            "r3": {"isolate": "A/swine/Iowa/30", "host": "swine", "year": 1930, "subtype": "H1N1"},
        },
    )
    g.register(record)

    # --- annotations (the a-graph edges) -------------------------------------
    # A1: the HA receptor-binding site on the chicken HA gene + protein, tied to
    # the surface-protein ontology term; also marks the interaction subgraph.
    (
        g.new_annotation(
            "flu-a1",
            title="HA receptor binding site",
            creator="virologist1",
            keywords=["binding", "receptor", "cleavage"],
            body="Receptor binding site in HA; key host-range determinant.",
        )
        .mark_sequence("HA_chicken", 300, 360, ontology_terms=["flu:HA"])
        .mark_sequence("HA_protein", 98, 118, ontology_terms=["flu:HA"])
        .mark_subgraph("HA_interactions", ["HA", "sialic_acid", "host_receptor"])
        .refer_ontology("flu:surface_protein")
        .commit()
    )

    # A2: the same HA gene region annotated by a second scientist (shares the
    # sequence referent with A1 -> the two annotations become related).
    (
        g.new_annotation(
            "flu-a2",
            title="Cleavage site polybasic motif",
            creator="virologist2",
            keywords=["cleavage", "mutation", "pathogenicity"],
            body="Polybasic cleavage site associated with high pathogenicity.",
        )
        .mark_sequence("HA_chicken", 300, 360, ontology_terms=["flu:HA"])
        .mark_alignment_columns("HA_alignment", 120, 160)
        .commit()
    )

    # A3: links the phylogeny clade and the isolate record and the duck HA gene.
    (
        g.new_annotation(
            "flu-a3",
            title="Avian lineage clade",
            creator="phylogeneticist",
            keywords=["conserved", "lineage"],
            body="Avian H5N1 lineage clade across chicken and duck isolates.",
        )
        .mark_clade_by_leaves("HA_phylogeny", ["chicken", "duck"])
        .mark_record_block("isolate_table", ["r1", "r2"])
        .mark_sequence("HA_duck", 300, 360)
        .refer_ontology("flu:avian_host", "flu:surface_protein")
        .commit()
    )

    # A4: the RNA transcript region corresponding to the HA binding site.
    (
        g.new_annotation(
            "flu-a4",
            title="mRNA region",
            creator="virologist1",
            keywords=["regulatory", "binding"],
            body="HA mRNA region overlapping the receptor binding site.",
        )
        .mark_sequence("HA_chicken_mRNA", 300, 360)
        .refer_ontology("flu:HA")
        .commit()
    )

    return g


def build_neuroscience_instance(seed: int = 11) -> Graphitti:
    """Build the neuroscience study instance (Fig. 3 scenario)."""
    rng = random.Random(seed)
    g = Graphitti("neuroscience-study")
    g.register_ontology(build_brain_region_ontology())
    g.register_ontology(build_protein_ontology())

    # alpha-synuclein gene (SNCA) and protein.
    snca = DnaSequence("SNCA_gene", _seeded_dna(1400, rng), domain="chr4", offset=0)
    g.register(snca, gene="SNCA", chromosome=4)
    asyn_protein = ProteinSequence("alpha_synuclein", _seeded_protein(140, rng), domain="asyn:protein")
    g.register(asyn_protein)

    # Two mouse-brain images in one shared atlas coordinate space (one R-tree).
    brain1 = Image("mouse_brain_1", dimension=2, space="mouse-atlas:25um", size=(512.0, 512.0))
    brain2 = Image("mouse_brain_2", dimension=2, space="mouse-atlas:25um", size=(512.0, 512.0))
    g.register(brain1)
    g.register(brain2)

    # A phylogenetic tree of synuclein orthologs.
    tree = parse_newick(
        "((human:0.05,mouse:0.06):0.02,(rat:0.07,zebrafish:0.3):0.04);",
        object_id="synuclein_phylogeny",
    )
    g.register(tree)

    # A microarray expression record (the "µ-array result" in Fig. 3).
    array = RelationalRecord(
        "expression_array",
        fields=("probe", "region", "expression"),
        rows={
            "p1": {"probe": "SNCA_probe_1", "region": "cerebellum", "expression": 8.3},
            "p2": {"probe": "SNCA_probe_2", "region": "dentate", "expression": 7.1},
            "p3": {"probe": "SNCA_probe_3", "region": "cortex", "expression": 3.2},
        },
    )
    g.register(array)

    # Primary annotation: alpha-synuclein expression in a deep cerebellar region
    # of brain image 1, tied to the gene, protein and phylogeny (the Fig.3 graph
    # of a sequence + an image + a phylogenetic tree).
    (
        g.new_annotation(
            "neuro-a1",
            title="alpha-synuclein expression in DCN",
            creator="neuroscientist1",
            keywords=["expression", "synuclein", "cerebellum"],
            body="alpha-synuclein expression localized to deep cerebellar nuclei.",
        )
        .mark_sequence("SNCA_gene", 200, 320)
        .mark_region("mouse_brain_1", (120, 130), (180, 195), ontology_terms=["Deep Cerebellar nuclei"])
        .mark_region("mouse_brain_1", (200, 210), (250, 260), ontology_terms=["Dentate nucleus"])
        .mark_clade_by_leaves("synuclein_phylogeny", ["human", "mouse"])
        .refer_ontology("alpha-synuclein")
        .commit()
    )

    # Correlated data: another image region on brain image 2 and the array
    # result, sharing the DCN ontology term with the primary annotation.
    (
        g.new_annotation(
            "neuro-a2",
            title="DCN region (replicate)",
            creator="neuroscientist2",
            keywords=["cerebellum", "replicate"],
            body="Replicate deep cerebellar nuclei region in a second brain.",
        )
        .mark_region("mouse_brain_2", (118, 128), (182, 198), ontology_terms=["Deep Cerebellar nuclei"])
        .mark_record_block("expression_array", ["p1", "p2"])
        .commit()
    )

    # A third annotation on the same gene region as neuro-a1 (makes them
    # related through the shared SNCA sequence referent).
    (
        g.new_annotation(
            "neuro-a3",
            title="SNCA promoter variant",
            creator="geneticist",
            keywords=["mutation", "regulatory"],
            body="Promoter variant in the SNCA gene region.",
        )
        .mark_sequence("SNCA_gene", 200, 320)
        .refer_ontology("protein:synuclein")
        .commit()
    )

    return g


def _seeded_dna(length: int, rng: random.Random) -> str:
    return "".join(rng.choice("ACGT") for _ in range(length))


def _seeded_protein(length: int, rng: random.Random) -> str:
    return "".join(rng.choice("ACDEFGHIKLMNPQRSTVWY") for _ in range(length))
