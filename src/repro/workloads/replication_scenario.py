"""Read-heavy mixed workload against a (possibly replicated) service.

Models the read-scaling traffic shape replication targets: ~95% repeated
structural queries, ~5% single-annotation commits.  On an unreplicated
service every commit bumps the one mutation epoch, so each hot query
re-executes right after every write.  Behind a
:class:`~repro.replica.ReplicatedGraphittiService`, commits land on the
primary while eventual-consistency reads round-robin the followers — whose
result caches are invalidated only when a WAL shipment is applied, i.e. in
batches at the ship interval rather than per write.

The driver only uses the common service surface (``register`` /
``new_annotation`` / ``commit`` / ``bulk_commit`` / ``query``), so the same
code path drives a plain :class:`~repro.service.GraphittiService`, a
replicated one, or a sharded deployment.  Deterministic per thread (seeded
RNGs); returns a summary with counters, the committed-id ledger, and wall
clock, so benchmarks can derive throughput and tests can verify no acked
write went missing.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any

from repro.datatypes.sequence import DnaSequence

#: The hot query set readers cycle through (repetition is the point: the
#: follower result caches are what convert replicas into read throughput).
REPLICATION_QUERIES = (
    'SELECT contents WHERE { CONTENT CONTAINS "alpha" }',
    'SELECT contents WHERE { CONTENT CONTAINS "beta" INTERVAL OVERLAPS rep:chr1 [0, 9000] }',
    "SELECT contents WHERE { INTERVAL OVERLAPS rep:chr1 [500, 4000] MINCOUNT 1 }",
    'SELECT contents WHERE { ANY { CONTENT CONTAINS "gamma" CONTENT CONTAINS "delta" } }',
    'SELECT contents WHERE { CONTENT CONTAINS "epsilon" INTERVAL OVERLAPS rep:chr1 [1000, 12000] }',
    "SELECT referents WHERE { INTERVAL OVERLAPS rep:chr1 [2000, 6000] }",
)

_KEYWORDS = ("alpha", "beta", "gamma", "delta", "epsilon")


def seed_replication_corpus(service, corpus: int, objects: int = 8) -> list[str]:
    """Register the shared object pool and bulk-load *corpus* annotations."""
    object_ids = []
    for index in range(objects):
        obj = DnaSequence(
            f"rep{index}", "ACGT" * 250, domain="rep:chr1", offset=index * 1000
        )
        service.register(obj)
        object_ids.append(obj.object_id)
    rng = random.Random(23)
    batch = []
    for index in range(corpus):
        batch.append(
            service.new_annotation(
                f"seed-{index:05d}",
                title=f"seed annotation {index}",
                keywords=[rng.choice(_KEYWORDS), "common"],
                body=f"replication workload corpus {index}",
            ).mark_sequence(object_ids[index % objects], (index * 17) % 900, (index * 17) % 900 + 40)
        )
    service.bulk_commit(batch)
    return object_ids


def run_replication_workload(
    service,
    object_ids: list[str],
    threads: int = 4,
    ops_per_thread: int = 200,
    write_every: int = 20,
    seed: int = 29,
    tag: str = "rep",
) -> dict[str, Any]:
    """Drive the 95/5 read/write mix; return counters, ledger, and elapsed.

    One write per *write_every* operations per thread (the default 20 gives
    the 95/5 split).  Reads use the service's default consistency level —
    bounded-staleness follower reads on a replicated service — and writes
    go through ``commit`` (acknowledged once WAL-appended on the primary).
    """
    errors: list[str] = []
    committed_ids: list[str] = []
    ledger_mutex = threading.Lock()
    counters = {"reads": 0, "writes": 0, "rows": 0}
    counters_mutex = threading.Lock()

    def worker(worker_id: int) -> None:
        rng = random.Random(seed * 1000 + worker_id)
        reads = writes = rows = 0
        serial = 0
        try:
            for op in range(ops_per_thread):
                if write_every and op % write_every == write_every - 1:
                    annotation = (
                        service.new_annotation(
                            f"{tag}-w{worker_id}-{serial}",
                            title="replication workload write",
                            keywords=[rng.choice(_KEYWORDS)],
                            body="written mid-workload",
                        )
                        .mark_sequence(
                            object_ids[rng.randrange(len(object_ids))],
                            rng.randrange(900),
                            rng.randrange(900, 950),
                        )
                        .commit()
                    )
                    serial += 1
                    writes += 1
                    with ledger_mutex:
                        committed_ids.append(annotation.annotation_id)
                else:
                    result = service.query(
                        REPLICATION_QUERIES[rng.randrange(len(REPLICATION_QUERIES))]
                    )
                    reads += 1
                    rows += result.count
        except Exception as exc:  # pragma: no cover - surfaced via summary
            errors.append(f"worker {worker_id}: {type(exc).__name__}: {exc}")
        with counters_mutex:
            counters["reads"] += reads
            counters["writes"] += writes
            counters["rows"] += rows

    pool = [
        threading.Thread(target=worker, args=(worker_id,), name=f"rep-worker-{worker_id}")
        for worker_id in range(threads)
    ]
    start = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start

    summary: dict[str, Any] = dict(counters)
    summary["elapsed"] = elapsed
    summary["ops"] = counters["reads"] + counters["writes"]
    summary["errors"] = errors
    summary["committed_ids"] = sorted(committed_ids)
    return summary
