"""Human-readable study reports over a Graphitti instance.

Produces a Markdown summary of an instance — its data inventory, annotation
activity, index economy, ontology usage, and a-graph connectivity — suitable
for the "system administration" view or a study write-up.
"""

from __future__ import annotations


def study_report(manager, title: str | None = None) -> str:
    """Render a Markdown study report for *manager*."""
    stats = manager.statistics()
    admin = manager.administrator()
    lines: list[str] = []
    lines.append(f"# {title or manager.name} — study report")
    lines.append("")

    lines.append("## Data inventory")
    lines.append("")
    lines.append("| data type | objects |")
    lines.append("|---|---|")
    for data_type, count in sorted(stats["objects_by_type"].items()):
        lines.append(f"| {data_type} | {count} |")
    lines.append(f"| **total** | **{stats['data_objects']}** |")
    lines.append("")

    lines.append("## Annotations")
    lines.append("")
    lines.append(f"- annotations committed: {stats['annotations']}")
    lines.append(f"- referents (marked substructures): {stats['referents']}")
    lines.append(f"- a-graph: {stats['agraph_nodes']} nodes, {stats['agraph_edges']} edges")
    components = manager.agraph.connected_components()
    lines.append(f"- connected components: {len(components)}")
    if components:
        lines.append(f"- largest component: {max(len(component) for component in components)} nodes")
    lines.append("")

    lines.append("## Index economy")
    lines.append("")
    for key, value in admin.index_economy().items():
        lines.append(f"- {key}: {value}")
    lines.append("")

    lines.append("## Most-annotated objects")
    lines.append("")
    for object_id, count in admin.annotation_leaderboard(top=5):
        lines.append(f"- {object_id}: {count} referent(s)")
    lines.append("")

    lines.append("## Creator activity")
    lines.append("")
    for creator, count in sorted(admin.creator_activity().items()):
        lines.append(f"- {creator}: {count} annotation(s)")
    lines.append("")

    lines.append("## Ontologies")
    lines.append("")
    for name in manager.ontologies():
        ontology = manager.ontology(name)
        lines.append(f"- {name}: {ontology.term_count} terms, {ontology.edge_count} edges")
    lines.append("")

    lines.append("## Graph analytics")
    lines.append("")
    metrics = manager.graph_metrics()
    lines.append(f"- average node degree: {metrics.average_degree():.2f}")
    sizes = metrics.component_sizes()
    lines.append(f"- component sizes: {sizes[:5]}")
    hubs = metrics.ontology_hubs(top=3)
    if hubs:
        lines.append("- ontology hubs: " + ", ".join(f"{term} ({count})" for term, count in hubs))
    shared = metrics.referent_sharing()
    lines.append(f"- shared referents (relate annotations): {len(shared)}")
    lines.append("")

    lines.append("## Integrity")
    lines.append("")
    lines.append(f"- {admin.check_integrity().summary()}")
    return "\n".join(lines)
