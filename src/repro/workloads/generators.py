"""Seeded synthetic generators for data objects and annotation workloads.

Every generator takes (or derives) a :class:`random.Random` so runs are fully
reproducible: the same seed yields the same genome, the same region layout,
the same ontology, and the same annotation stream.  Sizes and distributions
are the knobs the benchmarks sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.datatypes.alignment import MultipleSequenceAlignment
from repro.datatypes.graph import InteractionGraph
from repro.datatypes.image import Image
from repro.datatypes.sequence import DnaSequence, ProteinSequence, Sequence
from repro.datatypes.tree import PhylogeneticTree, TreeClade
from repro.errors import WorkloadError
from repro.ontology.model import INSTANCE_OF, IS_A, Ontology
from repro.spatial.interval import Interval
from repro.spatial.rect import Rect

_DNA = "ACGT"
_AMINO = "ACDEFGHIKLMNPQRSTVWY"


def random_dna(length: int, rng: random.Random) -> str:
    """A random DNA string of the given length."""
    if length < 0:
        raise WorkloadError("sequence length must be non-negative")
    return "".join(rng.choice(_DNA) for _ in range(length))


def random_protein(length: int, rng: random.Random) -> str:
    """A random protein string of the given length."""
    if length < 0:
        raise WorkloadError("sequence length must be non-negative")
    return "".join(rng.choice(_AMINO) for _ in range(length))


@dataclass
class WorkloadConfig:
    """Parameters controlling a synthetic annotation workload.

    Attributes
    ----------
    seed:
        RNG seed for reproducibility.
    sequence_count / sequence_length:
        Number and length of generated sequences.
    image_count / regions_per_image:
        Number of images and pre-segmented regions each.
    annotation_count:
        Number of annotations to generate.
    referents_per_annotation:
        Mean number of referents per annotation.
    keyword_pool:
        Keywords drawn for annotation content.
    shared_domain:
        When True, sequences share one coordinate domain (one interval tree);
        when False, each sequence gets its own domain (many small trees).
    """

    seed: int = 1234
    sequence_count: int = 20
    sequence_length: int = 2000
    image_count: int = 5
    regions_per_image: int = 40
    annotation_count: int = 200
    referents_per_annotation: int = 3
    keyword_pool: tuple[str, ...] = (
        "protease", "kinase", "binding", "mutation", "conserved", "cleavage",
        "epitope", "domain", "motif", "regulatory",
    )
    shared_domain: bool = True

    def rng(self) -> random.Random:
        """A fresh seeded RNG for this configuration."""
        return random.Random(self.seed)


def generate_sequence(
    object_id: str,
    length: int,
    rng: random.Random,
    domain: str | None = None,
    offset: int = 0,
    protein: bool = False,
) -> Sequence:
    """Generate one DNA or protein sequence."""
    if protein:
        return ProteinSequence(object_id, random_protein(length, rng), domain=domain, offset=offset)
    return DnaSequence(object_id, random_dna(length, rng), domain=domain, offset=offset)


def generate_alignment(
    object_id: str,
    rows: int,
    width: int,
    rng: random.Random,
    gap_probability: float = 0.05,
) -> MultipleSequenceAlignment:
    """Generate a multiple sequence alignment with some conserved columns."""
    if rows < 1 or width < 1:
        raise WorkloadError("alignment needs at least one row and column")
    # Seed a consensus, then mutate per row; inject conserved columns.
    consensus = random_dna(width, rng)
    conserved = {index for index in range(width) if rng.random() < 0.3}
    aligned: dict[str, str] = {}
    for row in range(rows):
        residues = []
        for index, base in enumerate(consensus):
            if index in conserved:
                residues.append(base)
            elif rng.random() < gap_probability:
                residues.append("-")
            elif rng.random() < 0.2:
                residues.append(rng.choice(_DNA))
            else:
                residues.append(base)
        aligned[f"{object_id}_row{row}"] = "".join(residues)
    return MultipleSequenceAlignment(object_id, aligned)


def generate_phylogenetic_tree(object_id: str, taxa: Iterable[str], rng: random.Random) -> PhylogeneticTree:
    """Generate a random binary phylogenetic tree over the given taxa."""
    leaves = [TreeClade(name=name, branch_length=round(rng.uniform(0.01, 1.0), 3)) for name in taxa]
    if not leaves:
        raise WorkloadError("a tree needs at least one taxon")
    counter = 0
    clades = list(leaves)
    while len(clades) > 1:
        rng.shuffle(clades)
        left = clades.pop()
        right = clades.pop()
        counter += 1
        parent = TreeClade(name=f"{object_id}_node{counter}", branch_length=round(rng.uniform(0.01, 0.5), 3))
        parent.add_child(left)
        parent.add_child(right)
        clades.append(parent)
    return PhylogeneticTree(object_id, clades[0])


def generate_interaction_graph(
    object_id: str,
    node_count: int,
    edge_probability: float,
    rng: random.Random,
) -> InteractionGraph:
    """Generate a random molecular interaction graph (Erdos-Renyi-ish)."""
    graph = InteractionGraph(object_id)
    nodes = [f"{object_id}_p{index}" for index in range(node_count)]
    for node in nodes:
        graph.add_node(node)
    interactions = ("binds", "activates", "inhibits", "phosphorylates")
    for i in range(node_count):
        for j in range(i + 1, node_count):
            if rng.random() < edge_probability:
                graph.add_edge(nodes[i], nodes[j], interaction=rng.choice(interactions), weight=round(rng.random(), 3))
    return graph


def generate_image_regions(
    image: Image,
    region_count: int,
    rng: random.Random,
    max_extent: float = 100.0,
    region_size: float = 10.0,
) -> list[Rect]:
    """Generate random regions within an image's coordinate space."""
    regions: list[Rect] = []
    for _ in range(region_count):
        coords_lo = []
        coords_hi = []
        for _axis in range(image.dimension):
            low = rng.uniform(0, max_extent - region_size)
            size = rng.uniform(region_size * 0.5, region_size * 1.5)
            coords_lo.append(round(low, 2))
            coords_hi.append(round(low + size, 2))
        regions.append(Rect(tuple(coords_lo), tuple(coords_hi), space=image.coordinate_space))
    return regions


def generate_ontology_dag(
    name: str,
    depth: int,
    branching: int,
    instances_per_leaf: int,
    rng: random.Random,
) -> Ontology:
    """Generate a layered ontology DAG with instances under the leaves.

    Produces a tree of concepts ``depth`` levels deep with ``branching``
    children per node, then attaches ``instances_per_leaf`` instances to each
    leaf concept.  Useful for sweeping ontology size in PERF-5.
    """
    if depth < 1 or branching < 1:
        raise WorkloadError("ontology depth and branching must be >= 1")
    ontology = Ontology(name, relation_types=(IS_A, INSTANCE_OF))
    root_id = f"{name}:0"
    ontology.add_concept(root_id, f"{name} root")
    frontier = [root_id]
    counter = 1
    leaf_ids: list[str] = []
    for level in range(depth):
        next_frontier = []
        for parent in frontier:
            children_created = 0
            for _ in range(branching):
                concept_id = f"{name}:{counter}"
                ontology.add_concept(concept_id, f"{name} concept {counter}")
                ontology.add_relation(concept_id, IS_A, parent)
                next_frontier.append(concept_id)
                counter += 1
                children_created += 1
            if children_created == 0:
                leaf_ids.append(parent)
        frontier = next_frontier
    leaf_ids.extend(frontier)
    instance_counter = 0
    for leaf in leaf_ids:
        for _ in range(instances_per_leaf):
            instance_id = f"{name}:i{instance_counter}"
            ontology.add_instance(instance_id, f"{name} instance {instance_counter}", concept_id=leaf)
            instance_counter += 1
    return ontology


def generate_annotation_workload(manager, config: WorkloadConfig) -> dict:
    """Populate *manager* with synthetic objects and annotations.

    Returns a summary dict with the ids created and the generation parameters,
    so benchmarks can drive follow-up queries against known data.
    """
    from repro.datatypes.base import DataType

    rng = config.rng()
    sequence_ids: list[str] = []
    shared = "genome:chrX" if config.shared_domain else None
    offset = 0
    for index in range(config.sequence_count):
        domain = shared if config.shared_domain else f"seq{index}:dom"
        seq = generate_sequence(
            f"seq{index}",
            config.sequence_length,
            rng,
            domain=domain,
            offset=offset if config.shared_domain else 0,
        )
        manager.register(seq)
        sequence_ids.append(seq.object_id)
        if config.shared_domain:
            offset += config.sequence_length

    image_ids: list[str] = []
    region_pool: dict[str, list] = {}
    for index in range(config.image_count):
        image = Image(f"img{index}", dimension=2, space="atlas:25um", size=(100.0, 100.0))
        manager.register(image)
        image_ids.append(image.object_id)
        region_pool[image.object_id] = generate_image_regions(image, config.regions_per_image, rng)

    annotation_ids: list[str] = []
    for index in range(config.annotation_count):
        keyword_count = rng.randint(1, 3)
        keywords = rng.sample(config.keyword_pool, keyword_count)
        builder = manager.new_annotation(
            f"wl-anno-{index:06d}",
            title=f"synthetic annotation {index}",
            creator=f"scientist{rng.randint(1, 8)}",
            keywords=keywords,
            body=f"Synthetic annotation about {' and '.join(keywords)}.",
        )
        referent_count = max(1, int(rng.gauss(config.referents_per_annotation, 1)))
        for _ in range(referent_count):
            if image_ids and rng.random() < 0.35:
                image_id = rng.choice(image_ids)
                region = rng.choice(region_pool[image_id])
                builder.mark_region(image_id, region.lo, region.hi)
            else:
                seq_id = rng.choice(sequence_ids)
                seq = manager.data_object(seq_id)
                start = rng.randint(0, max(0, len(seq) - 20))
                end = min(len(seq) - 1, start + rng.randint(5, 20))
                builder.mark_sequence(seq_id, start, end)
        annotation_ids.append(builder.commit().annotation_id)

    return {
        "sequence_ids": sequence_ids,
        "image_ids": image_ids,
        "annotation_ids": annotation_ids,
        "config": config,
    }
