"""Concurrent mixed read/write workload against a Graphitti service.

Models the serving-layer traffic shape the paper's deployment implies: many
scientists browsing and querying (read-heavy, with heavily repeated
structural queries) while a few annotate (writes), occasionally retracting an
annotation.  Used by the ``repro serve`` CLI demo, the concurrency stress
test, and as a template for custom drivers.

The driver only uses the common service surface (``register`` /
``new_annotation`` / ``commit`` / ``bulk_commit`` / ``delete_annotation`` /
``query`` / ``annotation`` / ``check_integrity`` / ``statistics``), so it
runs unchanged against a single :class:`~repro.service.GraphittiService` or
a :class:`~repro.shard.ShardedGraphittiService` — seed more sequences than
shards (see :func:`seed_service_objects`) so the hash router spreads the
object pool across every shard.

The driver is deterministic per thread (seeded RNGs) and returns a summary of
what every thread did plus the service's own counters, so callers can assert
on coherence afterwards.
"""

from __future__ import annotations

import random
import threading
import time
import uuid
from typing import Any

from repro.datatypes.sequence import DnaSequence
from repro.errors import BackpressureError, GraphittiError

#: The repeated structural queries readers cycle through (heavy repetition is
#: the point: it is what the result cache exploits).
READER_QUERIES = (
    'SELECT contents WHERE { CONTENT CONTAINS "workload" }',
    'SELECT contents WHERE { CONTENT CONTAINS "binding" }',
    "SELECT contents WHERE { INTERVAL OVERLAPS svc:chr1 [50, 400] }",
    'SELECT contents WHERE { CONTENT CONTAINS "binding" INTERVAL OVERLAPS svc:chr1 [10, 900] }',
    "SELECT referents WHERE { INTERVAL OVERLAPS svc:chr1 [100, 300] }",
)

_KEYWORD_POOL = ("workload", "binding", "cleavage", "regulatory", "conserved", "mutation")


def seed_service_objects(service, sequences: int | None = None, length: int = 1200, seed: int = 97) -> list[str]:
    """Register a pool of sequences (shared domain ``svc:chr1``) to annotate.

    Ids carry a generation suffix chosen to avoid whatever a previous run (or
    a recovered instance holding unmarkable catalogue placeholders) already
    registered, so the pool is always freshly markable.

    *sequences* defaults to 4 per shard for a sharded service (hash routing
    spreads annotations over objects, so a pool several times the shard
    count keeps every shard busy) and 4 otherwise.
    """
    if sequences is None:
        sequences = 4 * max(1, getattr(service, "shard_count", 1))
    rng = random.Random(seed)
    generation = 0
    while True:
        try:
            service.data_object(f"svc_seq_g{generation}_0")
        except GraphittiError:
            break
        generation += 1
    object_ids = []
    for index in range(sequences):
        object_id = f"svc_seq_g{generation}_{index}"
        residues = "".join(rng.choice("ACGT") for _ in range(length))
        service.register(
            DnaSequence(
                object_id,
                residues,
                domain="svc:chr1",
                offset=(generation * sequences + index) * length,
            )
        )
        object_ids.append(object_id)
    return object_ids


def run_service_workload(
    service,
    object_ids: list[str],
    readers: int = 4,
    writers: int = 2,
    queries_per_reader: int = 200,
    commits_per_writer: int = 40,
    delete_every: int = 10,
    bulk_every: int = 8,
    bulk_size: int = 5,
    integrity_every: int = 50,
    seed: int = 7,
    run_tag: str | None = None,
) -> dict[str, Any]:
    """Drive *service* with concurrent readers and writers; return a summary.

    Writers mix single commits, periodic bulk commits and occasional deletes
    of their own annotations.  Readers cycle the repeated query set, check
    that every returned annotation id denotes a committed annotation, and
    periodically run a full integrity check (which would fail on any torn
    read).  Thread errors are captured and re-raised as a summary field so
    test callers can assert ``not summary["errors"]``.
    """
    # Distinguishes this run's annotation ids from earlier runs against the
    # same (reopened) instance.
    tag = run_tag if run_tag is not None else uuid.uuid4().hex[:8]
    errors: list[str] = []
    counters = {
        "queries": 0,
        "query_results": 0,
        "commits": 0,
        "bulk_commits": 0,
        "deletes": 0,
        "integrity_checks": 0,
        "backpressure_waits": 0,
    }
    counters_mutex = threading.Lock()
    committed_ids: list[str] = []
    deleted_ids: list[str] = []
    ledger_mutex = threading.Lock()

    def _count(key: str, amount: int = 1) -> None:
        with counters_mutex:
            counters[key] += amount

    def _admit(call):
        """Run a write, honouring backpressure's Retry-After hint.

        A network-sharded service sheds writes beyond its per-shard in-flight
        window; a well-behaved writer waits the advertised interval and
        retries rather than dropping or hammering.  Bounded so a shard that
        never drains still surfaces as a workload error.
        """
        for _ in range(50):
            try:
                return call()
            except BackpressureError as exc:
                _count("backpressure_waits")
                time.sleep(min(max(exc.retry_after, 0.001), 0.25))
        return call()

    def writer_loop(worker: int) -> None:
        rng = random.Random(seed * 1000 + worker)
        try:
            serial = 0
            since_delete = 0
            own_ids: list[str] = []
            while serial < commits_per_writer:
                if bulk_every and serial and serial % bulk_every == 0:
                    batch = []
                    for _ in range(bulk_size):
                        batch.append(_build(worker, serial, rng))
                        serial += 1
                    committed = _admit(lambda: service.bulk_commit(batch))
                    _count("bulk_commits")
                    _count("commits", len(committed))
                    new_ids = [annotation.annotation_id for annotation in committed]
                else:
                    builder = _build(worker, serial, rng)
                    annotation = _admit(lambda: service.commit(builder))
                    serial += 1
                    _count("commits")
                    new_ids = [annotation.annotation_id]
                own_ids.extend(new_ids)
                with ledger_mutex:
                    committed_ids.extend(new_ids)
                since_delete += len(new_ids)
                if delete_every and since_delete >= delete_every and own_ids:
                    since_delete = 0
                    victim = own_ids.pop(rng.randrange(len(own_ids)))
                    _admit(lambda: service.delete_annotation(victim))
                    _count("deletes")
                    with ledger_mutex:
                        deleted_ids.append(victim)
        except Exception as exc:  # pragma: no cover - surfaced via summary
            errors.append(f"writer {worker}: {type(exc).__name__}: {exc}")

    def _build(worker: int, serial: int, rng: random.Random):
        object_id = rng.choice(object_ids)
        start = rng.randrange(0, 900)
        keywords = ["workload", rng.choice(_KEYWORD_POOL)]
        return (
            service.new_annotation(
                f"svc-w-{tag}-{worker}-{serial}",
                title=f"workload annotation {worker}/{serial}",
                creator=f"writer-{worker}",
                keywords=keywords,
                body=f"service workload mark on {object_id}",
            )
            .mark_sequence(object_id, start, start + rng.randrange(10, 120))
        )

    def reader_loop(worker: int) -> None:
        rng = random.Random(seed * 2000 + worker)
        try:
            for iteration in range(queries_per_reader):
                text = READER_QUERIES[rng.randrange(len(READER_QUERIES))]
                result = service.query(text)
                _count("queries")
                _count("query_results", result.count)
                for annotation_id in result.annotation_ids:
                    # A returned id must always denote a committed annotation
                    # (it may have been deleted *after* the query ran, so a
                    # miss is only an error if it was never committed at all).
                    try:
                        service.annotation(annotation_id)
                    except GraphittiError:
                        if annotation_id.startswith("svc-w"):
                            with ledger_mutex:
                                known = annotation_id in committed_ids
                        else:
                            known = True  # pre-existing annotation, deleted by no one
                        if not known:
                            errors.append(f"reader {worker}: unknown id {annotation_id!r}")
                if integrity_every and iteration % integrity_every == integrity_every - 1:
                    report = service.check_integrity()
                    _count("integrity_checks")
                    if not report.ok:
                        errors.append(f"reader {worker}: integrity failed: {report.errors}")
        except Exception as exc:  # pragma: no cover - surfaced via summary
            errors.append(f"reader {worker}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=writer_loop, args=(worker,), name=f"svc-writer-{worker}")
        for worker in range(writers)
    ] + [
        threading.Thread(target=reader_loop, args=(worker,), name=f"svc-reader-{worker}")
        for worker in range(readers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    live_ids = sorted(set(committed_ids) - set(deleted_ids))
    summary: dict[str, Any] = dict(counters)
    summary["errors"] = errors
    summary["committed_ids"] = sorted(set(committed_ids))
    summary["deleted_ids"] = sorted(set(deleted_ids))
    summary["live_ids"] = live_ids
    summary["cache"] = service.statistics()["service"]["query_cache"]
    return summary
