"""Churn-heavy mutation workload: the annotation lifecycle under edits.

The paper's annotation system assumes annotations *evolve* — curators refine
extents, fix ontology terms, retire source objects.  This driver models that
traffic shape: a corpus is bulk-ingested once, then a deterministic mixed
stream of in-place updates (content edits, extent moves, referent rewires),
legacy delete+recommit cycles, annotation deletes and cascading object
retirements churns it.  A ledger of every acknowledged mutation lets
:func:`run_churn_workload` verify afterwards that the served state matches —
live annotation count, keyword visibility of the *latest* content, integrity.

The driver only uses the common mutation surface (``register`` /
``new_annotation`` / ``commit`` / ``bulk_commit`` / ``update_annotation`` /
``delete_annotation`` / ``delete_object`` / ``query`` / ``check_integrity``),
so it runs unchanged against a bare :class:`~repro.core.manager.Graphitti`,
a :class:`~repro.service.GraphittiService`, or a
:class:`~repro.shard.ShardedGraphittiService`.
"""

from __future__ import annotations

import random
from typing import Any

from repro.datatypes.sequence import DnaSequence

#: Keyword pool; every annotation carries "churn" plus one rotating keyword.
CHURN_KEYWORDS = ("refined", "retracted", "curated", "remapped", "revised", "flagged")

#: Sequence length of every seeded churn object.
CHURN_OBJECT_LENGTH = 1200


def seed_churn_corpus(
    service,
    objects: int = 8,
    annotations: int = 200,
    domain: str = "churn:chr1",
    seed: int = 13,
    tag: str = "base",
) -> dict[str, Any]:
    """Register a pool of sequences and bulk-ingest a churnable corpus.

    Returns ``{"object_ids": [...], "annotation_ids": [...], "domain": ...}``.
    Annotation ids are explicit (``churn-<tag>-<n>``) so reruns and recovery
    checks can reason about them.
    """
    rng = random.Random(seed)
    object_ids = []
    for index in range(objects):
        object_id = f"churn_{tag}_seq_{index}"
        residues = "".join(rng.choice("ACGT") for _ in range(CHURN_OBJECT_LENGTH))
        service.register(
            DnaSequence(object_id, residues, domain=domain, offset=index * CHURN_OBJECT_LENGTH)
        )
        object_ids.append(object_id)
    builders = []
    for serial in range(annotations):
        object_id = object_ids[serial % len(object_ids)]
        start = rng.randrange(0, CHURN_OBJECT_LENGTH - 150)
        builders.append(
            service.new_annotation(
                f"churn-{tag}-{serial}",
                title=f"churn annotation {serial}",
                creator=f"curator-{serial % 3}",
                keywords=["churn", CHURN_KEYWORDS[serial % len(CHURN_KEYWORDS)]],
                body=f"initial mark {serial} on {object_id}",
            ).mark_sequence(object_id, start, start + rng.randrange(10, 120))
        )
    if hasattr(service, "bulk_commit"):
        committed = service.bulk_commit(builders)
    else:  # a bare Graphitti manager
        committed = service.commit_many(builder.build() for builder in builders)
    return {
        "object_ids": list(object_ids),
        "annotation_ids": [annotation.annotation_id for annotation in committed],
        "domain": domain,
        "tag": tag,
    }


def run_churn_workload(
    service,
    corpus: dict[str, Any],
    operations: int = 300,
    seed: int = 29,
    verify: bool = True,
) -> dict[str, Any]:
    """Drive *service* with a deterministic churn stream; return a summary.

    The operation mix (per 10 ops): 4 content updates, 2 extent moves,
    1 referent rewire (add a referent on another object, or remove one when
    the annotation has several), 1 delete+recommit (the legacy edit path,
    kept hot for comparison and coverage), 1 plain delete, and — every 40th
    op — one cascading ``delete_object`` with a replacement object registered
    to keep the pool full.  With ``verify=True`` the summary gains a
    ``"verification"`` dict asserting the served state matches the ledger.
    """
    rng = random.Random(seed)
    domain = corpus["domain"]
    tag = corpus.get("tag", "base")
    live = list(corpus["annotation_ids"])
    objects = list(corpus["object_ids"])
    # The workload only ever touches its own corpus; annotations that were
    # already on the instance (a recovered deployment, another tag's corpus)
    # are bystanders the final count check must account for.
    bystanders = service.annotation_count - len(live)
    counters = {
        "updates": 0,
        "moves": 0,
        "rewires": 0,
        "recommits": 0,
        "deletes": 0,
        "object_deletes": 0,
        "cascaded": 0,
    }
    errors: list[str] = []
    #: annotation id -> the keyword its latest acknowledged edit stamped.
    stamped: dict[str, str] = {}
    serial = 0
    replacement = 0
    for op_index in range(operations):
        if not live:
            break
        try:
            if op_index and op_index % 40 == 0 and len(objects) > 2:
                victim_object = objects.pop(rng.randrange(len(objects)))
                cascaded = service.delete_object(victim_object)
                counters["object_deletes"] += 1
                counters["cascaded"] += len(cascaded)
                doomed = set(cascaded)
                # a bystander marking a churn object cascades with it
                bystanders -= len(doomed.difference(live))
                live = [annotation_id for annotation_id in live if annotation_id not in doomed]
                for annotation_id in doomed:
                    stamped.pop(annotation_id, None)
                object_id = f"churn_{tag}_replacement_{replacement}"
                replacement += 1
                service.register(
                    DnaSequence(
                        object_id,
                        "ACGT" * (CHURN_OBJECT_LENGTH // 4),
                        domain=domain,
                        offset=(len(objects) + replacement + 40) * CHURN_OBJECT_LENGTH,
                    )
                )
                objects.append(object_id)
                continue
            victim = live[rng.randrange(len(live))]
            bucket = op_index % 10
            if bucket < 4:
                keyword = CHURN_KEYWORDS[rng.randrange(len(CHURN_KEYWORDS))]
                service.update_annotation(
                    victim,
                    {
                        "title": f"edited {op_index}",
                        "keywords": ["churn", keyword, f"stamp{op_index}"],
                        "body": f"revised body {op_index} ({keyword})",
                    },
                )
                stamped[victim] = f"stamp{op_index}"
                counters["updates"] += 1
            elif bucket < 6:
                annotation = service.annotation(victim)
                spatial = [
                    referent.referent_id
                    for referent in annotation.referents
                    if referent.ref.interval is not None
                ]
                if spatial:
                    start = rng.randrange(0, CHURN_OBJECT_LENGTH - 150)
                    service.update_annotation(
                        victim,
                        {"move_referents": {spatial[0]: {"start": start, "end": start + 60}}},
                    )
                    counters["moves"] += 1
            elif bucket < 7:
                annotation = service.annotation(victim)
                if annotation.referent_count > 1:
                    doomed_ref = annotation.referents[-1].referent_id
                    service.update_annotation(victim, {"remove_referents": [doomed_ref]})
                else:
                    target = objects[rng.randrange(len(objects))]
                    start = rng.randrange(0, 200)
                    addition = service.data_object(target).mark(start, start + 30)
                    from repro.core.annotation import Referent

                    service.update_annotation(
                        victim, {"add_referents": [Referent(ref=addition)]}
                    )
                counters["rewires"] += 1
            elif bucket < 8:
                # The legacy edit path: delete + recommit under a fresh id.
                service.delete_annotation(victim)
                live.remove(victim)
                stamped.pop(victim, None)
                object_id = objects[rng.randrange(len(objects))]
                start = rng.randrange(0, CHURN_OBJECT_LENGTH - 150)
                recommitted = service.commit(
                    service.new_annotation(
                        f"churn-{tag}-rc-{serial}",
                        title=f"recommitted {serial}",
                        keywords=["churn", "recommitted"],
                        body=f"delete+recommit cycle {serial}",
                    )
                    .mark_sequence(object_id, start, start + 45)
                    .build()  # a built Annotation commits on any surface
                )
                serial += 1
                live.append(recommitted.annotation_id)
                counters["recommits"] += 1
            else:
                service.delete_annotation(victim)
                live.remove(victim)
                stamped.pop(victim, None)
                counters["deletes"] += 1
        except Exception as exc:  # pragma: no cover - surfaced via summary
            errors.append(f"op {op_index}: {type(exc).__name__}: {exc}")
    summary: dict[str, Any] = dict(counters)
    summary["errors"] = errors
    summary["live_ids"] = sorted(live)
    if verify:
        summary["verification"] = _verify(service, live, stamped, errors, bystanders)
    return summary


def _verify(service, live, stamped, errors, bystanders=0) -> dict[str, Any]:
    """Check the served state against the ledger; appends to *errors*."""
    count = service.annotation_count
    if count != len(live) + bystanders:
        errors.append(
            f"live count mismatch: served {count}, "
            f"ledger {len(live)} + {bystanders} bystander(s)"
        )
    report = service.check_integrity()
    if not report.ok:
        errors.append(f"integrity failed after churn: {report.errors}")
    checked = 0
    for annotation_id, stamp in sorted(stamped.items())[:10]:
        hits = service.query(f'SELECT contents WHERE {{ CONTENT CONTAINS "{stamp}" }}')
        if annotation_id not in hits.annotation_ids:
            errors.append(
                f"latest edit invisible: {annotation_id} missing from keyword {stamp!r}"
            )
        checked += 1
    return {
        "annotation_count": count,
        "ledger_count": len(live),
        "integrity_ok": report.ok,
        "stamps_checked": checked,
    }
