"""Exception hierarchy shared by every Graphitti subsystem.

All errors raised by the library derive from :class:`GraphittiError`, so a
caller can catch one base class to handle any library failure.  Each
subsystem gets its own subclass so that callers who care about the origin of
a failure (the relational substrate vs. the query parser, say) can
discriminate without string matching.
"""

from __future__ import annotations


class GraphittiError(Exception):
    """Base class for every error raised by the Graphitti library."""


class RelationalError(GraphittiError):
    """Error raised by the embedded relational engine."""


class SchemaError(RelationalError):
    """A table schema is invalid or an operation violates it."""


class ConstraintViolation(RelationalError):
    """A primary-key, unique, or not-null constraint was violated."""


class UnknownTableError(RelationalError):
    """A query referenced a table that does not exist."""


class UnknownColumnError(RelationalError):
    """A query referenced a column that does not exist."""


class XmlStoreError(GraphittiError):
    """Error raised by the XML annotation-content store."""


class XmlParseError(XmlStoreError):
    """The XML text could not be parsed."""


class XPathError(XmlStoreError):
    """An XPath-subset expression is malformed or cannot be evaluated."""


class SpatialError(GraphittiError):
    """Error raised by the spatial (interval tree / R-tree) substrate."""


class CoordinateSystemError(SpatialError):
    """A substructure was registered against an incompatible coordinate system."""


class OntologyError(GraphittiError):
    """Error raised by the ontology subsystem."""


class UnknownTermError(OntologyError):
    """An ontology operation referenced a term that does not exist."""


class UnknownRelationError(OntologyError):
    """An ontology operation referenced a relation type that does not exist."""


class AGraphError(GraphittiError):
    """Error raised by the a-graph (annotation graph) subsystem."""


class UnknownNodeError(AGraphError):
    """An a-graph operation referenced a node that does not exist."""


class AnnotationError(GraphittiError):
    """Error raised by the core annotation model."""


class UnknownDataTypeError(AnnotationError):
    """A data type was used before being registered with the manager."""


class UnknownObjectError(AnnotationError):
    """A data object identifier does not resolve to a registered object."""


class MarkError(AnnotationError):
    """A substructure mark is invalid for the data object it targets."""


class QueryError(GraphittiError):
    """Error raised by the Graphitti query language subsystem."""


class QuerySyntaxError(QueryError):
    """The GQL text could not be tokenized or parsed."""


class QueryPlanError(QueryError):
    """The planner could not produce a feasible subquery ordering."""


class QueryExecutionError(QueryError):
    """A runtime failure occurred while executing a query plan."""


class WorkloadError(GraphittiError):
    """Error raised by the synthetic workload generators."""


class ServiceError(GraphittiError):
    """Error raised by the serving layer (:mod:`repro.service`)."""


class ConfigError(GraphittiError, ValueError):
    """An invalid configuration value (capacity, interval, policy name).

    Also a :class:`ValueError` so idiomatic callers (and existing tests)
    that guard constructor arguments with ``except ValueError`` keep
    working while the typed taxonomy stays closed."""


class WalCorruptionError(ServiceError):
    """The write-ahead log contains an unreadable record before its tail.

    A truncated *final* record is expected after a crash and is tolerated by
    replay; corruption anywhere earlier means the log cannot be trusted and
    recovery refuses to guess."""


class WireError(ServiceError):
    """A network frame could not be encoded, decoded, or fully delivered.

    Raised for torn/truncated frames, oversized frames, and bodies that are
    not valid JSON.  A client treats it like a connection loss: the request
    outcome is unknown and the connection must be discarded."""


class ShardTimeoutError(ServiceError):
    """A shard did not answer within the configured deadline.

    Shared by the threaded scatter path (a hung shard callable) and the
    network path (a slow or black-holed worker), so callers handle both
    topologies with one except clause."""


class ShardUnavailableError(ServiceError):
    """A shard is unreachable (dead, restarting, or past its retry budget).

    Carries the shard indices that were unavailable so degraded-read callers
    can report exactly which part of the keyspace is missing."""

    def __init__(self, message: str, shards: tuple[int, ...] = ()):  # pragma: no cover - trivial
        super().__init__(message)
        self.shards = tuple(shards)


class BackpressureError(ServiceError):
    """A shard refused a write because its in-flight window is full.

    ``retry_after`` is the server's hint (seconds) for when to try again —
    the wire-level equivalent of an HTTP ``Retry-After`` header."""

    def __init__(self, message: str, retry_after: float = 0.05):
        super().__init__(message)
        self.retry_after = float(retry_after)
