"""Horizontal sharding for the Graphitti serving layer.

* :mod:`repro.shard.router` -- deterministic hash routing, shard-encoding
  annotation ids, and the ``shards.json`` topology manifest;
* :mod:`repro.shard.service` -- :class:`ShardedGraphittiService`, the
  scatter-gather facade over N independent
  :class:`~repro.service.service.GraphittiService` shards.
"""

from repro.shard.router import (
    MANIFEST_FILE,
    ROUTING_SCHEME,
    read_manifest,
    shard_for_annotation,
    shard_for_key,
    shard_from_annotation_id,
    shard_namespace,
    write_manifest,
)
from repro.shard.service import ShardedGraphittiService, ShardedIntegrityReport

__all__ = [
    "ShardedGraphittiService",
    "ShardedIntegrityReport",
    "MANIFEST_FILE",
    "ROUTING_SCHEME",
    "read_manifest",
    "write_manifest",
    "shard_for_key",
    "shard_for_annotation",
    "shard_from_annotation_id",
    "shard_namespace",
]
